//! Intra-query parallel scaling: scan-filter, hash-join, and hash-agg
//! pipelines at DOP ∈ {1, 2, 4, 8}.
//!
//! Each pipeline runs on a no-recycler engine (pure execution cost), with
//! the DOP=1 configuration exercising the untouched serial operators — so
//! the 1-worker column doubles as the no-regression check against the
//! pre-parallelism engine. Results are wall-clock medians over several
//! runs.
//!
//! **Hardware honesty:** speedup requires cores. The bench records
//! `available_parallelism` in the snapshot and only *asserts* the ≥2×
//! DOP=4 target for the scan-filter and hash-agg pipelines when the
//! machine actually has ≥4 CPUs; on fewer cores it reports the numbers
//! (expect ≈1×: the same morsels, time-sliced) and checks instead that
//! parallel overhead stays bounded.
//!
//! Emits `BENCH_parallel.json` at the workspace root (override with
//! `RDB_BENCH_OUT`).

use std::sync::Arc;
use std::time::Instant;

use rdb_engine::Engine;
use rdb_expr::{AggFunc, Expr};
use rdb_plan::{scan, Plan};
use rdb_storage::{Catalog, TableBuilder};
use rdb_vector::{DataType, Schema, Value};

const ROWS: usize = 2_000_000;
const DIM_ROWS: i64 = 1_000;
const DOPS: [usize; 4] = [1, 2, 4, 8];
const RUNS: usize = 5;

fn catalog() -> Arc<Catalog> {
    let schema = Schema::from_pairs([
        ("k", DataType::Int),
        ("g", DataType::Int),
        ("v", DataType::Int),
        ("f", DataType::Float),
    ]);
    let mut b = TableBuilder::new("fact", schema, ROWS);
    for i in 0..ROWS as i64 {
        b.push_row(vec![
            Value::Int(i % DIM_ROWS),
            Value::Int(i % 1_000),
            Value::Int(i % 97),
            Value::Float((i % 10_000) as f64 * 0.25),
        ]);
    }
    let dim_schema = Schema::from_pairs([("dk", DataType::Int), ("w", DataType::Int)]);
    let mut d = TableBuilder::new("dim", dim_schema, DIM_ROWS as usize);
    for i in 0..DIM_ROWS {
        d.push_row(vec![Value::Int(i), Value::Int(i * 7)]);
    }
    let mut cat = Catalog::new();
    cat.register(b.finish()).expect("register fact");
    cat.register(d.finish()).expect("register dim");
    Arc::new(cat)
}

/// The measured pipelines. All aggregates use exact accumulators so the
/// partitioned parallel breaker engages (float sums deliberately keep
/// serial fold order — see the `rdb_exec::parallel` docs — and would
/// measure the gather path instead).
fn pipelines() -> Vec<(&'static str, Plan)> {
    vec![
        (
            "scan_filter",
            scan("fact", &["k", "v", "f"])
                .select(Expr::name("v").lt(Expr::lit(30)))
                .select(Expr::name("f").gt(Expr::lit(100.0))),
        ),
        (
            "hash_join",
            scan("fact", &["k", "v"])
                .select(Expr::name("v").lt(Expr::lit(50)))
                .inner_join(
                    scan("dim", &["dk", "w"]),
                    vec![Expr::name("k")],
                    vec![Expr::name("dk")],
                )
                .aggregate(vec![], vec![(AggFunc::Sum(Expr::name("w")), "sw")]),
        ),
        (
            "hash_agg",
            scan("fact", &["g", "v"]).aggregate(
                vec![(Expr::name("g"), "g")],
                vec![
                    (AggFunc::Sum(Expr::name("v")), "sv"),
                    (AggFunc::CountStar, "n"),
                ],
            ),
        ),
    ]
}

/// Median wall time of `RUNS` full executions at the given DOP.
fn measure(cat: &Arc<Catalog>, plan: &Plan, dop: usize) -> (f64, usize) {
    let engine = Engine::builder(cat.clone())
        .no_recycler()
        .parallelism(dop)
        .build();
    let session = engine.session();
    // Warm-up run (first touch of the table pages).
    let rows = session
        .query(plan)
        .expect("query")
        .into_outcome()
        .batch
        .rows();
    let mut times: Vec<f64> = (0..RUNS)
        .map(|_| {
            let t0 = Instant::now();
            let out = session.query(plan).expect("query").into_outcome();
            assert_eq!(out.batch.rows(), rows, "row count stable across runs");
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[RUNS / 2], rows)
}

fn main() {
    rdb_bench::banner("parallel_scaling — morsel-driven pipelines at DOP 1/2/4/8");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("machine cores: {cores}\n");
    let cat = catalog();

    let mut table: Vec<(&str, Vec<f64>, usize)> = Vec::new();
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "pipeline", "dop1 (ms)", "dop2", "dop4", "dop8", "speedup@4", "rows"
    );
    for (name, plan) in pipelines() {
        let mut medians = Vec::new();
        let mut rows = 0;
        for dop in DOPS {
            let (ms, r) = measure(&cat, &plan, dop);
            medians.push(ms);
            rows = r;
        }
        println!(
            "{:>12} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>11.2}x {:>10}",
            name,
            medians[0],
            medians[1],
            medians[2],
            medians[3],
            medians[0] / medians[2],
            rows
        );
        table.push((name, medians, rows));
    }

    // Correctness-of-claims gates (see module docs for the hardware gate).
    // The hard 2x gate needs headroom beyond the 4 workers themselves (the
    // gather consumer and the OS also want a core): on exactly-4-vCPU
    // shared CI runners a strict 2.0x would flake, so those get a softer
    // floor and the full claim is asserted from 6 cores up.
    for (name, medians, _) in &table {
        let speedup4 = medians[0] / medians[2];
        let gated = *name == "scan_filter" || *name == "hash_agg";
        if gated && cores >= 6 {
            assert!(
                speedup4 >= 2.0,
                "{name}: expected >= 2x at DOP=4 on a {cores}-core machine, got {speedup4:.2}x"
            );
        } else if gated && cores >= 4 {
            assert!(
                speedup4 >= 1.3,
                "{name}: expected >= 1.3x at DOP=4 on a shared {cores}-core machine, \
                 got {speedup4:.2}x"
            );
        } else {
            // Time-sliced workers on too few cores: overhead must stay
            // bounded (morsels are coarse enough that the pool tax is
            // small).
            assert!(
                speedup4 > 0.55,
                "{name}: parallel overhead on {cores} core(s) too high ({speedup4:.2}x at DOP=4)"
            );
        }
        if cores == 1 {
            // The engine clamps effective DOP to the available cores
            // (`effective_dop`; these engines don't set
            // RDB_ALLOW_OVERSUBSCRIBE), so a DOP=8 request runs serial and
            // oversubscription must be free: no thread pool to spin up, no
            // gather reordering, no morsel hand-off tax.
            let over8 = medians[3] / medians[0];
            assert!(
                over8 <= 1.1,
                "{name}: requested DOP=8 on a 1-core host must clamp to serial \
                 (<= 1.1x dop1 time), got {over8:.2}x"
            );
        }
    }

    let out_path = std::env::var("RDB_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_parallel.json", env!("CARGO_MANIFEST_DIR")));
    let mut json = String::from("{\n\"bench\": \"parallel_scaling\",\n");
    json.push_str(&format!("\"cores\": {cores},\n\"rows\": {ROWS},\n"));
    for (i, (name, medians, rows)) in table.iter().enumerate() {
        json.push_str(&format!(
            "\"{name}\": {{\"dop1_ms\": {:.3}, \"dop2_ms\": {:.3}, \"dop4_ms\": {:.3}, \
             \"dop8_ms\": {:.3}, \"speedup_dop4\": {:.3}, \"result_rows\": {rows}}}{}\n",
            medians[0],
            medians[1],
            medians[2],
            medians[3],
            medians[0] / medians[2],
            if i + 1 == table.len() { "" } else { "," }
        ));
    }
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_parallel.json");
    println!("\nsnapshot written to {out_path}");
}
