//! Figure 6 — impact of recycling on SkyServer queries.
//!
//! Paper setup: the 100-query SkyServer log run as one batch (1×100) and in
//! refresh splits (2×50, 4×25, cache flushed between batches), on the
//! MonetDB-style engine and the pipelined recycler, with a limited and an
//! unlimited recycler cache. Reported: total runtime as a percentage of the
//! respective naive (non-recycling) engine.

use std::time::{Duration, Instant};

use rdb_bench::{banner, ms, pct, sky_objects};
use rdb_engine::{Engine, MaterializingEngine, WorkloadQuery};
use rdb_recycler::RecyclerConfig;
use rdb_skyserver::{functions, generate, make_session, SessionOptions, SkyConfig};

fn run_pipelined(
    queries: &[WorkloadQuery],
    splits: usize,
    config: Option<RecyclerConfig>,
) -> Duration {
    let cat = generate(&SkyConfig {
        objects: sky_objects(),
        seed: 1,
    });
    let fns = functions(&cat);
    let builder = Engine::builder(cat).functions(fns);
    let engine = match config {
        Some(c) => builder.recycler(c),
        None => builder.no_recycler(),
    }
    .build();
    let session = engine.session();
    let per_batch = queries.len() / splits;
    let start = Instant::now();
    for (i, q) in queries.iter().enumerate() {
        if i > 0 && i % per_batch == 0 {
            engine.flush_cache(); // simulated refresh
        }
        session.query(&q.plan).expect("query runs").into_outcome();
    }
    start.elapsed()
}

fn run_materializing(
    queries: &[WorkloadQuery],
    splits: usize,
    cache: Option<Option<u64>>, // None = naive; Some(cap) = recycling
) -> Duration {
    let cat = generate(&SkyConfig {
        objects: sky_objects(),
        seed: 1,
    });
    let fns = functions(&cat);
    let engine = match cache {
        None => MaterializingEngine::naive(cat).with_functions(fns),
        Some(cap) => MaterializingEngine::recycling(cat, cap).with_functions(fns),
    };
    let per_batch = queries.len() / splits;
    let start = Instant::now();
    for (i, q) in queries.iter().enumerate() {
        if i > 0 && i % per_batch == 0 {
            engine.flush_cache();
        }
        engine.run(&q.plan).expect("query runs");
    }
    start.elapsed()
}

fn main() {
    banner("Figure 6: SkyServer workload, runtime as % of naive");
    let session = make_session(&SessionOptions::default());
    println!(
        "{} queries over a {}-object synthetic sky catalog",
        session.len(),
        sky_objects()
    );
    // "Limited" cache sized so that it pressures the MonetDB-style engine
    // (which must keep every intermediate) but fits the pipelined
    // recycler's selective materializations — the paper's 1 GB analogue.
    let limited: u64 = 512 * 1024;

    println!(
        "\n{:<10} {:>14} {:>14} {:>14} {:>14}",
        "workload", "monetdb/lim", "recycler/lim", "monetdb/unl", "recycler/unl"
    );
    for &splits in &[1usize, 2, 4] {
        let naive_mat = run_materializing(&session, splits, None);
        let naive_pipe = run_pipelined(&session, splits, None);
        let mat_lim = run_materializing(&session, splits, Some(Some(limited)));
        let mat_unl = run_materializing(&session, splits, Some(None));
        let mut spec_lim = RecyclerConfig::speculative(limited);
        spec_lim.spec_min_progress = 0.0;
        let pipe_lim = run_pipelined(&session, splits, Some(spec_lim));
        let mut spec_unl = RecyclerConfig::speculative(u64::MAX / 4);
        spec_unl.spec_min_progress = 0.0;
        let pipe_unl = run_pipelined(&session, splits, Some(spec_unl));
        let label = format!("{}x{}", splits, session.len() / splits);
        println!(
            "{:<10} {:>14} {:>14} {:>14} {:>14}",
            label,
            pct(mat_lim.as_secs_f64() / naive_mat.as_secs_f64()),
            pct(pipe_lim.as_secs_f64() / naive_pipe.as_secs_f64()),
            pct(mat_unl.as_secs_f64() / naive_mat.as_secs_f64()),
            pct(pipe_unl.as_secs_f64() / naive_pipe.as_secs_f64()),
        );
        println!(
            "{:<10} naive runtimes: monetdb-style {} ms, pipelined {} ms",
            "",
            ms(naive_mat),
            ms(naive_pipe)
        );
    }
    println!(
        "\nPaper shape: both recyclers land well below 45% of naive; the\n\
         pipelined recycler wins under the limited cache (selective\n\
         materialization), the materializing engine catches up when the\n\
         cache is unlimited; refresh splits reduce but do not erase the win."
    );
}
