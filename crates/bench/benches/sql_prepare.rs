//! SQL frontend microbench: parse + bind + normalize + fingerprint
//! latency for TPC-H Q1 text, and the recycler hit-rate over
//! textually-shuffled predicate variants of Q6 — the quantity the
//! normalization pass exists to maximize. Without normalization every
//! conjunct order / flipped comparison is a distinct fingerprint (no
//! sharing); with it they all converge.
//!
//! Emits `BENCH_sql.json` at the workspace root (`RDB_BENCH_OUT`
//! overrides).

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rdb_bench::banner;
use rdb_engine::Engine;
use rdb_expr::Params;
use rdb_plan::structural_hash;
use rdb_sql::{compile, parse, BoundStatement};
use rdb_tpch::sql::Q1_SQL;
use rdb_tpch::{generate, TpchConfig};

const SAMPLES: usize = 200;
const VARIANTS: usize = 48;

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

/// The five Q6 conjuncts with interchangeable textual forms: [canonical,
/// flipped].
const Q6_CONJUNCTS: [[&str; 2]; 5] = [
    ["l_shipdate >= $date_lo", "$date_lo <= l_shipdate"],
    ["l_shipdate < $date_hi", "$date_hi > l_shipdate"],
    ["l_discount >= $disc_lo", "$disc_lo <= l_discount"],
    ["l_discount <= $disc_hi", "$disc_hi >= l_discount"],
    ["l_quantity < $qty", "$qty > l_quantity"],
];

/// A textually-shuffled Q6: conjuncts permuted, comparisons randomly
/// flipped.
fn shuffled_q6(rng: &mut SmallRng) -> String {
    let mut order: Vec<usize> = (0..Q6_CONJUNCTS.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let conjuncts: Vec<&str> = order
        .iter()
        .map(|&i| Q6_CONJUNCTS[i][rng.gen_range(0..2)])
        .collect();
    format!(
        "SELECT sum(l_extendedprice * l_discount) AS revenue FROM lineitem WHERE {}",
        conjuncts.join(" AND ")
    )
}

fn main() {
    banner("sql_prepare: frontend latency + variant convergence");
    let catalog = generate(&TpchConfig {
        scale: rdb_bench::scale_factor(),
        seed: 42,
    });
    let engine = Engine::builder(catalog.clone()).build();
    let session = engine.session();

    // ---- Q1 frontend latency, split by phase -------------------------
    let mut parse_ns = Vec::with_capacity(SAMPLES);
    let mut compile_ns = Vec::with_capacity(SAMPLES);
    let mut prepare_ns = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let ast = parse(Q1_SQL).expect("parse q1");
        parse_ns.push(t.elapsed().as_nanos() as u64);
        std::hint::black_box(ast);

        let t = Instant::now();
        let bound = compile(Q1_SQL, catalog.as_ref()).expect("bind q1");
        compile_ns.push(t.elapsed().as_nanos() as u64);
        std::hint::black_box(bound);

        let t = Instant::now();
        let prepared = session.prepare_sql(Q1_SQL).expect("prepare q1");
        prepare_ns.push(t.elapsed().as_nanos() as u64);
        std::hint::black_box(prepared.fingerprint());
    }
    let (parse_ns, compile_ns, prepare_ns) =
        (median(parse_ns), median(compile_ns), median(prepare_ns));
    println!("Q1 frontend latency (median of {SAMPLES}):");
    println!("  parse                {:>9.1} us", parse_ns as f64 / 1e3);
    println!("  parse+bind           {:>9.1} us", compile_ns as f64 / 1e3);
    println!("  full prepare_sql     {:>9.1} us", prepare_ns as f64 / 1e3);

    // ---- Q6 variant convergence --------------------------------------
    // Raw (pre-normalization) fingerprints: the binder output hashed
    // as-is. Normalized fingerprints: what prepare_sql actually uses.
    let mut rng = SmallRng::seed_from_u64(0x6_5EED);
    let variants: Vec<String> = (0..VARIANTS).map(|_| shuffled_q6(&mut rng)).collect();
    let mut raw_fps = Vec::new();
    let mut norm_fps = Vec::new();
    for v in &variants {
        let BoundStatement::Query(plan) = compile(v, catalog.as_ref()).expect("bind variant")
        else {
            unreachable!("variants are queries")
        };
        raw_fps.push(structural_hash(&plan));
        norm_fps.push(
            session
                .prepare_sql(v)
                .expect("prepare variant")
                .fingerprint(),
        );
    }
    let distinct = |fps: &[u64]| {
        let mut s = fps.to_vec();
        s.sort_unstable();
        s.dedup();
        s.len()
    };
    let (raw_distinct, norm_distinct) = (distinct(&raw_fps), distinct(&norm_fps));

    // Execute every variant with identical parameters: after the first
    // miss, every execution should be a cache hit.
    let params = Params::new()
        .set("date_lo", rdb_vector_date(8766))
        .set("date_hi", rdb_vector_date(9131))
        .set("disc_lo", 0.05)
        .set("disc_hi", 0.07)
        .set("qty", 24.0);
    let mut hits = 0usize;
    for v in &variants {
        let out = session
            .prepare_sql(v)
            .expect("prepare")
            .execute(&params)
            .expect("execute")
            .into_outcome();
        if out.reused() {
            hits += 1;
        }
    }
    let hit_rate = hits as f64 / variants.len() as f64;
    println!("Q6 textual variants ({VARIANTS} shuffles, same parameters):");
    println!("  distinct fingerprints pre-normalization   {raw_distinct:>4}");
    println!("  distinct fingerprints post-normalization  {norm_distinct:>4}");
    println!(
        "  recycler hit rate                         {:>5.1}%  ({hits}/{VARIANTS})",
        hit_rate * 100.0
    );
    assert_eq!(norm_distinct, 1, "normalization must converge all variants");
    assert_eq!(hits, VARIANTS - 1, "all but the first execution must hit");

    // ---- JSON snapshot ------------------------------------------------
    let out_path = std::env::var("RDB_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_sql.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!(
        "{{\n  \"bench\": \"sql_prepare\",\n  \"q1_parse_ns\": {parse_ns},\n  \
         \"q1_parse_bind_ns\": {compile_ns},\n  \"q1_prepare_sql_ns\": {prepare_ns},\n  \
         \"q6_variants\": {VARIANTS},\n  \"q6_distinct_fp_raw\": {raw_distinct},\n  \
         \"q6_distinct_fp_normalized\": {norm_distinct},\n  \"q6_hit_rate\": {hit_rate:.4}\n}}\n"
    );
    std::fs::write(&out_path, json).expect("write BENCH_sql.json");
    println!("snapshot -> {out_path}");
}

/// `Value::Date` helper (keeps the bench free of a direct rdb_vector
/// import list).
fn rdb_vector_date(days: i32) -> rdb_vector::Value {
    rdb_vector::Value::Date(days)
}
