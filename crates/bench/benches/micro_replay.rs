//! Micro-benchmark: cache-hit replay cost as a function of result size.
//!
//! The recycler's value proposition is that a cache hit costs (almost)
//! nothing. This bench populates the recycler with a cached result of N
//! rows, then measures the cost of replaying it through a prepared
//! statement — the `CachedExec` → `QueryHandle` path a SkyServer hot
//! template takes on every repeat execution. With zero-copy batches the
//! replay cost should be near-independent of N; with deep-copied batches it
//! grows linearly (a memcpy tax proportional to the result).
//!
//! Emits a machine-readable snapshot to `BENCH_replay.json` at the
//! workspace root (override the path with `RDB_BENCH_OUT`) so CI and the
//! perf trajectory in CHANGES.md have a stable artifact to diff.

use std::time::Instant;

use rdb_bench::banner;
use rdb_engine::Engine;
use rdb_expr::{Expr, Params};
use rdb_plan::scan;
use rdb_recycler::RecyclerConfig;
use rdb_storage::{Catalog, TableBuilder};
use rdb_vector::{DataType, Schema, Value};
use std::sync::Arc;

const SAMPLES: usize = 30;

fn catalog(rows: usize) -> Arc<Catalog> {
    let schema = Schema::from_pairs([
        ("k", DataType::Int),
        ("v", DataType::Float),
        ("tag", DataType::Str),
    ]);
    let mut b = TableBuilder::new("t", schema, rows);
    for i in 0..rows as i64 {
        b.push_row(vec![
            Value::Int(i),
            Value::Float(i as f64 * 0.5),
            Value::str(if i % 2 == 0 { "even" } else { "odd" }),
        ]);
    }
    let mut cat = Catalog::new();
    cat.register(b.finish()).expect("register table");
    Arc::new(cat)
}

struct Measurement {
    rows: usize,
    miss_ns: u64,
    replay_ns: u64,
    ns_per_row: f64,
}

fn measure(rows: usize) -> Measurement {
    let mut config = RecyclerConfig::deterministic(256 << 20);
    config.spec_min_progress = 0.0;
    let engine = Engine::builder(catalog(rows)).recycler(config).build();
    let session = engine.session();
    // Selects every row: the cached result is the full N-row table slice.
    let plan = scan("t", &["k", "v", "tag"]).select(Expr::name("k").ge(Expr::lit(0)));
    let prepared = session.prepare(&plan).expect("prepare");
    let params = Params::none();

    // First execution computes and materializes into the recycler cache.
    let t0 = Instant::now();
    let first = prepared.execute(&params).expect("first run").into_outcome();
    let miss_ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(first.batch.rows(), rows);
    assert!(!first.reused(), "first run must compute");

    // Steady state: every execution replays the cached result. Drain the
    // handle batch-at-a-time (no concatenation) — the pipelined consumption
    // pattern — and take the median over SAMPLES runs.
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let mut handle = prepared.execute(&params).expect("replay");
        let mut seen = 0usize;
        for b in &mut handle {
            seen += b.rows();
        }
        let ns = t.elapsed().as_nanos() as u64;
        assert_eq!(seen, rows);
        assert!(handle.reused(), "steady state must hit the cache");
        samples.push(ns);
    }
    samples.sort_unstable();
    let replay_ns = samples[samples.len() / 2];
    Measurement {
        rows,
        miss_ns,
        replay_ns,
        ns_per_row: replay_ns as f64 / rows as f64,
    }
}

fn main() {
    banner("micro_replay: cache-hit replay cost vs result size");
    println!(
        "{:>10} {:>14} {:>14} {:>12}",
        "rows", "miss (us)", "replay (us)", "ns/row"
    );
    let mut results = Vec::new();
    for &rows in &[10_000usize, 100_000, 400_000] {
        let m = measure(rows);
        println!(
            "{:>10} {:>14.1} {:>14.1} {:>12.2}",
            m.rows,
            m.miss_ns as f64 / 1e3,
            m.replay_ns as f64 / 1e3,
            m.ns_per_row
        );
        results.push(m);
    }

    // JSON snapshot for CI and the perf trajectory.
    let out_path = std::env::var("RDB_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_replay.json", env!("CARGO_MANIFEST_DIR")));
    let entries: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "  {{ \"rows\": {}, \"miss_ns\": {}, \"replay_ns\": {}, \"ns_per_row\": {:.3} }}",
                m.rows, m.miss_ns, m.replay_ns, m.ns_per_row
            )
        })
        .collect();
    let json = format!(
        "{{\n\"bench\": \"micro_replay\",\n\"samples\": {},\n\"results\": [\n{}\n]\n}}\n",
        SAMPLES,
        entries.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write BENCH_replay.json");
    println!("\nsnapshot written to {out_path}");
}
