//! Ablation bench (not in the paper): which design choices of §III-C/§IV
//! carry the improvement?
//!
//! Axes, each called out in DESIGN.md:
//! * subsumption on/off (§IV-A);
//! * cache size sweep (the benefit metric + Dantzig replacement must
//!   degrade gracefully as the cache shrinks);
//! * history threshold (`min_refs_to_store`).

use std::time::Duration;

use rdb_bench::{banner, ms, scale_factor};
use rdb_engine::Engine;
use rdb_recycler::RecyclerConfig;
use rdb_tpch::{generate, make_streams, StreamOptions, TpchConfig};

fn run(catalog: &std::sync::Arc<rdb_storage::Catalog>, sf: f64, cfg: RecyclerConfig) -> Duration {
    let streams = make_streams(catalog, &StreamOptions::new(16, sf));
    let engine = Engine::builder(catalog.clone()).recycler(cfg).build();
    engine.run_streams(&streams).avg_stream_time()
}

fn base(cache: u64) -> RecyclerConfig {
    let mut c = RecyclerConfig::speculative(cache);
    c.spec_min_progress = 0.0;
    c
}

fn main() {
    banner("Ablation: recycler design choices (16-stream TPC-H, avg ms/stream)");
    let sf = scale_factor();
    let catalog = generate(&TpchConfig {
        scale: sf,
        seed: 2013,
    });
    let cache: u64 = 256 * 1024 * 1024;

    let full = run(&catalog, sf, base(cache));
    println!("\n{:<34} {:>10}", "configuration", "ms/stream");
    println!("{:<34} {:>10}", "full recycler", ms(full));

    let mut no_sub = base(cache);
    no_sub.enable_subsumption = false;
    println!(
        "{:<34} {:>10}",
        "no subsumption",
        ms(run(&catalog, sf, no_sub))
    );

    let mut high_thresh = base(cache);
    high_thresh.min_refs_to_store = 4.0;
    println!(
        "{:<34} {:>10}",
        "history threshold hR>=4",
        ms(run(&catalog, sf, high_thresh))
    );

    let mut fast_age = base(cache);
    fast_age.aging_alpha = 0.5;
    println!(
        "{:<34} {:>10}",
        "aggressive aging (alpha=0.5)",
        ms(run(&catalog, sf, fast_age))
    );

    println!("\ncache size sweep:");
    for shift in [14u32, 18, 22, 26] {
        let c = 1u64 << shift;
        println!(
            "{:<34} {:>10}",
            format!("cache = {} KiB", c / 1024),
            ms(run(&catalog, sf, base(c)))
        );
    }
    println!(
        "\nExpected shape: the full recycler is fastest; shrinking the cache\n\
         degrades smoothly (benefit-ordered eviction); over-strict history\n\
         thresholds and over-aggressive aging lose reuse opportunities."
    );
}
