//! Operator-state recycling: cold vs recycled hash-join builds.
//!
//! A probe-dominated repeated join: every query probes the *same* large
//! build side (a 200k-row dimension table) with a different small probe
//! filter, so the result cache misses every time but — with recycling on —
//! the hash build is constructed once and served warm thereafter. The
//! `cold` configuration (recycling off) rebuilds it for every query; the
//! gap between the two is exactly the build cost the recycler saves.
//!
//! The stream also repeats a few variants verbatim, so warm *result* hits
//! mix with warm *build* hits — the per-kind counters tell them apart.
//!
//! Emits `BENCH_hashcache.json` at the workspace root (override with
//! `RDB_BENCH_OUT`).

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use rdb_engine::Engine;
use rdb_expr::{AggFunc, Expr};
use rdb_plan::{scan, Plan};
use rdb_recycler::RecyclerConfig;
use rdb_storage::{Catalog, TableBuilder};
use rdb_vector::{DataType, Schema, Value};

const BUILD_ROWS: i64 = 200_000;
const PROBE_ROWS: i64 = 20_000;
const VARIANTS: usize = 10;
const REPEATS: usize = 4; // verbatim repeats → result-cache hits

fn catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new();
    let dim_schema = Schema::from_pairs([
        ("d_key", DataType::Int),
        ("d_group", DataType::Int),
        ("d_weight", DataType::Float),
    ]);
    let mut dim = TableBuilder::new("dim", dim_schema, BUILD_ROWS as usize);
    for i in 0..BUILD_ROWS {
        dim.push_row(vec![
            Value::Int(i),
            Value::Int(i % 16),
            Value::Float((i % 1000) as f64 * 0.25),
        ]);
    }
    cat.register(dim.finish()).unwrap();
    let fact_schema = Schema::from_pairs([("f_key", DataType::Int), ("f_val", DataType::Float)]);
    let mut fact = TableBuilder::new("fact", fact_schema, PROBE_ROWS as usize);
    for i in 0..PROBE_ROWS {
        fact.push_row(vec![
            Value::Int((i * 7919) % BUILD_ROWS),
            Value::Float(i as f64 * 0.5),
        ]);
    }
    cat.register(fact.finish()).unwrap();
    Arc::new(cat)
}

/// One probe variant: a thin slice of the fact table joined against the
/// full dim build, aggregated so the output is small and deterministic.
fn variant(v: usize) -> Plan {
    let lo = (v as i64) * 1_000;
    scan("fact", &["f_key", "f_val"])
        .select(
            Expr::name("f_val")
                .ge(Expr::lit(lo as f64))
                .and(Expr::name("f_val").lt(Expr::lit((lo + 1_000) as f64))),
        )
        .inner_join(
            scan("dim", &["d_key", "d_group", "d_weight"]),
            vec![Expr::name("f_key")],
            vec![Expr::name("d_key")],
        )
        .aggregate(
            vec![(Expr::name("d_group"), "d_group")],
            vec![
                (AggFunc::Sum(Expr::name("f_val")), "sum_val"),
                (AggFunc::Sum(Expr::name("d_weight")), "sum_weight"),
            ],
        )
}

fn engine(recycling: bool, dop: usize) -> Arc<Engine> {
    let mut builder = Engine::builder(catalog()).parallelism(dop);
    builder = if recycling {
        let mut c = RecyclerConfig::deterministic(256 << 20);
        c.spec_min_progress = 0.0;
        builder.recycler(c)
    } else {
        builder.no_recycler()
    };
    builder.build()
}

struct RunResult {
    warmup_ms: f64,
    tail_ms: f64,
    result_hits: u64,
    hash_build_hits: u64,
    agg_table_hits: u64,
    rows: Vec<Vec<Value>>,
}

/// Run the full stream (VARIANTS distinct + REPEATS verbatim) and time the
/// tail separately from the first (build-constructing) query.
fn run(engine: &Arc<Engine>) -> RunResult {
    let session = engine.session();
    let mut rows = Vec::new();
    let t0 = Instant::now();
    let first = session.query(&variant(0)).expect("query").into_outcome();
    rows.extend(first.batch.to_rows());
    let warmup_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    for v in 1..VARIANTS {
        let out = session.query(&variant(v)).expect("query").into_outcome();
        rows.extend(out.batch.to_rows());
    }
    for v in 0..REPEATS {
        let out = session.query(&variant(v)).expect("query").into_outcome();
        rows.extend(out.batch.to_rows());
    }
    let tail_ms = t1.elapsed().as_secs_f64() * 1e3;
    let (result_hits, hash_build_hits, agg_table_hits) = match engine.recycler() {
        Some(r) => (
            r.stats.reuses.load(Ordering::Relaxed)
                + r.stats.subsumption_reuses.load(Ordering::Relaxed),
            r.stats.hash_build_hits.load(Ordering::Relaxed),
            r.stats.agg_table_hits.load(Ordering::Relaxed),
        ),
        None => (0, 0, 0),
    };
    RunResult {
        warmup_ms,
        tail_ms,
        result_hits,
        hash_build_hits,
        agg_table_hits,
        rows,
    }
}

fn main() {
    rdb_bench::banner("hash_reuse — cold vs recycled hash-join builds");
    let recycled_engine = engine(true, 1);
    let recycled = run(&recycled_engine);
    let cold_engine = engine(false, 1);
    let cold = run(&cold_engine);
    // The same stream at DOP 4, recycled: the shared build crosses worker
    // pipelines, and every row must come out identical to the serial run.
    let par_engine = engine(true, 4);
    let parallel = run(&par_engine);

    assert_eq!(cold.rows, recycled.rows, "recycled results must be exact");
    assert_eq!(
        recycled.rows, parallel.rows,
        "DOP must not change a single byte of any result"
    );
    assert!(
        recycled.hash_build_hits > 0,
        "probe variants must hit the cached build"
    );
    assert!(
        recycled.result_hits > 0,
        "verbatim repeats must hit the result cache"
    );

    let speedup = cold.tail_ms / recycled.tail_ms.max(1e-9);
    println!(
        "{:>12} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "config", "warmup(ms)", "tail(ms)", "build hits", "result hits", "agg hits"
    );
    for (name, r) in [
        ("recycled", &recycled),
        ("cold", &cold),
        ("dop4", &parallel),
    ] {
        println!(
            "{:>12} {:>12.1} {:>10.1} {:>12} {:>12} {:>10}",
            name, r.warmup_ms, r.tail_ms, r.hash_build_hits, r.result_hits, r.agg_table_hits
        );
    }
    println!("\nrecycled builds are {speedup:.1}x cold builds on the probe-dominated tail");
    assert!(
        speedup >= 2.0,
        "recycled builds must be >= 2x cold builds (got {speedup:.2}x)"
    );

    let out_path = std::env::var("RDB_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_hashcache.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!(
        "{{\n\"bench\": \"hash_reuse\",\n\"build_rows\": {},\n\"probe_rows\": {},\n\
         \"variants\": {},\n\"repeats\": {},\n\"cold_tail_ms\": {:.1},\n\
         \"recycled_tail_ms\": {:.1},\n\"speedup\": {:.2},\n\
         \"hash_build_hits\": {},\n\"result_hits\": {},\n\"agg_table_hits\": {}\n}}\n",
        BUILD_ROWS,
        PROBE_ROWS,
        VARIANTS,
        REPEATS,
        cold.tail_ms,
        recycled.tail_ms,
        speedup,
        recycled.hash_build_hits,
        recycled.result_hits,
        recycled.agg_table_hits,
    );
    std::fs::write(&out_path, json).expect("write BENCH_hashcache.json");
    println!("snapshot written to {out_path}");
}
