//! Figure 7 — average evaluation time per TPC-H stream.
//!
//! Paper setup: TPC-H throughput runs with 4/16/64/256 streams, each stream
//! a permutation of the 22 patterns with QGEN parameters; modes OFF
//! (naive), HIST (history), SPEC (speculation), PA (proactive). The paper's
//! headline numbers: 10% improvement at 4 streams, 24% at 16, 55% at 64,
//! 79% at 256, with SPEC ≥ HIST and PA best from 64 streams up.

use std::time::Duration;

use rdb_bench::{banner, max_streams, ms, pct, scale_factor};
use rdb_engine::Engine;
use rdb_recycler::{RecyclerConfig, RecyclerMode};
use rdb_tpch::{generate, make_streams, StreamOptions, TpchConfig};

fn mode_config(mode: &str, cache: u64) -> Option<RecyclerConfig> {
    let mut c = RecyclerConfig::speculative(cache);
    c.spec_min_progress = 0.0;
    match mode {
        "OFF" => None,
        "HIST" => {
            c.mode = RecyclerMode::History;
            Some(c)
        }
        "SPEC" | "PA" => Some(c),
        _ => unreachable!(),
    }
}

fn main() {
    banner("Figure 7: TPC-H throughput — avg evaluation time per stream (ms)");
    let sf = scale_factor();
    let catalog = generate(&TpchConfig {
        scale: sf,
        seed: 2013,
    });
    println!(
        "scale factor {sf}, lineitem rows: {}",
        catalog.get("lineitem").unwrap().rows()
    );
    let cache: u64 = 512 * 1024 * 1024;
    let stream_counts: Vec<usize> = [4usize, 16, 64, 256]
        .into_iter()
        .filter(|&s| s <= max_streams())
        .collect();

    println!(
        "\n{:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "streams", "OFF", "HIST", "SPEC", "PA", "best-imprv"
    );
    for &n in &stream_counts {
        let mut row: Vec<Duration> = Vec::new();
        for mode in ["OFF", "HIST", "SPEC", "PA"] {
            let opts = if mode == "PA" {
                StreamOptions::new(n, sf).proactive()
            } else {
                StreamOptions::new(n, sf)
            };
            let streams = make_streams(&catalog, &opts);
            let builder = Engine::builder(catalog.clone());
            let engine = match mode_config(mode, cache) {
                Some(c) => builder.recycler(c),
                None => builder.no_recycler(),
            }
            .build();
            let report = engine.run_streams(&streams);
            row.push(report.avg_stream_time());
        }
        let off = row[0].as_secs_f64();
        let best = row[1..]
            .iter()
            .map(|d| d.as_secs_f64())
            .fold(f64::INFINITY, f64::min);
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
            n,
            ms(row[0]),
            ms(row[1]),
            ms(row[2]),
            ms(row[3]),
            pct(1.0 - best / off),
        );
    }
    println!(
        "\nPaper shape: improvement grows with stream count (10% @4 → 79%\n\
         @256); SPEC beats HIST; PA best at high stream counts."
    );
}
