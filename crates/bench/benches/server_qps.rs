//! Wire-protocol serving throughput: real sockets, real pgwire frames.
//!
//! A [`rdb_server::Server`] over a synthetic table is hammered by 16, 64,
//! and 256 concurrent client connections, each running parameterized
//! point/range queries from a small template pool over the extended
//! protocol — the shape of a dashboard fan-out, where many connections
//! keep landing on the same recycler fingerprints. Reported per
//! connection count: QPS, p50/p99 statement latency, and the recycler
//! hit rate observed through the server's own stats.
//!
//! Emits `BENCH_serve.json` at the workspace root (override with
//! `RDB_BENCH_OUT`).

#[path = "../../../tests/support/pg_client.rs"]
mod pg_client;

use std::sync::Arc;
use std::time::{Duration, Instant};

use pg_client::PgClient;
use rdb_recycler::RecyclerConfig;
use rdb_server::{Server, ServerBuilder};
use rdb_storage::{Catalog, TableBuilder};
use rdb_vector::{DataType, Schema, Value};

const ROWS: i64 = 200_000;
const KEYS: i64 = 500;
/// Statements per connection at each fan-out level.
const PER_CLIENT: usize = 40;
/// Distinct parameter bindings: small enough that connections overlap on
/// the same cached results, large enough to exercise matching.
const BINDINGS: i64 = 8;

fn catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new();
    let schema = Schema::from_pairs([
        ("k", DataType::Int),
        ("v", DataType::Float),
        ("s", DataType::Str),
    ]);
    let mut t = TableBuilder::new("t", schema, ROWS as usize);
    for i in 0..ROWS {
        t.push_row(vec![
            Value::Int(i % KEYS),
            Value::Float((i % 997) as f64 * 0.5),
            Value::str(["alpha", "beta", "gamma", "delta"][(i % 4) as usize]),
        ]);
    }
    cat.register(t.finish()).unwrap();
    Arc::new(cat)
}

struct Level {
    clients: usize,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    hit_rate: f64,
    errors: u64,
}

fn run_level(server: &Server, clients: usize) -> Level {
    let addr = server.local_addr();
    let hits_before = server.stats().recycler_hits;
    let lookups_before = server.stats().recycler_lookups;
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = PgClient::connect(addr).expect("connect");
                let mut latencies = Vec::with_capacity(PER_CLIENT);
                let mut errors = 0u64;
                for i in 0..PER_CLIENT {
                    let bound = ((c + i) as i64 % BINDINGS) * (KEYS / BINDINGS);
                    let t0 = Instant::now();
                    // Aggregates and point lookups: heavy to compute the
                    // first time, cheap to recycle, small on the wire.
                    let cycle = match i % 2 {
                        0 => client.extended(
                            "SELECT count(k), sum(v) FROM t WHERE k < $1",
                            &[Some(&bound.to_string())],
                        ),
                        _ => client.extended(
                            "SELECT s, v FROM t WHERE k = $1 AND v > 400.0",
                            &[Some(&bound.to_string())],
                        ),
                    }
                    .expect("query cycle");
                    latencies.push(t0.elapsed());
                    errors += cycle.errors().len() as u64;
                }
                client.terminate();
                (latencies, errors)
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = Vec::with_capacity(clients * PER_CLIENT);
    let mut errors = 0u64;
    for h in handles {
        let (l, e) = h.join().expect("client thread");
        latencies.extend(l);
        errors += e;
    }
    let wall = started.elapsed();
    latencies.sort();
    let pick = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
    let stats = server.stats();
    let lookups = stats.recycler_lookups.saturating_sub(lookups_before);
    let hits = stats.recycler_hits.saturating_sub(hits_before);
    Level {
        clients,
        qps: latencies.len() as f64 / wall.as_secs_f64(),
        p50_us: pick(0.50).as_secs_f64() * 1e6,
        p99_us: pick(0.99).as_secs_f64() * 1e6,
        hit_rate: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
        errors,
    }
}

fn main() {
    rdb_bench::banner("server_qps — pgwire serving throughput and recycler sharing");
    let mut config = RecyclerConfig::deterministic(256 << 20);
    config.spec_min_progress = 0.0;
    let server = ServerBuilder::new(catalog())
        .recycler(config)
        .workers(16)
        .max_concurrent_queries(16)
        .admission_queue_limit(4096)
        .serve()
        .expect("bind server");

    // Warm the listener + first fingerprints out of the measurement.
    run_level(&server, 4);

    let levels: Vec<Level> = [16usize, 64, 256]
        .into_iter()
        .map(|clients| run_level(&server, clients))
        .collect();

    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "clients", "qps", "p50 (us)", "p99 (us)", "hit rate", "errors"
    );
    for l in &levels {
        println!(
            "{:>8} {:>10.0} {:>12.0} {:>12.0} {:>9.1}% {:>8}",
            l.clients,
            l.qps,
            l.p50_us,
            l.p99_us,
            l.hit_rate * 100.0,
            l.errors
        );
        assert_eq!(l.errors, 0, "serving workload must be error-free");
        assert!(
            l.hit_rate > 0.5,
            "cross-connection recycling must carry the repeated templates"
        );
    }

    let out_path = std::env::var("RDB_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")));
    let entries: Vec<String> = levels
        .iter()
        .map(|l| {
            format!(
                "{{\"clients\": {}, \"qps\": {:.0}, \"p50_us\": {:.0}, \
                 \"p99_us\": {:.0}, \"recycler_hit_rate\": {:.4}}}",
                l.clients, l.qps, l.p50_us, l.p99_us, l.hit_rate
            )
        })
        .collect();
    let json = format!(
        "{{\n\"bench\": \"server_qps\",\n\"rows\": {},\n\"per_client\": {},\n\
         \"levels\": [\n  {}\n]\n}}\n",
        ROWS,
        PER_CLIENT,
        entries.join(",\n  ")
    );
    std::fs::write(&out_path, json).expect("write BENCH_serve.json");
    println!("snapshot written to {out_path}");
}
