//! Criterion microbench: recycler-graph matching/insertion throughput.
//!
//! Complements Fig. 10 with controlled graph sizes: match one 22-node plan
//! against recycler graphs preloaded with increasing numbers of distinct
//! queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rdb_recycler::RecyclerGraph;
use rdb_tpch::{generate, TpchConfig};
use rdb_vector::Schema;

fn bench_matching(c: &mut Criterion) {
    let catalog = generate(&TpchConfig {
        scale: 0.001,
        seed: 1,
    });
    let schema_of = move |p: &rdb_plan::Plan| -> Schema { p.schema(&catalog).expect("schema") };
    let mut group = c.benchmark_group("graph_matching");
    for &preload in &[0usize, 64, 256, 1024] {
        group.bench_with_input(
            BenchmarkId::new("match_q3", preload),
            &preload,
            |b, &preload| {
                let mut g = RecyclerGraph::new();
                let mut rng = SmallRng::seed_from_u64(3);
                let cat2 = generate(&TpchConfig {
                    scale: 0.001,
                    seed: 1,
                });
                for i in 0..preload {
                    // Distinct parameterizations fill the graph.
                    let q = rdb_tpch::build_query(1 + (i % 22), &mut rng, 0.001, false);
                    let bound = q.bind(&cat2).expect("bind");
                    g.match_or_insert(&bound, &schema_of);
                }
                let mut probe_rng = SmallRng::seed_from_u64(77);
                let probe = rdb_tpch::build_query(3, &mut probe_rng, 0.001, false)
                    .bind(&cat2)
                    .expect("bind");
                // Insert once so the timed match is a pure hit.
                g.match_or_insert(&probe, &schema_of);
                b.iter(|| {
                    let m = g.match_or_insert(std::hint::black_box(&probe), &schema_of);
                    assert_eq!(m.inserted_count(), 0);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
