//! Shared helpers for the experiment harness.
//!
//! Each paper figure has its own bench target (`harness = false`) that
//! prints the same rows/series the paper reports. Scale knobs come from the
//! environment so the full suite stays laptop-sized by default:
//!
//! * `RDB_SF` — TPC-H scale factor (default 0.02);
//! * `RDB_STREAMS` — maximum stream count for the throughput sweeps
//!   (default 256);
//! * `RDB_SKY_OBJECTS` — synthetic sky catalog size (default 40000).

use std::time::Duration;

/// TPC-H scale factor for the experiment benches.
pub fn scale_factor() -> f64 {
    std::env::var("RDB_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02)
}

/// Maximum stream count for the sweeps.
pub fn max_streams() -> usize {
    std::env::var("RDB_STREAMS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

/// Synthetic sky catalog size.
pub fn sky_objects() -> usize {
    std::env::var("RDB_SKY_OBJECTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000)
}

/// Milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Print a header band for one experiment.
pub fn banner(title: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}
