//! Incremental repair of cached results from DML deltas.
//!
//! PR 3's invalidation path is evict-on-write: any epoch commit against a
//! base table throws away every dependent cache entry, and under a mixed
//! read/write workload the recycler loses exactly the entries that are most
//! expensive to rebuild. This crate turns eviction into a continuum
//! (following "Revisiting Reuse in Main Memory Database Systems"): an epoch
//! commit carries a typed [`Delta`] — the appended or deleted rows
//! themselves, not just the new epoch — and each dependent entry is either
//! **repaired in place** or evicted, depending on a conservative
//! classification of its plan.
//!
//! # Repairability rules
//!
//! Classification is per `(plan, changed table)` pair, computed once at
//! graph-insert time ([`classify`]):
//!
//! | class               | shape                                                | append                     | delete                          |
//! |---------------------|------------------------------------------------------|----------------------------|---------------------------------|
//! | `repairable-select` | Select/Project/probe-side-safe Join chain over the scan | run plan over delta, append | evict (no row identity)        |
//! | `repairable-agg`    | that chain under a root Aggregate, resumable aggs    | resume fold, fold delta    | count-gated retraction, else evict |
//! | `repairable-topn`   | that chain under a root TopN                         | stable merge with top-N of delta | evict                     |
//! | `evict-only`        | everything else                                      | evict                      | evict                           |
//!
//! A chain is *probe-side-safe* when the changed table's scan occurs exactly
//! once, every operator between it and the root is Select, Project, or a
//! Join whose changed-table side is the **probe** (left) input with kind
//! inner/semi/anti/single — those emit probe rows in probe order, so
//! appended base rows surface as appended output rows. A left-outer join is
//! evict-only even on the probe side: its NULL-padded rows are emitted at
//! each *batch* boundary, so its output order depends on the scan's batch
//! grid, which an append shifts. A join whose **build** side scans the
//! changed table is evict-only (the build must be rebuilt), as is any
//! Sort/Limit/UnionAll on the path or a non-root Aggregate.
//!
//! # The float-exactness carve-out
//!
//! Repaired entries must be **byte-identical** to recomputation at any
//! degree of parallelism. For aggregates this rules out merging
//! independently computed delta partials: `old + (d1 + d2)` is not
//! `((old + d1) + d2)` in floating point. Instead, append-repair *resumes*
//! the serial fold — the cached finished value of a float `sum` **is** the
//! exact intermediate state of the serial fold over the old rows, so
//! continuing that fold with the delta rows one by one reproduces
//! recomputation bit for bit. `sum`/`min`/`max`/`count` therefore stay
//! repairable (floats included); `avg` and `count(distinct)` do not — their
//! finished values under-determine the accumulator (the sum/count split,
//! the value set) — and classify as evict-only.
//!
//! Delete-repair of aggregates is gated harder: only pure counting
//! aggregates (`count(*)`/`count(expr)`, with `count(*)` present to detect
//! fully-retracted groups) can subtract deleted rows soundly. A `sum` can
//! not: the group `[5, NULL]` sums to 5, deleting the 5 must yield NULL,
//! but subtraction yields 0.
//!
//! # Delta evaluation
//!
//! Repair kernels evaluate the entry's own plan (or the aggregate's child)
//! over a *delta catalog*: the post-commit snapshot with the changed table
//! swapped for a table holding only the delta rows. Evaluation is serial
//! (DOP 1) — delta batches are tiny, and serial order is what the resume
//! fold and the top-N merge tie-breaks are defined against.

use std::sync::Arc;

use rdb_exec::{collect_all, ExecContext, FnRegistry, MaterializedResult, ResumedAgg};
use rdb_expr::{eval, AggFunc};
use rdb_plan::{JoinKind, Plan};
use rdb_storage::{Catalog, CatalogSnapshot, Table};
use rdb_vector::column::ColumnBuilder;
use rdb_vector::row::SortOrder;
use rdb_vector::{Batch, Column, Schema, Value};

/// The typed change one epoch commit applies to one table: the rows
/// themselves, in commit order. Exactly one of `appended`/`deleted` is
/// non-empty (a commit is an append, a delete, or a wholesale replace —
/// replaces carry no delta and always invalidate).
#[derive(Debug, Clone)]
pub struct Delta {
    /// The committed table.
    pub table: String,
    /// Its (epoch-invariant) schema.
    pub schema: Schema,
    /// The epoch the commit produced.
    pub epoch: u64,
    /// Rows appended after the predecessor's last row, in append order.
    pub appended: Batch,
    /// Deleted rows' full values, in ascending predecessor-position order.
    pub deleted: Batch,
}

impl Delta {
    /// Delta for an append commit.
    pub fn append(
        table: impl Into<String>,
        schema: Schema,
        epoch: u64,
        rows: &[Vec<Value>],
    ) -> Delta {
        let appended = batch_from_rows(&schema, rows);
        let deleted = Batch::concat_or_empty(&schema, &[]);
        Delta {
            table: table.into(),
            schema,
            epoch,
            appended,
            deleted,
        }
    }

    /// Delta for a delete commit; `rows` are the deleted rows' captured
    /// values in predecessor order.
    pub fn delete(
        table: impl Into<String>,
        schema: Schema,
        epoch: u64,
        rows: &[Vec<Value>],
    ) -> Delta {
        let deleted = batch_from_rows(&schema, rows);
        let appended = Batch::concat_or_empty(&schema, &[]);
        Delta {
            table: table.into(),
            schema,
            epoch,
            appended,
            deleted,
        }
    }

    /// Rows the delta carries.
    pub fn rows(&self) -> usize {
        self.appended.rows() + self.deleted.rows()
    }

    /// Whether this delta changes nothing (the engine never emits these —
    /// no-op DML commits no epoch — but repair guards on it anyway).
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }
}

/// Build a dense batch from schema-ordered rows (same coercions as table
/// appends: NULL anywhere, ints promote to float).
fn batch_from_rows(schema: &Schema, rows: &[Vec<Value>]) -> Batch {
    if rows.is_empty() {
        return Batch::concat_or_empty(schema, &[]);
    }
    let columns: Vec<Column> = (0..schema.len())
        .map(|i| {
            let mut b = ColumnBuilder::new(schema.field(i).dtype, rows.len());
            for row in rows {
                b.push(row[i].clone());
            }
            b.finish()
        })
        .collect();
    Batch::new(columns)
}

/// How a cached entry can react to a change of one of its base tables.
/// See the module docs for the full rules table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Repairability {
    /// Select/Project/probe-safe-Join chain: append delta output rows.
    Select,
    /// Root aggregate over such a chain with resumable aggregates.
    Agg,
    /// Root top-N over such a chain.
    TopN,
    /// Must be evicted on any change.
    EvictOnly,
}

impl Repairability {
    /// Label for explain/stats output.
    pub fn label(&self) -> &'static str {
        match self {
            Repairability::Select => "repairable-select",
            Repairability::Agg => "repairable-agg",
            Repairability::TopN => "repairable-topn",
            Repairability::EvictOnly => "evict-only",
        }
    }

    /// Whether any repair path exists at all.
    pub fn repairable(&self) -> bool {
        !matches!(self, Repairability::EvictOnly)
    }
}

/// Number of scans of `table` in the subtree.
fn scan_count(plan: &Plan, table: &str) -> usize {
    let own = matches!(plan, Plan::Scan { table: t, .. } if t == table) as usize;
    own + plan
        .children()
        .iter()
        .map(|c| scan_count(c, table))
        .sum::<usize>()
}

/// Whether rows appended to `table` surface as rows appended at the end of
/// this subtree's (serial, concatenated) output, with the pre-existing
/// output prefix unchanged. This is the invariant select-class repair
/// rests on.
fn streams_appends(plan: &Plan, table: &str) -> bool {
    match plan {
        Plan::Scan { table: t, .. } => t == table,
        Plan::Select { child, .. } | Plan::Project { child, .. } => streams_appends(child, table),
        Plan::Join {
            left, right, kind, ..
        } => {
            matches!(
                kind,
                JoinKind::Inner | JoinKind::Semi | JoinKind::Anti | JoinKind::Single
            ) && scan_count(right, table) == 0
                && streams_appends(left, table)
        }
        _ => false,
    }
}

/// Whether an aggregate's accumulator can be recovered from its finished
/// value (the float-exactness carve-out: `avg` and `count(distinct)` can
/// not; everything else — float sums included — can).
fn resumable(a: &AggFunc) -> bool {
    !matches!(a, AggFunc::Avg(_) | AggFunc::CountDistinct(_))
}

/// Whether `aggs` qualify for count-gated delete retraction: all counting,
/// with a `count(*)` present to detect fully-retracted groups.
pub fn count_only(aggs: &[AggFunc]) -> bool {
    aggs.iter().any(|a| matches!(a, AggFunc::CountStar))
        && aggs
            .iter()
            .all(|a| matches!(a, AggFunc::CountStar | AggFunc::Count(_)))
}

/// Classify how the cached output of `plan` can be repaired when `table`
/// changes. Conservative and purely syntactic: anything not provably safe
/// is [`Repairability::EvictOnly`].
pub fn classify(plan: &Plan, table: &str) -> Repairability {
    if scan_count(plan, table) != 1 {
        return Repairability::EvictOnly;
    }
    match plan {
        Plan::Aggregate { child, aggs, .. } => {
            if streams_appends(child, table) && aggs.iter().all(resumable) {
                Repairability::Agg
            } else {
                Repairability::EvictOnly
            }
        }
        Plan::TopN { child, .. } => {
            if streams_appends(child, table) {
                Repairability::TopN
            } else {
                Repairability::EvictOnly
            }
        }
        _ => {
            if streams_appends(plan, table) {
                Repairability::Select
            } else {
                Repairability::EvictOnly
            }
        }
    }
}

/// The node-level explain annotation: the best class across the plan's
/// base tables (a node is worth repairing if *some* write pattern repairs
/// it), or evict-only when every table change evicts it.
pub fn classify_node(plan: &Plan) -> Repairability {
    let mut best = Repairability::EvictOnly;
    for t in plan.base_tables() {
        let c = classify(plan, &t);
        if c.repairable() {
            best = c;
            break;
        }
    }
    best
}

/// The post-commit snapshot with the changed table swapped for a table
/// holding only `rows` (the delta). Plans evaluated over this catalog see
/// every other table at its pinned version and the changed table as just
/// its delta.
fn delta_catalog(snapshot: &CatalogSnapshot, delta: &Delta, rows: &Batch) -> Catalog {
    let mut cat = Catalog::new();
    for (name, _) in snapshot.epochs() {
        if name == delta.table {
            continue;
        }
        if let Some(t) = snapshot.get(&name) {
            cat.register(t.clone()).expect("snapshot names are unique");
        }
    }
    let columns: Vec<Column> = (0..delta.schema.len())
        .map(|i| rows.column(i).clone())
        .collect();
    cat.register(Arc::new(Table::new_at_epoch(
        delta.table.clone(),
        delta.schema.clone(),
        columns,
        delta.epoch,
    )))
    .expect("delta table name is free");
    cat
}

/// Evaluate a bound plan serially (DOP 1, no recycler) over `catalog`.
/// Returns `None` if the plan fails to build — the caller falls back to
/// eviction rather than erroring the write path.
fn run_serial(plan: &Plan, catalog: Catalog, functions: &Arc<FnRegistry>) -> Option<Vec<Batch>> {
    let ctx = ExecContext::new(Arc::new(catalog)).with_functions(functions.clone());
    let mut tree = rdb_exec::build(plan, &ctx).ok()?;
    Some(collect_all(tree.root.as_mut()))
}

/// Evaluate `plan` over the delta rows only: the appended output rows for
/// a select-class plan. Used both by repair and by live subscriptions.
pub fn eval_append(
    plan: &Plan,
    schema: &Schema,
    delta: &Delta,
    snapshot: &CatalogSnapshot,
    functions: &Arc<FnRegistry>,
) -> Option<Batch> {
    let cat = delta_catalog(snapshot, delta, &delta.appended);
    let batches = run_serial(plan, cat, functions)?;
    Some(Batch::concat_or_empty(schema, &batches))
}

/// Re-evaluate `plan` in full at `snapshot` (serial). The subscription
/// fallback when a change cannot be expressed as an appended delta.
pub fn eval_full(
    plan: &Plan,
    schema: &Schema,
    snapshot: &CatalogSnapshot,
    functions: &Arc<FnRegistry>,
) -> Option<Batch> {
    let ctx = ExecContext::new(Arc::new(snapshot.to_catalog())).with_functions(functions.clone());
    let mut tree = rdb_exec::build(plan, &ctx).ok()?;
    let batches = collect_all(tree.root.as_mut());
    Some(Batch::concat_or_empty(schema, &batches))
}

/// Repair the cached output of `plan` for `delta`, or `None` when the
/// entry must be evicted instead. The returned result is byte-identical
/// to recomputing `plan` at the post-commit snapshot (see the module docs
/// for why, kernel by kernel).
pub fn repair(
    plan: &Plan,
    cached: &MaterializedResult,
    delta: &Delta,
    snapshot: &CatalogSnapshot,
    functions: &Arc<FnRegistry>,
) -> Option<MaterializedResult> {
    if delta.is_empty() {
        return None;
    }
    let schema = &cached.schema;
    let appending = delta.appended.rows() > 0;
    match classify(plan, &delta.table) {
        Repairability::EvictOnly => None,
        Repairability::Select => {
            if !appending {
                // Deleted rows have no positional identity inside the
                // cached result (duplicate-valued rows are
                // indistinguishable), so a value-level anti-join cannot
                // guarantee byte-identity. Evict.
                return None;
            }
            let cat = delta_catalog(snapshot, delta, &delta.appended);
            let tail = run_serial(plan, cat, functions)?;
            let mut all = vec![cached.batch.clone()];
            all.extend(tail);
            Some(MaterializedResult::from_batches(schema.clone(), &all))
        }
        Repairability::Agg => {
            let Plan::Aggregate {
                child,
                group_by,
                aggs,
                ..
            } = plan
            else {
                return None;
            };
            let cat = delta_catalog(
                snapshot,
                delta,
                if appending {
                    &delta.appended
                } else {
                    &delta.deleted
                },
            );
            let input_types: Vec<_> = child
                .schema(&cat)
                .ok()?
                .fields()
                .iter()
                .map(|f| f.dtype)
                .collect();
            let output_types: Vec<_> = schema.fields().iter().map(|f| f.dtype).collect();
            let delta_input = run_serial(child, cat, functions)?;
            let out = if appending {
                let mut resumed = ResumedAgg::resume(
                    &cached.batch,
                    group_by.clone(),
                    aggs.clone(),
                    input_types,
                    output_types,
                )?;
                for b in &delta_input {
                    resumed.fold(b);
                }
                resumed.finish()
            } else {
                if !count_only(aggs) {
                    return None;
                }
                rdb_exec::retract_count_groups(
                    &cached.batch,
                    group_by.clone(),
                    aggs.clone(),
                    input_types,
                    output_types,
                    &delta_input,
                )?
            };
            Some(MaterializedResult::from_batches(schema.clone(), &out))
        }
        Repairability::TopN => {
            if !appending {
                return None;
            }
            let Plan::TopN { keys, n, .. } = plan else {
                return None;
            };
            let cat = delta_catalog(snapshot, delta, &delta.appended);
            let delta_out = run_serial(plan, cat, functions)?;
            let delta_batch = Batch::concat_or_empty(schema, &delta_out);
            let merged = merge_top_n(&cached.batch, &delta_batch, keys, *n, schema)?;
            Some(MaterializedResult {
                schema: schema.clone(),
                size_bytes: merged.size_bytes(),
                batch: merged,
            })
        }
    }
}

/// Stable two-way merge of the cached top-N rows with the top-N of the
/// delta, keeping the first `n`. Old rows win key ties: in a full
/// recomputation every pre-existing row's scan position precedes every
/// appended row's, and the executor's top-N breaks ties by position. Both
/// inputs are already in ascending (key, position) order, so the merge
/// reproduces recomputation exactly.
fn merge_top_n(
    old: &Batch,
    delta: &Batch,
    keys: &[rdb_plan::SortKeyExpr],
    n: usize,
    schema: &Schema,
) -> Option<Batch> {
    let old_keys: Vec<Column> = keys.iter().map(|k| eval(&k.expr, old)).collect();
    let new_keys: Vec<Column> = keys.iter().map(|k| eval(&k.expr, delta)).collect();
    let orders: Vec<SortOrder> = keys.iter().map(|k| k.order).collect();
    let le_old = |i: usize, j: usize| -> bool {
        for ((a, b), ord) in old_keys.iter().zip(&new_keys).zip(&orders) {
            match ord.apply(a.get(i).cmp(&b.get(j))) {
                std::cmp::Ordering::Less => return true,
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Equal => continue,
            }
        }
        true // tie: the old row's position is smaller
    };
    let mut builders: Vec<ColumnBuilder> = schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::new(f.dtype, n.min(old.rows() + delta.rows())))
        .collect();
    let (mut i, mut j, mut taken) = (0usize, 0usize, 0usize);
    while taken < n && (i < old.rows() || j < delta.rows()) {
        let from_old = if i >= old.rows() {
            false
        } else if j >= delta.rows() {
            true
        } else {
            le_old(i, j)
        };
        let (src, row) = if from_old {
            let r = (old, i);
            i += 1;
            r
        } else {
            let r = (delta, j);
            j += 1;
            r
        };
        for (c, b) in builders.iter_mut().enumerate() {
            b.push(src.column(c).get(row));
        }
        taken += 1;
    }
    Some(Batch::new(
        builders.into_iter().map(|b| b.finish()).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_expr::Expr;
    use rdb_plan::builder::scan;
    use rdb_plan::SortKeyExpr;
    use rdb_storage::TableBuilder;
    use rdb_vector::DataType;

    fn catalog_with(rows: &[(i64, f64)]) -> Catalog {
        let schema = Schema::from_pairs([("k", DataType::Int), ("v", DataType::Float)]);
        let mut b = TableBuilder::new("t", schema, rows.len());
        for (k, v) in rows {
            b.push_row(vec![Value::Int(*k), Value::Float(*v)]);
        }
        let mut cat = Catalog::new();
        cat.register(b.finish()).unwrap();
        cat
    }

    fn bound(plan: Plan, cat: &Catalog) -> Plan {
        plan.bind(cat).unwrap()
    }

    #[test]
    fn classification_rules() {
        let cat = catalog_with(&[(1, 1.0)]);
        let sel = bound(
            scan("t", &["k", "v"]).select(Expr::name("k").gt(Expr::lit(0))),
            &cat,
        );
        assert_eq!(classify(&sel, "t"), Repairability::Select);

        let agg = bound(
            scan("t", &["k", "v"]).aggregate(
                vec![(Expr::name("k"), "k")],
                vec![(AggFunc::Sum(Expr::name("v")), "s")],
            ),
            &cat,
        );
        assert_eq!(classify(&agg, "t"), Repairability::Agg);

        let avg = bound(
            scan("t", &["k", "v"]).aggregate(vec![], vec![(AggFunc::Avg(Expr::name("v")), "a")]),
            &cat,
        );
        assert_eq!(classify(&avg, "t"), Repairability::EvictOnly);

        let top = bound(
            scan("t", &["k", "v"]).top_n(vec![SortKeyExpr::asc(Expr::name("k"))], 3),
            &cat,
        );
        assert_eq!(classify(&top, "t"), Repairability::TopN);

        let sort = bound(
            scan("t", &["k", "v"]).sort(vec![SortKeyExpr::asc(Expr::name("k"))]),
            &cat,
        );
        assert_eq!(classify(&sort, "t"), Repairability::EvictOnly);
        assert_eq!(classify(&sel, "other"), Repairability::EvictOnly);
    }

    #[test]
    fn join_sides_classify_asymmetrically() {
        let schema = Schema::from_pairs([("k", DataType::Int), ("v", DataType::Float)]);
        let mut b = TableBuilder::new("u", schema, 1);
        b.push_row(vec![Value::Int(1), Value::Float(0.5)]);
        let mut cat = catalog_with(&[(1, 1.0)]);
        cat.register(b.finish()).unwrap();
        let probe = bound(
            scan("t", &["k", "v"]).inner_join(
                scan("u", &["k"]),
                vec![Expr::name("k")],
                vec![Expr::name("k")],
            ),
            &cat,
        );
        assert_eq!(classify(&probe, "t"), Repairability::Select);
        assert_eq!(
            classify(&probe, "u"),
            Repairability::EvictOnly,
            "build side crossing evicts"
        );
        let outer = bound(
            scan("t", &["k", "v"]).join(
                scan("u", &["k"]),
                JoinKind::LeftOuter,
                vec![Expr::name("k")],
                vec![Expr::name("k")],
            ),
            &cat,
        );
        assert_eq!(
            classify(&outer, "t"),
            Repairability::EvictOnly,
            "left outer pads at batch boundaries"
        );
    }

    fn materialize(plan: &Plan, cat: &Catalog, schema: &Schema) -> MaterializedResult {
        let ctx = ExecContext::new(Arc::new(cat_clone(cat)));
        let mut tree = rdb_exec::build(plan, &ctx).unwrap();
        let batches = collect_all(tree.root.as_mut());
        MaterializedResult::from_batches(schema.clone(), &batches)
    }

    // Catalog is not Clone; rebuild over the same snapshots.
    fn cat_clone(cat: &Catalog) -> Catalog {
        cat.snapshot().to_catalog()
    }

    #[test]
    fn select_repair_matches_recompute() {
        let cat = catalog_with(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        let plan = bound(
            scan("t", &["k", "v"]).select(Expr::name("k").gt(Expr::lit(1))),
            &cat,
        );
        let schema = plan.schema(&cat).unwrap();
        let cached = materialize(&plan, &cat, &schema);

        let new_rows = vec![
            vec![Value::Int(0), Value::Float(0.25)],
            vec![Value::Int(9), Value::Float(9.5)],
        ];
        cat.versioned("t").unwrap().append(&new_rows).unwrap();
        let snap = cat.snapshot();
        let delta = Delta::append("t", snap.get("t").unwrap().schema().clone(), 1, &new_rows);
        let fns = Arc::new(FnRegistry::new());
        let repaired = repair(&plan, &cached, &delta, &snap, &fns).expect("repairable");
        let recomputed = materialize(&plan, &snap.to_catalog(), &schema);
        assert_eq!(repaired.batch.to_rows(), recomputed.batch.to_rows());
        assert_eq!(repaired.size_bytes, recomputed.size_bytes);
    }

    #[test]
    fn agg_float_sum_repair_is_bit_exact() {
        // Values chosen so float addition order matters in low-order bits.
        let rows: Vec<(i64, f64)> = (0..50)
            .map(|i| (i % 3, 0.1 * (i as f64) + 1e-9 * ((i * 7 % 11) as f64)))
            .collect();
        let cat = catalog_with(&rows);
        let plan = bound(
            scan("t", &["k", "v"]).aggregate(
                vec![(Expr::name("k"), "k")],
                vec![
                    (AggFunc::Sum(Expr::name("v")), "s"),
                    (AggFunc::CountStar, "n"),
                    (AggFunc::Min(Expr::name("v")), "lo"),
                ],
            ),
            &cat,
        );
        let schema = plan.schema(&cat).unwrap();
        let cached = materialize(&plan, &cat, &schema);
        let new_rows: Vec<Vec<Value>> = (0..17)
            .map(|i| vec![Value::Int(i % 4), Value::Float(0.01 * i as f64 + 1e-10)])
            .collect();
        cat.versioned("t").unwrap().append(&new_rows).unwrap();
        let snap = cat.snapshot();
        let delta = Delta::append("t", snap.get("t").unwrap().schema().clone(), 1, &new_rows);
        let fns = Arc::new(FnRegistry::new());
        let repaired = repair(&plan, &cached, &delta, &snap, &fns).expect("repairable");
        let recomputed = materialize(&plan, &snap.to_catalog(), &schema);
        assert_eq!(
            repaired.batch.to_rows(),
            recomputed.batch.to_rows(),
            "resumed float fold must be bit-exact"
        );
    }

    #[test]
    fn count_delete_retraction_drops_empty_groups() {
        let cat = catalog_with(&[(1, 1.0), (1, 2.0), (2, 3.0)]);
        let plan = bound(
            scan("t", &["k", "v"]).aggregate(
                vec![(Expr::name("k"), "k")],
                vec![
                    (AggFunc::CountStar, "n"),
                    (AggFunc::Count(Expr::name("v")), "nv"),
                ],
            ),
            &cat,
        );
        let schema = plan.schema(&cat).unwrap();
        let cached = materialize(&plan, &cat, &schema);
        // Delete every k == 2 row.
        let vt = cat.versioned("t").unwrap();
        let (deleted, _) = vt
            .delete_where(|t| t.column(0).as_ints().iter().map(|&k| k == 2).collect())
            .unwrap();
        assert_eq!(deleted, 1);
        let snap = cat.snapshot();
        let delta = Delta::delete(
            "t",
            snap.get("t").unwrap().schema().clone(),
            1,
            &[vec![Value::Int(2), Value::Float(3.0)]],
        );
        let fns = Arc::new(FnRegistry::new());
        let repaired = repair(&plan, &cached, &delta, &snap, &fns).expect("count-gated repair");
        let recomputed = materialize(&plan, &snap.to_catalog(), &schema);
        assert_eq!(repaired.batch.to_rows(), recomputed.batch.to_rows());
        assert_eq!(repaired.rows(), 1, "k == 2 group fully retracted");
    }

    #[test]
    fn sum_delete_falls_back() {
        let cat = catalog_with(&[(1, 1.0)]);
        let plan = bound(
            scan("t", &["k", "v"]).aggregate(
                vec![(Expr::name("k"), "k")],
                vec![(AggFunc::Sum(Expr::name("v")), "s")],
            ),
            &cat,
        );
        let schema = plan.schema(&cat).unwrap();
        let cached = materialize(&plan, &cat, &schema);
        let snap = cat.snapshot();
        let delta = Delta::delete(
            "t",
            snap.get("t").unwrap().schema().clone(),
            1,
            &[vec![Value::Int(1), Value::Float(1.0)]],
        );
        let fns = Arc::new(FnRegistry::new());
        assert!(
            repair(&plan, &cached, &delta, &snap, &fns).is_none(),
            "sum cannot retract"
        );
    }

    #[test]
    fn top_n_merge_matches_recompute_with_ties() {
        let rows: Vec<(i64, f64)> = vec![(5, 0.5), (1, 0.1), (5, 0.55), (2, 0.2), (9, 0.9)];
        let cat = catalog_with(&rows);
        let plan = bound(
            scan("t", &["k", "v"]).top_n(vec![SortKeyExpr::asc(Expr::name("k"))], 4),
            &cat,
        );
        let schema = plan.schema(&cat).unwrap();
        let cached = materialize(&plan, &cat, &schema);
        // Delta rows include key ties with existing rows: old must win.
        let new_rows = vec![
            vec![Value::Int(5), Value::Float(0.51)],
            vec![Value::Int(0), Value::Float(0.0)],
            vec![Value::Int(2), Value::Float(0.21)],
        ];
        cat.versioned("t").unwrap().append(&new_rows).unwrap();
        let snap = cat.snapshot();
        let delta = Delta::append("t", snap.get("t").unwrap().schema().clone(), 1, &new_rows);
        let fns = Arc::new(FnRegistry::new());
        let repaired = repair(&plan, &cached, &delta, &snap, &fns).expect("repairable");
        let recomputed = materialize(&plan, &snap.to_catalog(), &schema);
        assert_eq!(repaired.batch.to_rows(), recomputed.batch.to_rows());
    }

    #[test]
    fn empty_delta_output_still_patches() {
        let cat = catalog_with(&[(1, 1.0)]);
        let plan = bound(
            scan("t", &["k", "v"]).select(Expr::name("k").gt(Expr::lit(100))),
            &cat,
        );
        let schema = plan.schema(&cat).unwrap();
        let cached = materialize(&plan, &cat, &schema);
        let new_rows = vec![vec![Value::Int(2), Value::Float(2.0)]];
        cat.versioned("t").unwrap().append(&new_rows).unwrap();
        let snap = cat.snapshot();
        let delta = Delta::append("t", snap.get("t").unwrap().schema().clone(), 1, &new_rows);
        let fns = Arc::new(FnRegistry::new());
        let repaired = repair(&plan, &cached, &delta, &snap, &fns).expect("repairable");
        assert_eq!(repaired.rows(), 0, "no delta row passes the predicate");
    }
}
