//! Sessions, prepared statements, and streaming query handles.
//!
//! The paper's recycler earns its keep on *streams of parameterized query
//! templates* (SkyServer sessions, TPC-H throughput streams); this module
//! is the client surface shaped around that workload:
//!
//! * [`Session`] — the unit of client interaction, opened from an engine;
//!   owns per-session statistics.
//! * [`Prepared`] — a query template, bound against the catalog **once**
//!   with its structural fingerprint computed up front; executed many times
//!   with different [`Params`].
//! * [`QueryHandle`] (alias [`BatchStream`]) — a live query pulled
//!   vector-at-a-time via `Iterator<Item = Batch>`. The handle owns the
//!   engine's admission slot and the recycler bookkeeping: completion fires
//!   when the stream is drained, and a handle dropped half-way abandons its
//!   store targets without poisoning the recycler cache or leaking the
//!   slot. Materialization is explicit via [`QueryHandle::collect_batch`] /
//!   [`QueryHandle::into_outcome`].

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rdb_exec::{build, ExecContext, ExecStream, ResultStore};
use rdb_expr::{Expr, Params};
use rdb_plan::{structural_hash_at, Plan, PlanError};
use rdb_recycler::{PreparedQuery, Recycler, RecyclerEvent};
use rdb_sql::{BoundStatement, CatalogWithFunctions, Span, SqlError};
use rdb_storage::CatalogSnapshot;
use rdb_vector::{Batch, Schema, Value};

use crate::engine::{effective_dop, Engine, GateGuard, QueryOutcome, WriteOutcome};

/// Monotonic counters describing one session's activity.
#[derive(Debug, Default)]
pub struct SessionStats {
    /// Statements prepared.
    pub prepared: AtomicU64,
    /// Executions started.
    pub executed: AtomicU64,
    /// Executions that reused a cached result (exact or subsumption).
    pub reused: AtomicU64,
    /// Executions whose stream was dropped before being drained.
    pub aborted: AtomicU64,
    /// Result rows streamed to the client.
    pub rows: AtomicU64,
    /// DML statements committed (appends + deletes).
    pub writes: AtomicU64,
    /// Rows appended by this session.
    pub rows_appended: AtomicU64,
    /// Rows deleted by this session.
    pub rows_deleted: AtomicU64,
    /// Executions granted a degree of parallelism above 1.
    pub parallel: AtomicU64,
    /// Cache entries this session's writes repaired in place from DML
    /// deltas (instead of evicting).
    pub repaired_hits: AtomicU64,
    /// Repair candidates of this session's writes that fell back to
    /// eviction.
    pub repair_fallbacks: AtomicU64,
    /// This session's writes whose delta was routed through the repair
    /// walk.
    pub deltas_applied: AtomicU64,
    /// Total engine execution time, nanoseconds: preparation plus batch
    /// pulls; queue wait and client think-time between pulls excluded.
    pub wall_ns: AtomicU64,
}

impl SessionStats {
    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> SessionStatsSnapshot {
        SessionStatsSnapshot {
            prepared: self.prepared.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            rows_appended: self.rows_appended.load(Ordering::Relaxed),
            rows_deleted: self.rows_deleted.load(Ordering::Relaxed),
            parallel: self.parallel.load(Ordering::Relaxed),
            repaired_hits: self.repaired_hits.load(Ordering::Relaxed),
            repair_fallbacks: self.repair_fallbacks.load(Ordering::Relaxed),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            // A gauge, not a counter: filled in by [`Session::stats`]
            // from the engine's live registry.
            subscriptions_active: 0,
            wall: Duration::from_nanos(self.wall_ns.load(Ordering::Relaxed)),
        }
    }
}

/// Plain-value snapshot of [`SessionStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStatsSnapshot {
    /// Statements prepared.
    pub prepared: u64,
    /// Executions started.
    pub executed: u64,
    /// Executions that reused a cached result.
    pub reused: u64,
    /// Executions dropped before being drained.
    pub aborted: u64,
    /// Result rows streamed.
    pub rows: u64,
    /// DML statements committed.
    pub writes: u64,
    /// Rows appended.
    pub rows_appended: u64,
    /// Rows deleted.
    pub rows_deleted: u64,
    /// Executions granted DOP > 1.
    pub parallel: u64,
    /// Cache entries repaired in place by this session's writes.
    pub repaired_hits: u64,
    /// Repair candidates that fell back to eviction.
    pub repair_fallbacks: u64,
    /// Writes whose delta was routed through the repair walk.
    pub deltas_applied: u64,
    /// Live subscriptions on the engine right now (a gauge; engine-wide,
    /// not per-session).
    pub subscriptions_active: u64,
    /// Total engine execution time (see [`SessionStats::wall_ns`]).
    pub wall: Duration,
}

/// A client session over an engine.
pub struct Session {
    engine: Arc<Engine>,
    stats: Arc<SessionStats>,
    /// Per-session DOP override; 0 means "inherit the engine default".
    /// Shared with this session's prepared statements, so changing it
    /// affects their subsequent executions too.
    parallelism: Arc<AtomicUsize>,
    /// Cooperative cancellation flag, threaded into every execution's
    /// [`ExecContext`]: operators observe it at batch/morsel boundaries
    /// and end their streams early. Owned by whoever drives the session
    /// (e.g. the server's connection loop, which also clears it); the
    /// engine side only ever *loads* it.
    cancel: Arc<AtomicBool>,
}

impl Session {
    pub(crate) fn new(engine: Arc<Engine>) -> Session {
        Session {
            engine,
            stats: Arc::new(SessionStats::default()),
            parallelism: Arc::new(AtomicUsize::new(0)),
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The session's cancellation flag. Setting it makes in-flight
    /// executions of this session wind down at their next batch/morsel
    /// boundary (truncating their streams) and suppresses any cache
    /// publication from those runs. The caller owns clearing it before
    /// the next statement.
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        self.cancel.clone()
    }

    /// Replace the session's cancellation flag with an externally owned
    /// one, so that e.g. a wire-protocol frontend can register a single
    /// flag in its cancel-request registry and have it observed by the
    /// executor. Must be called before any statement is prepared: prepared
    /// statements capture the flag at prepare time.
    pub fn set_cancel_flag(&mut self, flag: Arc<AtomicBool>) {
        self.cancel = flag;
    }

    /// The engine this session talks to.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Per-session statistics (plus the engine-wide live-subscription
    /// gauge).
    pub fn stats(&self) -> SessionStatsSnapshot {
        let mut snap = self.stats.snapshot();
        snap.subscriptions_active = self.engine.subscriptions_active() as u64;
        snap
    }

    /// Override the degree of intra-query parallelism for this session's
    /// executions (including statements already prepared on it). The
    /// engine's shared worker pool is sized by
    /// [`crate::engine::EngineBuilder::parallelism`]; a larger session DOP
    /// still works, with the excess running on overflow threads. Like the
    /// builder, the override is clamped to the host's available cores at
    /// execution time ([`crate::engine::effective_dop`]) — oversubscribing
    /// a small host only adds scheduling overhead.
    pub fn set_parallelism(&self, dop: usize) {
        self.parallelism.store(dop.max(1), Ordering::Relaxed);
    }

    /// Revert to the engine-default DOP.
    pub fn clear_parallelism(&self) {
        self.parallelism.store(0, Ordering::Relaxed);
    }

    /// The DOP this session's executions currently get.
    pub fn parallelism(&self) -> usize {
        match self.parallelism.load(Ordering::Relaxed) {
            0 => self.engine.parallelism(),
            n => n,
        }
    }

    /// Prepare a query template: resolve every named column against the
    /// catalog, compute the structural fingerprint, and collect the
    /// template's parameter slots — all exactly once, however many times
    /// the statement is executed afterwards.
    pub fn prepare(&self, plan: &Plan) -> Result<Prepared, PlanError> {
        if let Some(name) = plan.param_in_typed_position() {
            // Schema derivation (which binding needs) would have to type
            // the placeholder; reject up front rather than panic inside it.
            return Err(PlanError::msg(format!(
                "parameter '{name}' appears in a projection or aggregate \
                 expression; its type is unknown before binding — move the \
                 parameter into a predicate, or substitute before preparing"
            )));
        }
        let template = if plan.has_named() {
            plan.bind(&self.engine.catalog)?
        } else {
            plan.clone()
        };
        if template.has_named() {
            // bind() resolves every legal named reference; anything left is
            // structurally unresolvable (e.g. a column name in a
            // table-function argument, which has no input schema).
            return Err(PlanError::msg(
                "plan contains unresolvable named column references \
                 (table-function arguments cannot reference columns)",
            ));
        }
        if template.has_params() {
            // A parameterized template cannot derive its full output schema
            // before substitution, but its table references can and must be
            // checked now — "bound against the catalog once at prepare".
            validate_scans(&template, &self.engine.catalog)?;
        } else {
            // Full schema validation (unknown tables or columns fail at
            // prepare time, not execute time).
            template.schema(&self.engine.catalog)?;
        }
        // Canonicalize before fingerprinting: every prepared statement —
        // SQL text or hand-built — passes through the same normalization,
        // so equivalent variants (reordered conjuncts, flipped
        // comparisons, redundant projections) share recycler-graph nodes.
        let template = rdb_plan::normalize(&template, &self.engine.catalog);
        let fingerprint = fingerprint_against(&template, &self.engine.catalog);
        let param_names = template.param_names();
        self.stats.prepared.fetch_add(1, Ordering::Relaxed);
        Ok(Prepared {
            engine: Arc::clone(&self.engine),
            stats: Arc::clone(&self.stats),
            parallelism: Arc::clone(&self.parallelism),
            cancel: Arc::clone(&self.cancel),
            template,
            fingerprint,
            param_names,
        })
    }

    /// Prepare-and-execute convenience for a parameter-free plan.
    pub fn query(&self, plan: &Plan) -> Result<QueryHandle, PlanError> {
        self.prepare(plan)?.execute(&Params::none())
    }

    /// Prepare a query written as SQL text. The statement is parsed,
    /// bound against the catalog (scans pruned to referenced columns),
    /// normalized, and fingerprinted exactly like a builder-built plan —
    /// a SQL template and its hand-assembled equivalent share recycler
    /// cache entries. `$name` placeholders become named parameters; `?`
    /// placeholders are numbered `"1"`, `"2"`, … left to right.
    ///
    /// Only queries can be *prepared*; route `INSERT` / `DELETE` text
    /// through [`Session::sql`].
    pub fn prepare_sql(&self, text: &str) -> Result<Prepared, SqlError> {
        let provider = CatalogWithFunctions {
            catalog: &self.engine.catalog,
            functions: &self.engine.functions,
        };
        match rdb_sql::compile(text, &provider)? {
            BoundStatement::Query(plan) => self
                .prepare(&plan)
                .map_err(|e| SqlError::from_plan(whole_span(text), e)),
            BoundStatement::Insert { .. } | BoundStatement::Delete { .. } => Err(SqlError::bind(
                whole_span(text),
                "prepare_sql prepares queries; execute INSERT/DELETE through Session::sql",
            )),
        }
    }

    /// Parse and execute one SQL statement with the given parameter
    /// bindings. Queries return a streaming [`QueryHandle`] (via
    /// [`SqlOutcome::Rows`]); `INSERT`/`DELETE` commit through the DML
    /// path — epoch bump, precise recycler invalidation — and return the
    /// [`WriteOutcome`].
    pub fn sql(&self, text: &str, params: &Params) -> Result<SqlOutcome, SqlError> {
        let provider = CatalogWithFunctions {
            catalog: &self.engine.catalog,
            functions: &self.engine.functions,
        };
        let wrap = |e: PlanError| SqlError::from_plan(whole_span(text), e);
        match rdb_sql::compile(text, &provider)? {
            BoundStatement::Query(plan) => {
                let handle = self
                    .prepare(&plan)
                    .map_err(wrap)?
                    .execute(params)
                    .map_err(wrap)?;
                Ok(SqlOutcome::Rows(handle))
            }
            BoundStatement::Insert { table, rows } => {
                let mut concrete: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
                for row in &rows {
                    let mut vals = Vec::with_capacity(row.len());
                    for cell in row {
                        vals.push(match cell {
                            Expr::Lit(v) => v.clone(),
                            Expr::Param(n) => params
                                .get(n)
                                .cloned()
                                .ok_or_else(|| wrap(PlanError::unbound_parameter(n)))?,
                            other => {
                                return Err(wrap(PlanError::msg(format!(
                                    "non-constant INSERT cell {other}"
                                ))))
                            }
                        });
                    }
                    concrete.push(vals);
                }
                self.append(&table, &concrete)
                    .map(SqlOutcome::Write)
                    .map_err(wrap)
            }
            BoundStatement::Delete { table, predicate } => {
                let predicate = predicate
                    .substitute_params(params)
                    .map_err(|e| wrap(PlanError::from(e)))?;
                self.delete(&table, &predicate)
                    .map(SqlOutcome::Write)
                    .map_err(wrap)
            }
        }
    }

    /// Append `rows` to a base table, committing a new epoch and
    /// invalidating exactly the dependent recycler cache entries. Queries
    /// already executing keep their pinned snapshots.
    pub fn append(&self, table: &str, rows: &[Vec<Value>]) -> Result<WriteOutcome, PlanError> {
        let out = self.engine.append(table, rows)?;
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .rows_appended
            .fetch_add(out.rows_affected as u64, Ordering::Relaxed);
        self.note_repair(&out);
        Ok(out)
    }

    /// Delete the rows of `table` matching `predicate` (see
    /// [`Engine::delete`]), committing a new epoch with the same
    /// invalidation semantics as [`Session::append`].
    pub fn delete(&self, table: &str, predicate: &Expr) -> Result<WriteOutcome, PlanError> {
        let out = self.engine.delete(table, predicate)?;
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .rows_deleted
            .fetch_add(out.rows_affected as u64, Ordering::Relaxed);
        self.note_repair(&out);
        Ok(out)
    }

    /// Fold one write's repair outcome into the session counters.
    fn note_repair(&self, out: &WriteOutcome) {
        self.stats
            .repaired_hits
            .fetch_add(out.repaired, Ordering::Relaxed);
        self.stats
            .repair_fallbacks
            .fetch_add(out.repair_fallbacks, Ordering::Relaxed);
        self.stats
            .deltas_applied
            .fetch_add(out.deltas_applied, Ordering::Relaxed);
    }

    /// Subscribe to a query written as SQL text: parse, bind, and
    /// substitute `params` exactly like [`Session::prepare_sql`] +
    /// execute, then register the concrete plan as a live query. The
    /// returned [`Subscription`] yields
    /// [`crate::subscribe::DeltaEvent::Initial`] with the full result as
    /// of registration, then one event per committed write touching the
    /// plan's base tables — appended rows where the plan is select-class
    /// over the changed table, a full refresh otherwise (see
    /// [`crate::subscribe`]). The handoff is gapless: registration and
    /// write fan-out serialize on the engine's registry lock.
    pub fn subscribe_sql(
        &self,
        text: &str,
        params: &Params,
    ) -> Result<crate::subscribe::Subscription, SqlError> {
        let wrap = |e: PlanError| SqlError::from_plan(whole_span(text), e);
        let prepared = self.prepare_sql(text)?;
        let concrete = prepared
            .validated_concrete(params)
            .map_err(wrap)?
            .into_owned();
        if contains_volatile_fn(&concrete, &self.engine.functions) {
            return Err(wrap(PlanError::msg(
                "cannot subscribe to a volatile table function",
            )));
        }
        let schema = concrete.schema(&self.engine.catalog).map_err(wrap)?;
        self.engine.subscribe(concrete, schema).map_err(wrap)
    }
}

/// The result of one [`Session::sql`] call: rows for queries, a commit
/// record for DML.
// The handle variant is big, but the value is transient (matched once at
// the call site); boxing it would tax the common query path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum SqlOutcome {
    /// A query's streaming handle.
    Rows(QueryHandle),
    /// A committed write.
    Write(WriteOutcome),
}

impl SqlOutcome {
    /// The query handle, if this was a query.
    pub fn into_rows(self) -> Option<QueryHandle> {
        match self {
            SqlOutcome::Rows(h) => Some(h),
            SqlOutcome::Write(_) => None,
        }
    }

    /// The write record, if this was DML.
    pub fn into_write(self) -> Option<WriteOutcome> {
        match self {
            SqlOutcome::Write(w) => Some(w),
            SqlOutcome::Rows(_) => None,
        }
    }

    /// The query handle; panics on a write (use when the statement is
    /// known to be a query).
    pub fn expect_rows(self) -> QueryHandle {
        self.into_rows()
            .expect("statement was INSERT/DELETE, not a query")
    }
}

/// Span covering a whole statement (engine-level errors have no finer
/// position).
fn whole_span(text: &str) -> Span {
    Span::new(0, text.len())
}

/// The template's version-aware fingerprint against the catalog's current
/// table epochs.
fn fingerprint_against(template: &Plan, catalog: &rdb_storage::Catalog) -> u64 {
    structural_hash_at(template, &|t| catalog.epoch_of(t).unwrap_or(0))
}

/// Whether the plan reads any table function registered as volatile
/// (per-call results; never recycled).
fn contains_volatile_fn(plan: &Plan, functions: &rdb_exec::FnRegistry) -> bool {
    if let Plan::FnScan { name, .. } = plan {
        if functions.is_volatile(name) {
            return true;
        }
    }
    plan.children()
        .iter()
        .any(|c| contains_volatile_fn(c, functions))
}

/// Check every base-table scan in the subtree against the catalog (table
/// exists, projected columns exist).
fn validate_scans(plan: &Plan, catalog: &rdb_storage::Catalog) -> Result<(), PlanError> {
    if matches!(plan, Plan::Scan { .. }) {
        plan.schema(catalog)?;
    }
    plan.children()
        .iter()
        .try_for_each(|c| validate_scans(c, catalog))
}

/// A prepared statement: a bound template plus its fingerprint, executable
/// repeatedly with different parameter sets.
pub struct Prepared {
    engine: Arc<Engine>,
    stats: Arc<SessionStats>,
    /// The owning session's DOP override (0 = engine default), read at
    /// each execute.
    parallelism: Arc<AtomicUsize>,
    /// The owning session's cancellation flag (see
    /// [`Session::cancel_flag`]).
    cancel: Arc<AtomicBool>,
    template: Plan,
    fingerprint: u64,
    param_names: Vec<String>,
}

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("fingerprint", &format_args!("{:016x}", self.fingerprint))
            .field("param_names", &self.param_names)
            .field("template", &self.template)
            .finish_non_exhaustive()
    }
}

impl Prepared {
    /// The bound template (parameter placeholders intact).
    pub fn template(&self) -> &Plan {
        &self.template
    }

    /// Structural fingerprint of the template, incorporating the epoch of
    /// every scanned base table as of prepare time. Parameter slots hash
    /// as placeholders, so two preparations of the same template against
    /// the same table versions share a fingerprint regardless of the
    /// values later bound — while a DML commit in between changes it.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The template's fingerprint against the catalog's *current* table
    /// epochs. Differs from [`Prepared::fingerprint`] iff a scanned table
    /// has been updated since this statement was prepared.
    pub fn fingerprint_now(&self) -> u64 {
        fingerprint_against(&self.template, &self.engine.catalog)
    }

    /// Names of the template's parameter slots, in first-occurrence order.
    pub fn param_names(&self) -> &[String] {
        &self.param_names
    }

    /// A formatted plan tree annotated, per node, with the subtree's
    /// version-aware fingerprint and its recycler state right now:
    /// `cached` (a materialized result would be reused), `in-flight` (a
    /// concurrent query is producing it; an execution would stall on it),
    /// or `cold`. The probe is read-only — rendering a plan perturbs no
    /// recycler statistics.
    ///
    /// A parameterized template probes as `cold` below the parameterized
    /// operators (the recycler caches concrete results); use
    /// [`Prepared::explain_with`] to see the states a specific binding
    /// would hit.
    pub fn explain(&self) -> String {
        self.render_explain(&self.template)
    }

    /// [`Prepared::explain`] for one concrete parameter binding.
    pub fn explain_with(&self, params: &Params) -> Result<String, PlanError> {
        Ok(self.render_explain(&self.template.substitute_params(params)?))
    }

    fn render_explain(&self, plan: &Plan) -> String {
        use std::fmt::Write as _;
        fn go(plan: &Plan, engine: &Engine, depth: usize, in_span: bool, out: &mut String) {
            // Annotate the top of each fusable chain with the number of
            // operators the executor collapses into one push-style loop.
            // Interior chain nodes are part of the same span, so only the
            // outermost node carries the tag.
            let span = if engine.fusion && !in_span {
                rdb_exec::fused_span(plan)
            } else {
                None
            };
            let fused = match span {
                Some(n) => format!(" [fused x{n}]"),
                None => String::new(),
            };
            let fp = fingerprint_against(plan, &engine.catalog);
            let state = match &engine.recycler {
                Some(r) => {
                    let probe = r.probe(plan);
                    // Cached nodes additionally carry their repairability
                    // class: what a DML delta on their base tables would
                    // do to the cached payload (patch in place vs evict).
                    if matches!(
                        probe,
                        rdb_recycler::CacheState::Cached | rdb_recycler::CacheState::CachedState(_)
                    ) {
                        format!(
                            " [{}] [{}]",
                            probe.label(),
                            rdb_delta::classify_node(plan).label()
                        )
                    } else {
                        format!(" [{}]", probe.label())
                    }
                }
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "{:indent$}{}  [fp {fp:016x}]{state}{fused}",
                "",
                plan.label(),
                indent = depth * 2
            );
            // The fused chain runs down the first child (filter/project
            // input, join probe side); a join's build side starts a fresh
            // pipeline and may open its own span.
            for (i, c) in plan.children().into_iter().enumerate() {
                go(
                    c,
                    engine,
                    depth + 1,
                    i == 0 && (span.is_some() || in_span),
                    out,
                );
            }
        }
        let mut out = String::new();
        go(plan, &self.engine, 0, false, &mut out);
        out
    }

    /// Execute with the given parameter bindings, returning a live,
    /// pull-based [`QueryHandle`]. Every slot must be bound and every
    /// binding must match a slot.
    ///
    /// Blocks while the engine is at its admission limit. Each live
    /// [`QueryHandle`] *holds* an admission slot until drained or dropped,
    /// so a single thread keeping `max_concurrent_queries` handles alive
    /// and then calling `execute` again deadlocks against itself — drain or
    /// drop handles before starting more queries than the limit, or use
    /// [`Prepared::try_execute`].
    ///
    /// Relatedly, with recycling enabled an execution may inject a
    /// materialization that only makes progress as its handle is pulled;
    /// starting a second identical execution while the first handle sits
    /// undrained makes the second stall for the recycler's `stall_timeout`
    /// before recomputing independently. Interleave pulls or drain handles
    /// promptly.
    pub fn execute(&self, params: &Params) -> Result<QueryHandle, PlanError> {
        let concrete = self.validated_concrete(params)?;
        let guard = self.engine.admit()?;
        self.start(&concrete, guard)
    }

    /// Non-blocking variant of [`Prepared::execute`]: returns `Ok(None)`
    /// when the engine is at its admission limit instead of waiting for a
    /// slot.
    pub fn try_execute(&self, params: &Params) -> Result<Option<QueryHandle>, PlanError> {
        let concrete = self.validated_concrete(params)?;
        match self.engine.try_admit() {
            Some(guard) => self.start(&concrete, guard).map(Some),
            None => Ok(None),
        }
    }

    /// Validate the bindings and substitute them into the template. A
    /// parameter-free statement borrows the template directly — the common
    /// stream-runner path pays no per-execution plan clone.
    fn validated_concrete<'a>(
        &'a self,
        params: &Params,
    ) -> Result<std::borrow::Cow<'a, Plan>, PlanError> {
        for name in &self.param_names {
            if params.get(name).is_none() {
                return Err(PlanError::unbound_parameter(name.clone()));
            }
        }
        for name in params.names() {
            if !self.param_names.iter().any(|n| n == name) {
                return Err(PlanError::msg(format!(
                    "unknown parameter '{name}' (template parameters: {:?})",
                    self.param_names
                )));
            }
        }
        if self.param_names.is_empty() {
            return Ok(std::borrow::Cow::Borrowed(&self.template));
        }
        let concrete = self.template.substitute_params(params)?;
        debug_assert!(!concrete.has_params());
        Ok(std::borrow::Cow::Owned(concrete))
    }

    /// Build the executor for a concrete plan under an already-held
    /// admission slot and wrap it in a handle.
    fn start(&self, concrete: &Plan, guard: GateGuard) -> Result<QueryHandle, PlanError> {
        self.stats.executed.fetch_add(1, Ordering::Relaxed);
        let engine = &self.engine;
        let started_at = engine.epoch.elapsed();
        let start = Instant::now();
        // DOP: the session override if set, else the engine default, both
        // clamped to the host's cores (the engine default already is; the
        // session override is clamped here, at the point of use). The
        // builder splits eligible pipelines across the engine's worker
        // pool; every scan still reads the one snapshot pinned below, so
        // all workers of this query see the same epoch vector.
        let dop = effective_dop(match self.parallelism.load(Ordering::Relaxed) {
            0 => engine.parallelism,
            n => n,
        });
        if dop > 1 {
            self.stats.parallel.fetch_add(1, Ordering::Relaxed);
        }
        let with_parallelism = |mut ctx: ExecContext| {
            ctx = ctx
                .with_parallelism(dop)
                .with_fusion(engine.fusion)
                .with_cancel(Some(self.cancel.clone()));
            match &engine.pool {
                Some(pool) => ctx.with_pool(pool.clone()),
                None => ctx,
            }
        };
        // Pin the snapshot *before* the recycler rewrite: the rewrite's
        // freshness checks, the store targets' epoch records, and every
        // scan must all agree on one epoch vector, or a write landing
        // mid-preparation could mix versions within a single query.
        let snapshot = Arc::new(engine.catalog.snapshot());
        // A plan touching a volatile table function (e.g. the server's
        // `rdb_stats()`) must bypass the recycler entirely: caching its
        // result would both serve stale values and evict useful entries.
        let recycling = engine
            .recycler
            .as_ref()
            .filter(|_| !contains_volatile_fn(concrete, &engine.functions));
        let (stream, recycler) = match recycling {
            None => {
                let ctx = with_parallelism(
                    ExecContext::new(engine.catalog.clone())
                        .with_snapshot(snapshot.clone())
                        .with_functions(engine.functions.clone()),
                );
                (build(concrete, &ctx)?.into_stream(), None)
            }
            Some(recycler) => {
                let prepared = recycler.prepare_at(concrete, &engine.catalog, &|t| {
                    snapshot.epoch_of(t).unwrap_or(0)
                });
                let ctx = with_parallelism(
                    ExecContext::new(engine.catalog.clone())
                        .with_snapshot(snapshot.clone())
                        .with_functions(engine.functions.clone())
                        .with_store(recycler.clone() as Arc<dyn ResultStore>),
                );
                // A build failure after recycler.prepare must release the
                // rewrite's bookkeeping (in-flight store targets, tags,
                // leases) or every later structurally-equal query stalls on
                // a materialization that will never arrive.
                let stream = match build(&prepared.plan, &ctx) {
                    Ok(tree) => tree.into_stream(),
                    Err(e) => {
                        recycler.abort(&prepared);
                        return Err(e);
                    }
                };
                (stream, Some((recycler.clone(), prepared)))
            }
        };
        let (events, match_ns) = match &recycler {
            Some((_, prepared)) => (prepared.events.clone(), prepared.match_ns),
            None => (Vec::new(), 0),
        };
        Ok(QueryHandle {
            stream,
            snapshot,
            recycler,
            events,
            match_ns,
            dop,
            guard: Some(guard),
            epoch: engine.epoch,
            started_at,
            // Rewrite + executor construction count as engine time.
            exec: start.elapsed(),
            finished_at: started_at,
            rows: 0,
            stats: Arc::clone(&self.stats),
            cancel: Arc::clone(&self.cancel),
            completed: false,
        })
    }
}

/// A live query: pull result batches with `Iterator::next`. See the module
/// docs for the lifecycle.
pub struct QueryHandle {
    stream: ExecStream,
    snapshot: Arc<CatalogSnapshot>,
    recycler: Option<(Arc<Recycler>, PreparedQuery)>,
    events: Vec<RecyclerEvent>,
    match_ns: u64,
    dop: usize,
    guard: Option<GateGuard>,
    epoch: Instant,
    started_at: Duration,
    /// Time spent *inside the engine* — preparation plus batch pulls;
    /// client think-time between pulls is excluded.
    exec: Duration,
    finished_at: Duration,
    rows: u64,
    stats: Arc<SessionStats>,
    /// The session's cancel flag: a stream that ends while it is set was
    /// truncated, not drained, and must finalize as an abort.
    cancel: Arc<AtomicBool>,
    completed: bool,
}

/// The streaming face of a [`QueryHandle`].
pub type BatchStream = QueryHandle;

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("schema", &format_args!("{}", self.stream.schema()))
            .field("rows_streamed", &self.rows)
            .field("reused", &self.reused())
            .field("completed", &self.completed)
            .finish_non_exhaustive()
    }
}

impl QueryHandle {
    /// Result schema.
    pub fn schema(&self) -> &Schema {
        self.stream.schema()
    }

    /// The catalog snapshot this query reads: every scan (and every cached
    /// result substituted by the recycler) reflects exactly these table
    /// versions, whatever DML commits while the stream is live. Re-running
    /// the plan against [`CatalogSnapshot::to_catalog`] of this value
    /// reproduces the result.
    pub fn snapshot(&self) -> &Arc<CatalogSnapshot> {
        &self.snapshot
    }

    /// Recycler events so far (rewrite-time immediately; completion events
    /// appear once the stream finishes).
    pub fn events(&self) -> &[RecyclerEvent] {
        &self.events
    }

    /// Whether a cached result (exact or subsumption) was substituted into
    /// this execution — known as soon as the handle exists.
    pub fn reused(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e,
                RecyclerEvent::Reused { .. } | RecyclerEvent::SubsumptionReused { .. }
            )
        })
    }

    /// Matching/insertion time spent in the recycler's rewrite phase.
    pub fn match_ns(&self) -> u64 {
        self.match_ns
    }

    /// Degree of parallelism this execution was granted.
    pub fn dop(&self) -> usize {
        self.dop
    }

    /// Start offset relative to the engine's epoch.
    pub fn started_at(&self) -> Duration {
        self.started_at
    }

    /// Rows streamed out so far.
    pub fn rows_streamed(&self) -> u64 {
        self.rows
    }

    /// Root progress meter in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        self.stream.progress()
    }

    /// The execution failure recorded by a parallel pipeline worker, if
    /// any. A stream that ended with an error here ended *short*: the rows
    /// already pulled are valid but the result is truncated, the recycler
    /// saw an abort (nothing partial was cached), and the handle counts as
    /// aborted in session stats. `None` after a full drain means the
    /// result is complete.
    pub fn error(&self) -> Option<rdb_exec::ExecError> {
        self.stream.error()
    }

    /// Drain the remaining batches into one concatenated batch (the
    /// explicit materialization point).
    pub fn collect_batch(mut self) -> Batch {
        self.drain_remaining()
    }

    /// Drain the remaining batches and return the full outcome record
    /// (batch, schema, timings, recycler events).
    pub fn into_outcome(mut self) -> QueryOutcome {
        let batch = self.drain_remaining();
        QueryOutcome {
            batch,
            schema: self.stream.schema().clone(),
            wall: self.exec,
            match_ns: self.match_ns,
            events: std::mem::take(&mut self.events),
            dop: self.dop,
            started_at: self.started_at,
            finished_at: self.finished_at,
        }
    }

    fn drain_remaining(&mut self) -> Batch {
        let mut batches = Vec::new();
        for b in self.by_ref() {
            batches.push(b);
        }
        Batch::concat_or_empty(self.stream.schema(), &batches)
    }

    /// Close out the query exactly once: feed the recycler (annotation on a
    /// full drain, abandonment on an early drop), stamp timings, release
    /// the admission slot, and fold into session stats.
    fn finalize(&mut self, drained: bool) {
        if self.completed {
            return;
        }
        self.completed = true;
        if let Some((recycler, prepared)) = self.recycler.take() {
            let completion = if drained {
                recycler.complete(&prepared, self.stream.metrics())
            } else {
                recycler.abort(&prepared)
            };
            self.events.extend(completion);
        }
        self.finished_at = self.epoch.elapsed();
        self.guard = None;
        self.stats.rows.fetch_add(self.rows, Ordering::Relaxed);
        self.stats
            .wall_ns
            .fetch_add(self.exec.as_nanos() as u64, Ordering::Relaxed);
        if self.reused() {
            self.stats.reused.fetch_add(1, Ordering::Relaxed);
        }
        if !drained {
            self.stats.aborted.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Iterator for QueryHandle {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.completed {
            return None;
        }
        let pull_start = Instant::now();
        let out = self.stream.next();
        self.exec += pull_start.elapsed();
        match out {
            Some(b) => {
                self.rows += b.rows() as u64;
                Some(b)
            }
            None => {
                // A cancelled or failed stream ended early: its metrics
                // describe a truncated run, so finalize as an abort (no
                // graph annotation, store targets abandoned) rather than a
                // completion. Worker failures surface through
                // [`QueryHandle::error`].
                let drained = !self.cancel.load(Ordering::Acquire) && self.stream.error().is_none();
                self.finalize(drained);
                None
            }
        }
    }
}

impl Drop for QueryHandle {
    fn drop(&mut self) {
        self.finalize(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use rdb_expr::{AggFunc, Expr};
    use rdb_plan::scan;
    use rdb_recycler::RecyclerConfig;
    use rdb_storage::{Catalog, TableBuilder};
    use rdb_vector::{DataType, Value};

    fn catalog(rows: i64) -> Arc<Catalog> {
        let mut cat = Catalog::new();
        let schema = Schema::from_pairs([("k", DataType::Int), ("v", DataType::Float)]);
        let mut b = TableBuilder::new("t", schema, rows as usize);
        for i in 0..rows {
            b.push_row(vec![Value::Int(i % 50), Value::Float(i as f64)]);
        }
        cat.register(b.finish()).expect("register table");
        Arc::new(cat)
    }

    fn det_engine(rows: i64) -> Arc<Engine> {
        let mut c = RecyclerConfig::deterministic(1 << 22);
        c.spec_min_progress = 0.0;
        EngineBuilder::new(catalog(rows)).recycler(c).build()
    }

    fn template() -> Plan {
        scan("t", &["k", "v"])
            .select(Expr::name("k").lt(Expr::param("limit")))
            .aggregate(
                vec![(Expr::name("k"), "k")],
                vec![(AggFunc::Sum(Expr::name("v")), "sv")],
            )
    }

    #[test]
    fn prepare_binds_once_and_collects_params() {
        let engine = det_engine(10_000);
        let session = engine.session();
        let prepared = session.prepare(&template()).unwrap();
        assert!(
            !prepared.template().has_named(),
            "names resolved at prepare"
        );
        assert!(prepared.template().has_params(), "params survive binding");
        assert_eq!(prepared.param_names(), &["limit".to_string()]);
        let again = session.prepare(&template()).unwrap();
        assert_eq!(prepared.fingerprint(), again.fingerprint());
        assert_eq!(session.stats().prepared, 2);
    }

    #[test]
    fn execute_validates_params() {
        let engine = det_engine(1_000);
        let session = engine.session();
        let prepared = session.prepare(&template()).unwrap();
        let missing = prepared.execute(&Params::none());
        assert!(missing.as_ref().is_err());
        assert!(missing.err().unwrap().to_string().contains("limit"));
        let unknown = prepared.execute(&Params::new().set("limit", 5i64).set("oops", 1i64));
        assert!(unknown.err().unwrap().to_string().contains("oops"));
    }

    #[test]
    fn same_params_hit_cache_different_params_do_not_share() {
        let engine = det_engine(20_000);
        let session = engine.session();
        let prepared = session.prepare(&template()).unwrap();
        let p10 = Params::new().set("limit", 10i64);
        let first = prepared.execute(&p10).unwrap().into_outcome();
        assert!(!first.reused());
        assert_eq!(first.batch.rows(), 10);
        let second = prepared.execute(&p10).unwrap().into_outcome();
        assert!(second.reused(), "identical params must hit the recycler");
        assert_eq!(first.batch.to_rows(), second.batch.to_rows());
        let other = prepared
            .execute(&Params::new().set("limit", 20i64))
            .unwrap()
            .into_outcome();
        assert_eq!(other.batch.rows(), 20, "different params compute fresh");
        assert_eq!(session.stats().executed, 3);
        assert_eq!(session.stats().reused, 1);
    }

    #[test]
    fn handle_streams_batch_at_a_time() {
        let engine = EngineBuilder::new(catalog(5_000)).no_recycler().build();
        let session = engine.session();
        let plan = scan("t", &["k", "v"]).bind(engine.catalog()).unwrap();
        let mut handle = session.query(&plan).unwrap();
        let first = handle.next().expect("at least one batch");
        assert!(first.rows() <= rdb_vector::BATCH_CAPACITY);
        let mut total = first.rows();
        for b in handle {
            total += b.rows();
        }
        assert_eq!(total, 5_000);
        assert_eq!(session.stats().rows, 5_000);
    }

    #[test]
    fn dropped_stream_releases_slot_and_keeps_cache_clean() {
        let engine = det_engine(50_000);
        let session = engine.session();
        let prepared = session.prepare(&template()).unwrap();
        let p = Params::new().set("limit", 30i64);
        {
            let mut handle = prepared.execute(&p).unwrap();
            let _ = handle.next(); // partially consume, then drop
        }
        assert_eq!(session.stats().aborted, 1);
        // The dropped execution must not have published a partial result:
        // the next run computes fresh, completely, and correctly.
        let out = prepared.execute(&p).unwrap().into_outcome();
        assert!(!out.reused(), "no partial result may satisfy this query");
        assert_eq!(out.batch.rows(), 30);
        // And the recycler is healthy: one more run reuses the full result.
        let again = prepared.execute(&p).unwrap().into_outcome();
        assert!(again.reused());
        assert_eq!(again.batch.to_rows(), out.batch.to_rows());
    }

    #[test]
    fn try_execute_reports_saturation_instead_of_blocking() {
        let engine = EngineBuilder::new(catalog(5_000))
            .no_recycler()
            .max_concurrent_queries(1)
            .build();
        let session = engine.session();
        let prepared = session.prepare(&template()).unwrap();
        let p = Params::new().set("limit", 10i64);
        let held = prepared.execute(&p).unwrap();
        // The only slot is held by `held`; a blocking execute here would
        // deadlock this thread, try_execute reports it instead.
        assert!(prepared.try_execute(&p).unwrap().is_none());
        drop(held);
        let handle = prepared.try_execute(&p).unwrap().expect("slot free again");
        assert_eq!(handle.collect_batch().rows(), 10);
    }

    #[test]
    fn parameterized_templates_still_validate_scans_at_prepare() {
        let engine = det_engine(100);
        let session = engine.session();
        // Positional refs + params: no bind pass runs, but the unknown
        // table must still fail at prepare, not at first execute.
        let plan = scan("no_such_table", &["x"]).select(Expr::col(0).lt(Expr::param("p")));
        let err = session.prepare(&plan).expect_err("must be rejected");
        assert!(err.to_string().contains("no_such_table"), "{err}");
    }

    #[test]
    fn params_in_typed_positions_are_rejected_at_prepare() {
        let engine = det_engine(100);
        let session = engine.session();
        let plan = scan("t", &["k"]).project(vec![(Expr::param("x"), "x")]);
        let err = session.prepare(&plan).expect_err("must be rejected");
        assert!(err.to_string().contains('x'), "{err}");
        // Even nested under further operators that previously panicked
        // during schema derivation.
        let nested = scan("t", &["k"])
            .project(vec![(Expr::param("x"), "x")])
            .select(Expr::name("x").gt(Expr::lit(0)));
        assert!(session.prepare(&nested).is_err());
    }

    #[test]
    fn empty_results_keep_schema_width() {
        let engine = EngineBuilder::new(catalog(1_000)).no_recycler().build();
        let session = engine.session();
        let none = scan("t", &["k", "v"]).select(Expr::name("k").lt(Expr::lit(-1)));
        let batch = session.query(&none).unwrap().collect_batch();
        assert_eq!(batch.rows(), 0);
        assert_eq!(batch.width(), 2, "zero-row result preserves the schema");
        let out = session.query(&none).unwrap().into_outcome();
        assert_eq!(out.batch.width(), 2);
        assert_eq!(out.schema.len(), 2);
    }

    #[test]
    fn build_failure_after_rewrite_does_not_wedge_the_recycler() {
        // A plan that passes prepare-time validation but fails at build
        // time (unknown table function; the registry is only consulted by
        // the executor builder). The recycler rewrite has already injected
        // store targets by then — a leaked in-flight entry would make every
        // later structurally-equal query stall for the full stall timeout.
        let mut c = RecyclerConfig::deterministic(1 << 22);
        c.spec_min_progress = 0.0;
        c.stall_timeout = Duration::from_secs(5);
        let engine = EngineBuilder::new(catalog(1_000)).recycler(c).build();
        let session = engine.session();
        let plan = rdb_plan::fn_scan_exprs(
            "no_such_function",
            vec![Expr::param("n")],
            Schema::from_pairs([("x", DataType::Int)]),
        );
        let prepared = session.prepare(&plan).unwrap();
        let p = Params::new().set("n", 3i64);
        assert!(prepared.execute(&p).is_err());
        // The second identical attempt must fail fast, not stall on the
        // first attempt's abandoned materialization.
        let start = Instant::now();
        assert!(prepared.execute(&p).is_err());
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "stalled on a leaked in-flight entry: {:?}",
            start.elapsed()
        );
        // And the engine still executes healthy queries.
        let out = session.query(
            &template()
                .substitute_params(&Params::new().set("limit", 5i64))
                .unwrap(),
        );
        assert_eq!(out.unwrap().collect_batch().rows(), 5);
    }

    #[test]
    fn prepare_rejects_named_columns_in_fn_scan_args() {
        let engine = det_engine(100);
        let session = engine.session();
        let plan = rdb_plan::fn_scan_exprs(
            "series",
            vec![Expr::name("k")],
            Schema::from_pairs([("x", DataType::Int)]),
        );
        let err = session.prepare(&plan).expect_err("must be rejected");
        assert!(err.to_string().contains("table-function"), "{err}");
    }

    #[test]
    fn fn_scan_templates_substitute_args() {
        use rdb_exec::{FnRegistry, TableFunction};
        use rdb_vector::{Batch, Column};

        struct Series;
        impl TableFunction for Series {
            fn schema(&self, _args: &[Value]) -> Schema {
                Schema::from_pairs([("x", DataType::Int)])
            }
            fn execute(&self, args: &[Value], work: &mut u64) -> Vec<Batch> {
                let n = args[0].as_int().expect("n") as usize;
                *work += n as u64;
                vec![Batch::new(vec![Column::from_ints((0..n as i64).collect())])]
            }
        }
        let mut reg = FnRegistry::new();
        reg.register("series", Arc::new(Series));
        let engine = EngineBuilder::new(catalog(10))
            .functions(Arc::new(reg))
            .no_recycler()
            .build();
        let session = engine.session();
        let plan = rdb_plan::fn_scan_exprs(
            "series",
            vec![Expr::param("n")],
            Schema::from_pairs([("x", DataType::Int)]),
        );
        let prepared = session.prepare(&plan).unwrap();
        let out = prepared
            .execute(&Params::new().set("n", 7i64))
            .unwrap()
            .collect_batch();
        assert_eq!(out.rows(), 7);
        // Unsubstituted execution is rejected, not silently wrong.
        assert!(prepared.execute(&Params::none()).is_err());
    }
}
