//! Operator-at-a-time baseline engine ("MonetDB-style").
//!
//! The paper contrasts its pipelined recycler with the MonetDB recycler of
//! Ivanova et al. [10], whose execution paradigm materializes *every*
//! intermediate result as a by-product. This module reproduces that
//! behaviour for the Fig. 6 comparison:
//!
//! * every operator runs to completion and its full result is materialized;
//! * with recycling enabled, every intermediate is admitted to the cache
//!   (materialization is free), and incoming subtrees are matched directly
//!   against cached results;
//! * with a bounded cache, the lowest-benefit entries are evicted
//!   (`benefit = cost · refs / size`, as in [10]).
//!
//! Consequently the cache must hold *all* intermediates of a result's
//! subtree for the final result to be cheap, which is exactly the
//! "MonetDB needs 1.5 GB where the recycler graph needs a few hundred KB"
//! effect the paper reports.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rdb_exec::{
    build, run_to_batch, ExecContext, FnRegistry, MaterializedResult, ResultStore,
    SpeculationEstimate, StoreVerdict,
};
use rdb_plan::{structural_eq, structural_hash, Plan, PlanError};
use rdb_storage::Catalog;
use rdb_vector::Batch;

/// One cached intermediate.
struct MatEntry {
    plan: Plan,
    result: Arc<MaterializedResult>,
    cost_ns: f64,
    refs: u64,
    size: u64,
}

impl MatEntry {
    fn benefit(&self) -> f64 {
        self.cost_ns * self.refs as f64 / self.size.max(1) as f64
    }
}

#[derive(Default)]
struct MatCache {
    entries: HashMap<u64, MatEntry>,
    used: u64,
    capacity: Option<u64>,
    hits: u64,
    evictions: u64,
}

impl MatCache {
    fn lookup(&mut self, plan: &Plan) -> Option<Arc<MaterializedResult>> {
        let h = structural_hash(plan);
        let e = self.entries.get_mut(&h)?;
        if structural_eq(&e.plan, plan) {
            e.refs += 1;
            self.hits += 1;
            Some(e.result.clone())
        } else {
            None
        }
    }

    fn admit(&mut self, plan: &Plan, result: Arc<MaterializedResult>, cost_ns: f64) {
        let h = structural_hash(plan);
        if self.entries.contains_key(&h) {
            return;
        }
        let size = (result.size_bytes as u64).max(1);
        if let Some(cap) = self.capacity {
            if size > cap {
                return;
            }
        }
        self.used += size;
        self.entries.insert(
            h,
            MatEntry {
                plan: plan.clone(),
                result,
                cost_ns,
                refs: 1,
                size,
            },
        );
        // Evict lowest-benefit entries while over capacity ([10]'s policy).
        if let Some(cap) = self.capacity {
            while self.used > cap {
                let victim = self
                    .entries
                    .iter()
                    .min_by(|a, b| {
                        a.1.benefit()
                            .partial_cmp(&b.1.benefit())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(k, _)| *k);
                match victim {
                    Some(k) => {
                        let e = self.entries.remove(&k).expect("victim exists");
                        self.used -= e.size;
                        self.evictions += 1;
                    }
                    None => break,
                }
            }
        }
    }

    fn flush(&mut self) {
        self.entries.clear();
        self.used = 0;
    }
}

/// Trivial result store backing single-operator execution: the child
/// results of the operator being evaluated are exposed as cached reads.
#[derive(Default)]
struct ChildStore {
    children: Mutex<HashMap<u64, Arc<MaterializedResult>>>,
}

impl ResultStore for ChildStore {
    fn fetch(&self, tag: u64) -> Option<Arc<MaterializedResult>> {
        self.children.lock().get(&tag).cloned()
    }
    fn publish(&self, _tag: u64, _result: MaterializedResult) {}
    fn abandon(&self, _tag: u64) {}
    fn speculate(&self, _tag: u64, _est: &SpeculationEstimate) -> StoreVerdict {
        StoreVerdict::Cancel
    }
}

/// Outcome of one operator-at-a-time query execution.
#[derive(Debug)]
pub struct MatOutcome {
    /// Final result rows.
    pub batch: Batch,
    /// Wall-clock time.
    pub wall: Duration,
    /// Number of subtrees answered from the cache.
    pub cache_hits: u64,
    /// Number of intermediates materialized by this query.
    pub materialized: u64,
}

/// The operator-at-a-time engine.
pub struct MaterializingEngine {
    catalog: Arc<Catalog>,
    functions: Arc<FnRegistry>,
    cache: Option<Mutex<MatCache>>,
}

impl MaterializingEngine {
    /// Engine without recycling (the Fig. 6 "naive" baseline).
    pub fn naive(catalog: Arc<Catalog>) -> Self {
        MaterializingEngine {
            catalog,
            functions: Arc::new(FnRegistry::new()),
            cache: None,
        }
    }

    /// Engine with [10]-style recycling. `capacity` of `None` means an
    /// unlimited cache (the paper's "Unlimited" configuration).
    pub fn recycling(catalog: Arc<Catalog>, capacity: Option<u64>) -> Self {
        MaterializingEngine {
            catalog,
            functions: Arc::new(FnRegistry::new()),
            cache: Some(Mutex::new(MatCache {
                capacity,
                ..Default::default()
            })),
        }
    }

    /// Attach table functions.
    pub fn with_functions(mut self, functions: Arc<FnRegistry>) -> Self {
        self.functions = functions;
        self
    }

    /// Bytes currently cached (0 when recycling is off).
    pub fn cache_used(&self) -> u64 {
        self.cache.as_ref().map_or(0, |c| c.lock().used)
    }

    /// Cached entry count.
    pub fn cache_len(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.lock().entries.len())
    }

    /// Flush the cache (between Fig. 6 batches).
    pub fn flush_cache(&self) {
        if let Some(c) = &self.cache {
            c.lock().flush();
        }
    }

    /// Execute a query operator-at-a-time.
    pub fn run(&self, plan: &Plan) -> Result<MatOutcome, PlanError> {
        let bound = if plan.has_named() {
            plan.bind(&self.catalog)?
        } else {
            plan.clone()
        };
        let start = Instant::now();
        let mut hits = 0;
        let mut mats = 0;
        let (result, _cost) = self.eval(&bound, &mut hits, &mut mats)?;
        Ok(MatOutcome {
            batch: result.batch.clone(),
            wall: start.elapsed(),
            cache_hits: hits,
            materialized: mats,
        })
    }

    /// Recursively evaluate `plan`, materializing every operator result.
    /// Returns the result and the inclusive cost in nanoseconds.
    fn eval(
        &self,
        plan: &Plan,
        hits: &mut u64,
        mats: &mut u64,
    ) -> Result<(Arc<MaterializedResult>, f64), PlanError> {
        // Recycler lookup first: matching happens directly on cached
        // results (no recycler graph in [10]).
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.lock().lookup(plan) {
                *hits += 1;
                return Ok((hit, 0.0));
            }
        }
        let t0 = Instant::now();
        // Evaluate children fully first (operator-at-a-time).
        let mut child_results = Vec::new();
        let mut child_cost = 0.0;
        for c in plan.children() {
            let (r, cost) = self.eval(c, hits, mats)?;
            child_results.push(r);
            child_cost += cost;
        }
        // Evaluate this single operator over the materialized children.
        let store = Arc::new(ChildStore::default());
        let mut cached_children = Vec::with_capacity(child_results.len());
        for (i, r) in child_results.iter().enumerate() {
            store.children.lock().insert(i as u64, r.clone());
            cached_children.push(Plan::Cached {
                tag: i as u64,
                schema: r.schema.clone(),
            });
        }
        let single = plan.with_children(cached_children);
        let ctx = ExecContext::new(self.catalog.clone())
            .with_functions(self.functions.clone())
            .with_store(store as Arc<dyn ResultStore>);
        let mut tree = build(&single, &ctx)?;
        let batch = run_to_batch(tree.root.as_mut());
        let schema = plan.schema(&self.catalog)?;
        let result = Arc::new(MaterializedResult::from_batches(schema, &[batch]));
        let cost = t0.elapsed().as_nanos() as f64 + child_cost;
        if let Some(cache) = &self.cache {
            cache.lock().admit(plan, result.clone(), cost);
            *mats += 1;
        }
        Ok((result, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_expr::{AggFunc, Expr};
    use rdb_plan::scan;
    use rdb_storage::TableBuilder;
    use rdb_vector::{DataType, Schema, Value};

    fn catalog() -> Arc<Catalog> {
        let mut cat = Catalog::new();
        let schema = Schema::from_pairs([("k", DataType::Int), ("v", DataType::Float)]);
        let mut b = TableBuilder::new("t", schema, 5000);
        for i in 0..5000i64 {
            b.push_row(vec![Value::Int(i % 20), Value::Float(i as f64)]);
        }
        cat.register(b.finish()).expect("register table");
        Arc::new(cat)
    }

    fn q() -> Plan {
        scan("t", &["k", "v"])
            .select(Expr::name("k").lt(Expr::lit(5)))
            .aggregate(
                vec![(Expr::name("k"), "k")],
                vec![(AggFunc::Sum(Expr::name("v")), "s")],
            )
    }

    #[test]
    fn naive_execution_matches_pipelined_semantics() {
        let cat = catalog();
        let eng = MaterializingEngine::naive(cat.clone());
        let out = eng.run(&q()).unwrap();
        assert_eq!(out.batch.rows(), 5);
        assert_eq!(out.cache_hits, 0);
        assert_eq!(out.materialized, 0);
        assert_eq!(eng.cache_len(), 0);
    }

    #[test]
    fn recycling_caches_every_intermediate() {
        let eng = MaterializingEngine::recycling(catalog(), None);
        let out1 = eng.run(&q()).unwrap();
        // scan, select, aggregate = 3 intermediates.
        assert_eq!(out1.materialized, 3);
        assert_eq!(eng.cache_len(), 3);
        let out2 = eng.run(&q()).unwrap();
        assert_eq!(out2.cache_hits, 1, "root answered straight from cache");
        assert_eq!(out2.materialized, 0);
        assert_eq!(out1.batch.to_rows(), out2.batch.to_rows());
    }

    #[test]
    fn shared_prefix_hits_partial_results() {
        let eng = MaterializingEngine::recycling(catalog(), None);
        eng.run(&q()).unwrap();
        // Same scan+select, different aggregate: hits the select result.
        let q2 = scan("t", &["k", "v"])
            .select(Expr::name("k").lt(Expr::lit(5)))
            .aggregate(
                vec![(Expr::name("k"), "k")],
                vec![(AggFunc::CountStar, "n")],
            );
        let out = eng.run(&q2).unwrap();
        assert_eq!(out.cache_hits, 1);
        assert_eq!(out.materialized, 1); // only the new aggregate
    }

    #[test]
    fn bounded_cache_evicts_lowest_benefit() {
        // Cache big enough for small results but not the scan copy.
        let eng = MaterializingEngine::recycling(catalog(), Some(16 * 1024));
        let out = eng.run(&q()).unwrap();
        assert!(out.materialized >= 1);
        assert!(eng.cache_used() <= 16 * 1024);
    }

    #[test]
    fn flush_clears() {
        let eng = MaterializingEngine::recycling(catalog(), None);
        eng.run(&q()).unwrap();
        assert!(eng.cache_len() > 0);
        eng.flush_cache();
        assert_eq!(eng.cache_len(), 0);
        let again = eng.run(&q()).unwrap();
        assert_eq!(again.cache_hits, 0);
    }
}
