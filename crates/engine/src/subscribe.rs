//! Live query subscriptions: an initial result plus per-epoch change
//! events, pushed as DML commits.
//!
//! A [`Subscription`] is registered by
//! [`crate::session::Session::subscribe_sql`] for one concrete (fully
//! bound, parameter-substituted) query plan. The engine evaluates the
//! plan once at registration and pushes [`DeltaEvent::Initial`]; after
//! every committed write touching one of the plan's base tables it pushes
//! either
//!
//! * [`DeltaEvent::Delta`] — the rows the write *added* to the result,
//!   computed by running the plan over the delta rows alone
//!   ([`rdb_delta::eval_append`]). Only select-class plans w.r.t. the
//!   changed table (see [`rdb_delta::Repairability`]) and pure appends
//!   qualify; the cached result concatenated with these rows is
//!   byte-identical to a recompute.
//! * [`DeltaEvent::Refresh`] — the full re-evaluated result, for deletes,
//!   non-select plans, or when the engine detects it skipped an epoch.
//!
//! Registration and fan-out serialize on one registry lock, and each
//! entry tracks the epoch vector its client has seen, so the initial
//! result and the event stream compose without gaps or duplicates: a
//! commit is either already inside the initial result (then its delta is
//! suppressed by the epoch check) or delivered as exactly one event.
//! Events are consumed with the blocking `Iterator` impl or the
//! non-blocking [`Subscription::try_next`]; dropping the handle
//! unregisters it, and [`crate::engine::Engine::shutdown`] closes every
//! queue (iteration then ends once drained).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use rdb_plan::Plan;
use rdb_vector::{Batch, Schema};

use crate::engine::Engine;

/// One change notification pushed to a [`Subscription`].
#[derive(Debug, Clone)]
pub enum DeltaEvent {
    /// The subscription's full result as of registration.
    Initial(Batch),
    /// Rows a committed append added to the result. Appending these rows
    /// to the previously delivered state reproduces a full recompute.
    Delta {
        /// The new result rows (the plan evaluated over the delta alone).
        appended: Batch,
        /// The changed table's epoch after the commit.
        epoch: u64,
        /// The base table that changed.
        table: String,
    },
    /// The full re-evaluated result, replacing all previously delivered
    /// state (deletes, non-select plans, skipped epochs).
    Refresh(Batch),
}

/// MPSC event queue between the engine's write path and one subscriber.
pub(crate) struct SubQueue {
    events: Mutex<VecDeque<DeltaEvent>>,
    cond: Condvar,
    closed: AtomicBool,
}

impl SubQueue {
    pub(crate) fn new() -> SubQueue {
        SubQueue {
            events: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            closed: AtomicBool::new(false),
        }
    }

    pub(crate) fn push(&self, ev: DeltaEvent) {
        self.events.lock().push_back(ev);
        self.cond.notify_all();
    }

    /// Close the queue: already-queued events still drain, then iteration
    /// ends.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.cond.notify_all();
    }

    fn try_pop(&self) -> Option<DeltaEvent> {
        self.events.lock().pop_front()
    }

    fn pop_blocking(&self) -> Option<DeltaEvent> {
        let mut q = self.events.lock();
        loop {
            if let Some(ev) = q.pop_front() {
                return Some(ev);
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            self.cond.wait(&mut q);
        }
    }
}

/// One registered live query inside the engine's subscription registry.
pub(crate) struct SubEntry {
    pub(crate) id: u64,
    /// The concrete plan (bound, parameter-free).
    pub(crate) plan: Plan,
    /// The plan's output schema.
    pub(crate) schema: Schema,
    /// The plan's base-table footprint, parallel to `epochs` and
    /// `classes`.
    pub(crate) tables: Vec<String>,
    /// Per-table epoch the subscriber's delivered state reflects; used to
    /// suppress duplicate deltas (a commit already inside the initial
    /// result) and to detect skipped epochs (then: refresh).
    pub(crate) epochs: Vec<u64>,
    /// Per-table repairability class, precomputed at registration.
    pub(crate) classes: Vec<rdb_delta::Repairability>,
    pub(crate) queue: Arc<SubQueue>,
}

/// A live query: consume [`DeltaEvent`]s via the blocking `Iterator` impl
/// or [`Subscription::try_next`]. Dropping the handle unregisters the
/// subscription.
pub struct Subscription {
    engine: Arc<Engine>,
    id: u64,
    schema: Schema,
    queue: Arc<SubQueue>,
}

impl Subscription {
    pub(crate) fn new(
        engine: Arc<Engine>,
        id: u64,
        schema: Schema,
        queue: Arc<SubQueue>,
    ) -> Subscription {
        Subscription {
            engine,
            id,
            schema,
            queue,
        }
    }

    /// Registry id (unique per engine).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The subscribed query's result schema (every event's batch conforms
    /// to it).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The next pending event, without blocking.
    pub fn try_next(&self) -> Option<DeltaEvent> {
        self.queue.try_pop()
    }

    /// Whether the engine closed this subscription (shutdown). Queued
    /// events may still be pending.
    pub fn is_closed(&self) -> bool {
        self.queue.closed.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("id", &self.id)
            .field("closed", &self.is_closed())
            .finish_non_exhaustive()
    }
}

impl Iterator for Subscription {
    type Item = DeltaEvent;

    /// Block until the next event arrives; `None` once the subscription
    /// is closed and drained.
    fn next(&mut self) -> Option<DeltaEvent> {
        self.queue.pop_blocking()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.engine.unregister_subscription(self.id);
    }
}
