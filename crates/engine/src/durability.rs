//! Engine-level durability: recovery, the WAL hook, checkpoints, and the
//! lineage-warmed recycler.
//!
//! The mechanics (framing, segments, fsync policy, fault injection) live
//! in `rdb_wal`; this module owns the *policy*: when the engine boots with
//! a data directory it recovers checkpoint + WAL tail, installs the WAL as
//! the catalog-wide commit hook (so every epoch is logged **before** its
//! pointer swap), re-executes persisted lineage to re-seed the recycler,
//! and runs a background checkpointer that snapshots base tables and
//! prunes covered WAL segments.
//!
//! # Read-only degradation
//!
//! The first failed WAL write or fsync poisons the log: the failing commit
//! is aborted (memory never runs ahead of disk), and from then on every
//! write fails fast with [`rdb_plan::PlanErrorKind::ReadOnly`] while reads
//! keep serving from the in-memory epochs — which are exactly the epochs
//! the log covers, so no stale or phantom data is visible.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;
use rdb_exec::{build, run_to_batch, ExecContext, FnRegistry, MaterializedResult};
use rdb_plan::PlanError;
use rdb_recycler::{LineageEntry, Recycler};
use rdb_storage::Catalog;
use rdb_wal::{Checkpoint, RecoveryReport, TableCheckpoint, Wal};

pub use rdb_wal::{DurabilityConfig, FsyncPolicy, IoFault, NoFault, ScriptedFault, WalError};

use crate::engine::Engine;

/// Live durability state owned by an [`Engine`] built with a data
/// directory.
pub(crate) struct DurabilityState {
    pub(crate) wal: Arc<Wal>,
    pub(crate) dir: PathBuf,
    pub(crate) config: DurabilityConfig,
    /// Highest table epoch covered by the last checkpoint written (or
    /// recovered) in this process.
    pub(crate) last_checkpoint_epoch: AtomicU64,
    /// WAL records replayed during recovery at boot.
    pub(crate) recovery_replayed: u64,
    /// Lineage entries successfully re-materialized into the recycler at
    /// boot.
    pub(crate) recovery_warm_hits: AtomicU64,
    /// Serializes checkpoints (manual + background).
    pub(crate) checkpoint_lock: Mutex<()>,
}

/// Point-in-time durability counters, surfaced through `rdb_stats()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityStats {
    /// Bytes across all live WAL segments (0 without a data directory).
    pub wal_bytes: u64,
    /// Records appended to the WAL by this process.
    pub wal_records: u64,
    /// Highest epoch covered by the last checkpoint.
    pub last_checkpoint_epoch: u64,
    /// WAL records replayed during boot recovery.
    pub recovery_replayed: u64,
    /// Cache entries re-materialized from persisted lineage at boot.
    pub recovery_warm_hits: u64,
    /// Whether the engine has degraded to read-only (WAL poisoned).
    pub read_only: bool,
}

/// Recover `dir` into `catalog` and open the WAL for appending, returning
/// the installed state plus the recovery report (whose lineage the caller
/// feeds to [`warm_recycler`]).
pub(crate) fn open_durability(
    dir: PathBuf,
    config: DurabilityConfig,
    fault: Arc<dyn IoFault>,
    catalog: &Catalog,
) -> Result<(DurabilityState, RecoveryReport), PlanError> {
    let report = rdb_wal::recover(&dir, catalog)
        .map_err(|e| PlanError::msg(format!("recovery from '{}' failed: {e}", dir.display())))?;
    let wal = Wal::open(&dir, &config, fault)
        .map_err(|e| PlanError::msg(format!("wal open in '{}' failed: {e}", dir.display())))?;
    // From here on, every commit on every table is logged before its
    // pointer swap.
    catalog.set_commit_hook(wal.clone());
    let state = DurabilityState {
        wal,
        dir,
        config,
        last_checkpoint_epoch: AtomicU64::new(report.checkpoint_epoch),
        recovery_replayed: report.replayed_records,
        recovery_warm_hits: AtomicU64::new(0),
        checkpoint_lock: Mutex::new(()),
    };
    Ok((state, report))
}

/// Re-execute persisted lineage entries against the recovered catalog and
/// insert the results into the recycler, so the first post-restart queries
/// hit a warm cache instead of a cold one. Entries that no longer build
/// (schema drift, planner changes) are skipped — warming is an
/// optimization, never a correctness requirement.
pub(crate) fn warm_recycler(
    lineage: &[LineageEntry],
    recycler: &Recycler,
    catalog: &Arc<Catalog>,
    functions: &Arc<FnRegistry>,
) -> u64 {
    let mut hits = 0u64;
    for entry in lineage {
        if entry.plan.has_named() {
            continue; // defensive: lineage plans are persisted bound
        }
        let Ok(schema) = entry.plan.schema(catalog) else {
            continue;
        };
        let ctx = ExecContext::new(catalog.clone()).with_functions(functions.clone());
        let Ok(mut tree) = build(&entry.plan, &ctx) else {
            continue;
        };
        let batch = run_to_batch(tree.root.as_mut());
        let result = Arc::new(MaterializedResult::from_batches(schema, &[batch]));
        if recycler.warm(entry, catalog, result) {
            hits += 1;
        }
    }
    hits
}

impl Engine {
    /// Whether the engine has degraded to read-only mode because the WAL
    /// can no longer make writes durable. Reads keep serving; writes fail
    /// with [`rdb_plan::PlanErrorKind::ReadOnly`].
    pub fn is_read_only(&self) -> bool {
        self.durability
            .as_ref()
            .is_some_and(|d| d.wal.is_poisoned())
    }

    /// Durability counters (all zero / `read_only: false` when the engine
    /// was built without a data directory).
    pub fn durability_stats(&self) -> DurabilityStats {
        match &self.durability {
            Some(d) => DurabilityStats {
                wal_bytes: d.wal.wal_bytes(),
                wal_records: d.wal.records_appended(),
                last_checkpoint_epoch: d.last_checkpoint_epoch.load(Ordering::Relaxed),
                recovery_replayed: d.recovery_replayed,
                recovery_warm_hits: d.recovery_warm_hits.load(Ordering::Relaxed),
                read_only: d.wal.is_poisoned(),
            },
            None => DurabilityStats::default(),
        }
    }

    /// Write a checkpoint now: snapshot every base table plus the
    /// recycler's top-K lineage, fsync it durably, and prune WAL segments
    /// the checkpoint fully covers. Returns `Ok(false)` when the engine
    /// has no data directory. Concurrent writers are safe: commits racing
    /// the snapshot land in segments the prune provably keeps (see
    /// `Wal::prune`).
    pub fn checkpoint(&self) -> Result<bool, PlanError> {
        let Some(d) = &self.durability else {
            return Ok(false);
        };
        let _serialize = d.checkpoint_lock.lock();
        if d.wal.is_poisoned() {
            return Err(PlanError::read_only());
        }
        let snap = self.catalog.snapshot();
        let lineage = self
            .recycler
            .as_ref()
            .map(|r| r.lineage_top(d.config.warm_top_k))
            .unwrap_or_default();
        let epochs = snap.epochs();
        let mut tables = Vec::with_capacity(epochs.len());
        for (name, epoch) in &epochs {
            let t = snap.get(name).expect("snapshot table");
            tables.push(TableCheckpoint {
                name: name.clone(),
                epoch: *epoch,
                schema: t.schema().clone(),
                rows: t.to_rows(),
            });
        }
        let ckpt = Checkpoint { tables, lineage };
        let max_epoch = ckpt.max_epoch();
        rdb_wal::write_checkpoint(&d.dir, &ckpt)
            .map_err(|e| PlanError::msg(format!("checkpoint failed: {e}")))?;
        let cover: HashMap<String, u64> = epochs.into_iter().collect();
        d.wal
            .prune(&cover)
            .map_err(|e| PlanError::msg(format!("wal prune failed: {e}")))?;
        d.last_checkpoint_epoch.store(max_epoch, Ordering::Relaxed);
        Ok(true)
    }
}

/// Spawn the background checkpointer: polls the WAL growth counter and
/// checkpoints once it crosses the configured threshold. Holds only a
/// [`Weak`] engine reference, so dropping the engine (or shutdown) ends
/// the thread at its next poll.
pub(crate) fn spawn_checkpointer(engine: &Arc<Engine>) {
    let weak: Weak<Engine> = Arc::downgrade(engine);
    let (poll, threshold) = {
        let d = engine.durability.as_ref().expect("durability configured");
        (
            d.config.checkpoint_poll,
            d.config.checkpoint_threshold_bytes,
        )
    };
    std::thread::Builder::new()
        .name("rdb-checkpointer".to_string())
        .spawn(move || loop {
            std::thread::sleep(poll);
            let Some(engine) = weak.upgrade() else {
                return;
            };
            let Some(d) = &engine.durability else {
                return;
            };
            if engine.is_shutting_down() || d.wal.is_poisoned() {
                return;
            }
            if d.wal.bytes_since_checkpoint() >= threshold {
                // A poisoned-mid-checkpoint failure is terminal for the
                // thread; the engine is read-only either way.
                if engine.checkpoint().is_err() {
                    return;
                }
            }
        })
        .expect("spawn rdb-checkpointer");
}
