//! Engine façades tying plans, the recycler, and the executor together.
//!
//! * [`Engine`] — the pipelined, vector-at-a-time engine the paper targets:
//!   binds plans, runs them through the recycler's rewriter (when
//!   recycling is enabled), executes, and feeds measured statistics back.
//!   Supports concurrent query streams with a Vectorwise-style admission
//!   limit ("Vectorwise was set up to execute 12 queries in parallel").
//! * [`MaterializingEngine`] — the operator-at-a-time comparison baseline
//!   (MonetDB-style, after Ivanova et al. [10]): every operator fully
//!   materializes its result, and with recycling enabled every intermediate
//!   is admitted to the cache and matched directly against cached results.

pub mod engine;
pub mod materializing;

pub use engine::{Engine, EngineConfig, QueryOutcome, QueryRecord, StreamsReport, WorkloadQuery};
pub use materializing::{MatOutcome, MaterializingEngine};
