//! Engine façades tying plans, the recycler, and the executor together.
//!
//! * [`Engine`] — the pipelined, vector-at-a-time engine the paper targets.
//!   Built via [`EngineBuilder`]; queried through sessions: [`Session`]
//!   prepares statements ([`Prepared`]) whose executions stream results
//!   batch-at-a-time through [`QueryHandle`] (`Iterator<Item = Batch>`).
//!   Supports concurrent query streams with a Vectorwise-style admission
//!   limit ("Vectorwise was set up to execute 12 queries in parallel"),
//!   held as an RAII slot for the lifetime of each query handle.
//! * [`MaterializingEngine`] — the operator-at-a-time comparison baseline
//!   (MonetDB-style, after Ivanova et al. [10]): every operator fully
//!   materializes its result, and with recycling enabled every intermediate
//!   is admitted to the cache and matched directly against cached results.

pub mod durability;
pub mod engine;
pub mod materializing;
pub mod session;
pub mod subscribe;

pub use durability::{
    DurabilityConfig, DurabilityStats, FsyncPolicy, IoFault, NoFault, ScriptedFault, WalError,
};
pub use engine::{
    AdmissionSnapshot, Engine, EngineBuilder, EngineConfig, QueryOutcome, QueryRecord,
    StreamsReport, WorkloadQuery, WriteKind, WriteOutcome,
};
pub use materializing::{MatOutcome, MaterializingEngine};
pub use session::{
    BatchStream, Prepared, QueryHandle, Session, SessionStats, SessionStatsSnapshot, SqlOutcome,
};
pub use subscribe::{DeltaEvent, Subscription};
