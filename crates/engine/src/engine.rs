//! The pipelined engine: builder, admission gate, and stream runs.
//!
//! The public query surface is session-based (see [`crate::session`]):
//!
//! ```text
//! EngineBuilder -> Arc<Engine> -> Session -> Prepared -> QueryHandle
//! ```
//!
//! [`Engine::run`] survives as a deprecated compatibility shim over that
//! path.

use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rdb_delta::{Delta, Repairability};
use rdb_exec::{FnRegistry, WorkerPool};
use rdb_expr::{eval_predicate, Expr};
use rdb_plan::{Plan, PlanError};
use rdb_recycler::{Recycler, RecyclerConfig, RecyclerEvent};
use rdb_storage::{Catalog, Table};
use rdb_vector::{Batch, Schema, Value};

use crate::durability::{
    open_durability, spawn_checkpointer, warm_recycler, DurabilityConfig, DurabilityState, IoFault,
    NoFault,
};
use crate::session::Session;
use crate::subscribe::{DeltaEvent, SubEntry, SubQueue, Subscription};

/// Engine configuration (the value object consumed by [`EngineBuilder`]).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Recycler configuration; `None` disables recycling (the paper's OFF
    /// mode).
    pub recycling: Option<RecyclerConfig>,
    /// Maximum queries executing simultaneously (the paper uses 12; further
    /// concurrent queries are queued).
    pub max_concurrent_queries: usize,
    /// Maximum queries waiting in the admission queue before new arrivals
    /// are rejected with [`rdb_plan::PlanErrorKind::Saturated`] instead of queued.
    /// Defaults to effectively unbounded for in-process use; servers set a
    /// real bound so slow clients shed load instead of queueing forever.
    pub admission_queue_limit: usize,
    /// Default degree of intra-query parallelism (DOP): how many workers a
    /// single query's morsel-driven pipelines may use. `1` (the default)
    /// executes fully serially on the calling thread. Sessions can
    /// override per query ([`crate::session::Session::set_parallelism`]).
    /// Results are byte-identical at every DOP. Requests beyond the host's
    /// available parallelism are clamped (see [`effective_dop`]).
    pub parallelism: usize,
    /// Whether scan-rooted filter/project/join-probe chains execute as
    /// fused push-style pipelines (`rdb_exec::fuse`). On by default;
    /// results and cache entries are byte-identical either way, so this
    /// exists for A/B benchmarking and equivalence tests.
    pub fusion: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            recycling: Some(RecyclerConfig::default()),
            max_concurrent_queries: 12,
            admission_queue_limit: usize::MAX,
            // Env-driven default so whole test/bench suites can be swept
            // across DOPs without code changes (the CI DOP matrix).
            parallelism: default_parallelism_from_env(),
            fusion: true,
        }
    }
}

/// `RDB_DEFAULT_DOP` (a positive integer) overrides the engine-wide
/// default DOP; unset or unparsable means serial.
fn default_parallelism_from_env() -> usize {
    std::env::var("RDB_DEFAULT_DOP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

/// Effective DOP for a request of `n` workers: `min(n, available
/// parallelism)`. Oversubscribing the host makes morsel pipelines
/// *slower*, not faster — extra workers add context switches and contend
/// on the morsel dispenser without adding compute — so requests beyond the
/// core count are clamped. Setting `RDB_ALLOW_OVERSUBSCRIBE` (any value)
/// disables the clamp: the CI DOP matrix runs DOP 8 on small hosts to
/// exercise determinism, not speed, and needs the literal worker count.
pub fn effective_dop(n: usize) -> usize {
    let n = n.max(1);
    if std::env::var_os("RDB_ALLOW_OVERSUBSCRIBE").is_some() {
        return n;
    }
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    n.min(cores)
}

impl EngineConfig {
    /// Recycling disabled (naive execution).
    pub fn off() -> Self {
        EngineConfig {
            recycling: None,
            ..Default::default()
        }
    }

    /// With the given recycler configuration.
    pub fn with_recycler(config: RecyclerConfig) -> Self {
        EngineConfig {
            recycling: Some(config),
            ..Default::default()
        }
    }
}

/// Fluent constructor for [`Engine`] — the single entry point replacing the
/// ad-hoc `EngineConfig` constructors:
///
/// ```text
/// let engine = Engine::builder(catalog)
///     .recycler(RecyclerConfig::default())
///     .max_concurrent_queries(12)
///     .build();
/// ```
pub struct EngineBuilder {
    catalog: Arc<Catalog>,
    functions: Arc<FnRegistry>,
    config: EngineConfig,
    data_dir: Option<PathBuf>,
    durability: DurabilityConfig,
    io_fault: Arc<dyn IoFault>,
}

impl EngineBuilder {
    /// Start building an engine over `catalog`. Defaults: recycling on with
    /// [`RecyclerConfig::default`], 12 concurrent queries, no table
    /// functions.
    pub fn new(catalog: Arc<Catalog>) -> EngineBuilder {
        EngineBuilder {
            catalog,
            functions: Arc::new(FnRegistry::new()),
            config: EngineConfig::default(),
            data_dir: None,
            durability: DurabilityConfig::default(),
            io_fault: Arc::new(NoFault),
        }
    }

    /// Make the engine durable: recover `dir` (checkpoint + WAL tail) at
    /// build time, log every table commit through a write-ahead log before
    /// it becomes visible, checkpoint in the background, and warm the
    /// recycler from persisted lineage. Without a data directory the
    /// engine is purely in-memory, as before.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> EngineBuilder {
        self.data_dir = Some(dir.into());
        self
    }

    /// Tune durability (fsync policy, segment size, checkpoint cadence,
    /// lineage top-K). Only meaningful together with
    /// [`EngineBuilder::data_dir`].
    pub fn durability(mut self, config: DurabilityConfig) -> EngineBuilder {
        self.durability = config;
        self
    }

    /// Inject an I/O fault schedule into the WAL writer (crash/fault
    /// testing). Only meaningful together with [`EngineBuilder::data_dir`].
    pub fn io_fault(mut self, fault: Arc<dyn IoFault>) -> EngineBuilder {
        self.io_fault = fault;
        self
    }

    /// Attach table functions.
    pub fn functions(mut self, functions: Arc<FnRegistry>) -> EngineBuilder {
        self.functions = functions;
        self
    }

    /// Enable recycling with the given configuration.
    pub fn recycler(mut self, config: RecyclerConfig) -> EngineBuilder {
        self.config.recycling = Some(config);
        self
    }

    /// Disable recycling (the paper's OFF mode).
    pub fn no_recycler(mut self) -> EngineBuilder {
        self.config.recycling = None;
        self
    }

    /// Admission limit: queries executing simultaneously.
    pub fn max_concurrent_queries(mut self, n: usize) -> EngineBuilder {
        self.config.max_concurrent_queries = n;
        self
    }

    /// Bound the admission wait queue: once `n` queries are already
    /// waiting, further executions fail with [`rdb_plan::PlanErrorKind::Saturated`]
    /// instead of queueing (load shedding for serving layers).
    pub fn admission_queue_limit(mut self, n: usize) -> EngineBuilder {
        self.config.admission_queue_limit = n;
        self
    }

    /// Default degree of intra-query parallelism. `n > 1` creates a shared
    /// worker pool of `n` resident threads that every query's
    /// morsel-driven pipelines run on; `1` executes serially. Per-session
    /// overrides ([`crate::session::Session::set_parallelism`]) can exceed
    /// the pool size — excess workers run on overflow threads.
    pub fn parallelism(mut self, n: usize) -> EngineBuilder {
        self.config.parallelism = n.max(1);
        self
    }

    /// Enable or disable fused pipeline execution (on by default; see
    /// [`EngineConfig::fusion`]).
    pub fn fusion(mut self, on: bool) -> EngineBuilder {
        self.config.fusion = on;
        self
    }

    /// Apply a whole [`EngineConfig`] at once.
    pub fn config(mut self, config: EngineConfig) -> EngineBuilder {
        self.config = config;
        self
    }

    /// Construct the engine. Panics if recovery of the configured data
    /// directory fails — use [`EngineBuilder::try_build`] to handle that.
    pub fn build(self) -> Arc<Engine> {
        self.try_build().expect("engine build failed")
    }

    /// Construct the engine, surfacing recovery/WAL-open failures as
    /// errors instead of panicking. With a data directory this (1)
    /// replays checkpoint + WAL tail into the catalog, (2) installs the
    /// WAL as every table's commit hook, (3) re-executes persisted
    /// lineage to warm the recycler, and (4) spawns the background
    /// checkpointer.
    pub fn try_build(self) -> Result<Arc<Engine>, PlanError> {
        let parallelism = effective_dop(self.config.parallelism);
        let (durability, lineage) = match self.data_dir {
            Some(dir) => {
                let (state, report) =
                    open_durability(dir, self.durability, self.io_fault, &self.catalog)?;
                (Some(state), report.lineage)
            }
            None => (None, Vec::new()),
        };
        let recycler = self.config.recycling.map(Recycler::new);
        if let (Some(r), false) = (&recycler, lineage.is_empty()) {
            let hits = warm_recycler(&lineage, r, &self.catalog, &self.functions);
            if let Some(d) = &durability {
                d.recovery_warm_hits
                    .store(hits, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let engine = Arc::new(Engine {
            catalog: self.catalog,
            functions: self.functions,
            recycler,
            gate: Arc::new(Gate::new(
                self.config.max_concurrent_queries,
                self.config.admission_queue_limit,
            )),
            pool: (parallelism > 1).then(|| WorkerPool::new(parallelism)),
            parallelism,
            fusion: self.config.fusion,
            epoch: Instant::now(),
            durability,
            subscriptions: Mutex::new(Vec::new()),
            next_sub_id: AtomicU64::new(0),
        });
        if engine
            .durability
            .as_ref()
            .is_some_and(|d| d.config.auto_checkpoint)
        {
            spawn_checkpointer(&engine);
        }
        Ok(engine)
    }
}

/// The result of one fully materialized query execution.
#[derive(Debug)]
pub struct QueryOutcome {
    /// All result rows, concatenated.
    pub batch: Batch,
    /// Result schema.
    pub schema: Schema,
    /// Engine execution time: rewrite, build, and batch pulls; queue
    /// wait and client think-time between pulls excluded.
    pub wall: Duration,
    /// Matching/insertion time inside the recycler (0 when recycling off).
    pub match_ns: u64,
    /// Recycler events (rewrite-time and completion).
    pub events: Vec<RecyclerEvent>,
    /// Degree of intra-query parallelism this execution was granted (the
    /// builder may still run small scans serially; results are identical
    /// either way).
    pub dop: usize,
    /// Start/end offsets relative to the engine's epoch (for traces).
    pub started_at: Duration,
    /// End offset relative to the engine's epoch.
    pub finished_at: Duration,
}

impl QueryOutcome {
    /// Whether any cached result (exact or subsumption) was reused.
    pub fn reused(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e,
                RecyclerEvent::Reused { .. } | RecyclerEvent::SubsumptionReused { .. }
            )
        })
    }

    /// Whether any result was materialized and admitted by this query.
    pub fn materialized(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, RecyclerEvent::Materialized { admitted: true, .. }))
    }

    /// Whether the query stalled waiting for a concurrent materialization.
    pub fn stalled(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, RecyclerEvent::Stalled { .. }))
    }
}

/// Which DML operation a [`WriteOutcome`] records (drives e.g. the pgwire
/// `CommandComplete` tag: `INSERT 0 n` vs `DELETE n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Rows appended (`INSERT`).
    Append,
    /// Rows deleted (`DELETE`).
    Delete,
    /// Whole table contents replaced ([`Engine::replace_table`]).
    Replace,
}

/// The result of one committed DML statement.
#[derive(Debug)]
pub struct WriteOutcome {
    /// Which operation this was.
    pub kind: WriteKind,
    /// The updated table.
    pub table: String,
    /// The epoch the write committed (every snapshot taken from here on
    /// sees it).
    pub epoch: u64,
    /// Rows appended or deleted.
    pub rows_affected: usize,
    /// Per-entry recycler events for this write:
    /// [`RecyclerEvent::Repaired`] for cache entries patched in place from
    /// the delta, [`RecyclerEvent::Invalidated`] for entries evicted
    /// (empty when recycling is off).
    pub invalidated: Vec<RecyclerEvent>,
    /// Cache entries repaired in place instead of evicted.
    pub repaired: u64,
    /// Repair candidates that fell back to eviction.
    pub repair_fallbacks: u64,
    /// 1 when this write's delta was routed through the repair walk.
    pub deltas_applied: u64,
}

/// A labelled query inside a stream (labels drive the per-pattern
/// breakdowns of Figs. 8-10).
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// Pattern label, e.g. `"Q1"`.
    pub label: String,
    /// The (named or bound) plan.
    pub plan: Plan,
}

impl WorkloadQuery {
    /// Construct a labelled query.
    pub fn new(label: impl Into<String>, plan: Plan) -> Self {
        WorkloadQuery {
            label: label.into(),
            plan,
        }
    }
}

/// Per-query record of a stream run.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Stream index.
    pub stream: usize,
    /// Position within the stream.
    pub index: usize,
    /// Pattern label.
    pub label: String,
    /// Start offset from the run's epoch.
    pub start: Duration,
    /// End offset from the run's epoch.
    pub end: Duration,
    /// Pure execution time (excluding queue wait).
    pub exec: Duration,
    /// Matching cost in the recycler.
    pub match_ns: u64,
    /// Reused a cached result.
    pub reused: bool,
    /// Materialized (and the cache admitted) a result.
    pub materialized: bool,
    /// Stalled on a concurrent materialization.
    pub stalled: bool,
}

/// Result of a multi-stream throughput run (Fig. 7's measured quantities).
#[derive(Debug)]
pub struct StreamsReport {
    /// Per-stream elapsed time: first query issued → last result received.
    pub stream_times: Vec<Duration>,
    /// Per-query records (Fig. 9's trace).
    pub records: Vec<QueryRecord>,
    /// Total wall time of the whole run.
    pub total: Duration,
}

impl StreamsReport {
    /// Average evaluation time per stream (the y-axis of Fig. 7).
    pub fn avg_stream_time(&self) -> Duration {
        if self.stream_times.is_empty() {
            return Duration::ZERO;
        }
        self.stream_times.iter().sum::<Duration>() / self.stream_times.len() as u32
    }

    /// Average pure execution time per query pattern label (Fig. 8).
    pub fn avg_exec_by_label(&self) -> Vec<(String, Duration)> {
        let mut acc: Vec<(String, Duration, u32)> = Vec::new();
        for r in &self.records {
            match acc.iter_mut().find(|(l, _, _)| *l == r.label) {
                Some((_, d, n)) => {
                    *d += r.exec;
                    *n += 1;
                }
                None => acc.push((r.label.clone(), r.exec, 1)),
            }
        }
        acc.into_iter().map(|(l, d, n)| (l, d / n)).collect()
    }
}

/// Point-in-time view of the admission scheduler (see
/// [`Engine::admission`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionSnapshot {
    /// Queries that may execute simultaneously.
    pub capacity: usize,
    /// Admission slots currently held (executing queries).
    pub in_flight: usize,
    /// Queries waiting in the FIFO admission queue.
    pub queued: usize,
    /// Maximum queue depth before new queries are rejected.
    pub queue_limit: usize,
    /// Whether the gate has been closed for shutdown.
    pub closed: bool,
}

struct GateState {
    /// Free execution slots.
    slots: usize,
    /// Ticket source (monotonic).
    next_ticket: u64,
    /// Waiting tickets, strictly in arrival order.
    queue: std::collections::VecDeque<u64>,
    /// Closed gates admit nothing and fail all waiters.
    closed: bool,
}

/// FIFO-fair admission scheduler bounding concurrent query execution.
///
/// Each waiter draws a ticket and is admitted strictly in arrival order —
/// a slot freed under contention always goes to the longest-waiting query,
/// so no stream can starve behind a burst of rivals (the old
/// condvar-semaphore woke waiters in arbitrary order). The wait queue is
/// bounded: past `queue_limit` waiting queries, `acquire` rejects instead
/// of queueing, which is the engine-side backpressure signal a serving
/// layer turns into a client-visible "server overloaded" error. Closing
/// the gate (graceful shutdown) fails current and future waiters with
/// [`rdb_plan::PlanErrorKind::ShuttingDown`] while in-flight queries keep their
/// slots until they drain.
pub(crate) struct Gate {
    capacity: usize,
    queue_limit: usize,
    state: Mutex<GateState>,
    cond: Condvar,
}

impl Gate {
    fn new(capacity: usize, queue_limit: usize) -> Gate {
        let capacity = capacity.max(1);
        Gate {
            capacity,
            queue_limit,
            state: Mutex::new(GateState {
                slots: capacity,
                next_ticket: 0,
                queue: std::collections::VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Block until admitted (in strict arrival order). Fails fast when the
    /// wait queue is at capacity or the gate is closed.
    fn acquire(self: &Arc<Self>) -> Result<GateGuard, PlanError> {
        let mut s = self.state.lock();
        if s.closed {
            return Err(PlanError::shutting_down());
        }
        if s.slots > 0 && s.queue.is_empty() {
            // Fast path: no contention, no ticket needed.
            s.slots -= 1;
            drop(s);
            return Ok(GateGuard {
                gate: Arc::clone(self),
            });
        }
        if s.queue.len() >= self.queue_limit {
            return Err(PlanError::saturated(self.queue_limit));
        }
        let ticket = s.next_ticket;
        s.next_ticket += 1;
        s.queue.push_back(ticket);
        loop {
            if s.closed {
                s.queue.retain(|&t| t != ticket);
                // Our departure may unblock the (younger) new front.
                self.cond.notify_all();
                return Err(PlanError::shutting_down());
            }
            if s.slots > 0 && s.queue.front() == Some(&ticket) {
                s.queue.pop_front();
                s.slots -= 1;
                if s.slots > 0 && !s.queue.is_empty() {
                    // More slots remain for the next ticket in line.
                    self.cond.notify_all();
                }
                drop(s);
                return Ok(GateGuard {
                    gate: Arc::clone(self),
                });
            }
            self.cond.wait(&mut s);
        }
    }

    /// Non-blocking acquire. Respects FIFO fairness: a free slot with a
    /// non-empty queue belongs to the queue's front, not to opportunistic
    /// callers.
    fn try_acquire(self: &Arc<Self>) -> Option<GateGuard> {
        let mut s = self.state.lock();
        if s.closed || s.slots == 0 || !s.queue.is_empty() {
            return None;
        }
        s.slots -= 1;
        drop(s);
        Some(GateGuard {
            gate: Arc::clone(self),
        })
    }

    /// Close the gate: every current and future `acquire` fails with
    /// [`rdb_plan::PlanErrorKind::ShuttingDown`]; held slots drain normally.
    fn close(&self) {
        self.state.lock().closed = true;
        self.cond.notify_all();
    }

    fn snapshot(&self) -> AdmissionSnapshot {
        let s = self.state.lock();
        AdmissionSnapshot {
            capacity: self.capacity,
            in_flight: self.capacity - s.slots,
            queued: s.queue.len(),
            queue_limit: self.queue_limit,
            closed: s.closed,
        }
    }

    #[cfg(test)]
    fn available(&self) -> usize {
        self.state.lock().slots
    }
}

/// RAII admission slot: held by a [`crate::session::QueryHandle`] for as
/// long as its stream is live, and released on drop — so a panicking or
/// abandoned query can no longer leak a concurrency slot.
pub(crate) struct GateGuard {
    gate: Arc<Gate>,
}

impl std::fmt::Debug for GateGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GateGuard").finish_non_exhaustive()
    }
}

impl Drop for GateGuard {
    fn drop(&mut self) {
        let mut s = self.gate.state.lock();
        s.slots += 1;
        drop(s);
        // Wake everyone; only the queue front can take the slot, the rest
        // re-check and sleep again (admission is rare enough that the
        // thundering herd costs less than per-ticket condvars would).
        self.gate.cond.notify_all();
    }
}

/// The pipelined engine.
pub struct Engine {
    pub(crate) catalog: Arc<Catalog>,
    pub(crate) functions: Arc<FnRegistry>,
    pub(crate) recycler: Option<Arc<Recycler>>,
    pub(crate) gate: Arc<Gate>,
    /// Shared worker pool for intra-query parallelism (`None` when the
    /// engine default DOP is 1; session overrides then run on plain
    /// threads).
    pub(crate) pool: Option<Arc<WorkerPool>>,
    /// Engine-default DOP.
    pub(crate) parallelism: usize,
    /// Fused pipeline execution (see [`EngineConfig::fusion`]).
    pub(crate) fusion: bool,
    pub(crate) epoch: Instant,
    /// WAL + checkpoint state (`None` without a data directory).
    pub(crate) durability: Option<DurabilityState>,
    /// Live query subscriptions. One lock serializes registration and
    /// write fan-out, which is what makes the initial-result/event-stream
    /// handoff gapless (see [`crate::subscribe`]).
    pub(crate) subscriptions: Mutex<Vec<SubEntry>>,
    pub(crate) next_sub_id: AtomicU64,
}

impl Engine {
    /// Start building an engine over `catalog`.
    pub fn builder(catalog: Arc<Catalog>) -> EngineBuilder {
        EngineBuilder::new(catalog)
    }

    /// Build an engine over a catalog (no table functions).
    #[deprecated(note = "use Engine::builder(catalog)")]
    pub fn new(catalog: Arc<Catalog>, config: EngineConfig) -> Arc<Engine> {
        EngineBuilder::new(catalog).config(config).build()
    }

    /// Build an engine with table functions.
    #[deprecated(note = "use Engine::builder(catalog).functions(..)")]
    pub fn with_functions(
        catalog: Arc<Catalog>,
        functions: Arc<FnRegistry>,
        config: EngineConfig,
    ) -> Arc<Engine> {
        EngineBuilder::new(catalog)
            .functions(functions)
            .config(config)
            .build()
    }

    /// Open a session: the unit of client interaction that owns prepared
    /// statements and per-session statistics.
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(Arc::clone(self))
    }

    /// The catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The recycler, if recycling is enabled.
    pub fn recycler(&self) -> Option<&Arc<Recycler>> {
        self.recycler.as_ref()
    }

    /// The table-function registry.
    pub fn functions(&self) -> &Arc<FnRegistry> {
        &self.functions
    }

    /// The engine-default degree of intra-query parallelism.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Whether fused pipeline execution is enabled.
    pub fn fusion(&self) -> bool {
        self.fusion
    }

    /// Flush the recycler cache (no-op when recycling is off).
    pub fn flush_cache(&self) {
        if let Some(r) = &self.recycler {
            r.flush_cache();
        }
    }

    /// Append `rows` to a base table and commit a new epoch. In-flight
    /// queries keep reading their pinned snapshots; the recycler evicts
    /// exactly the cache entries that depended on `table`. An empty
    /// `rows` is a no-op: no epoch is committed and nothing is
    /// invalidated.
    ///
    /// DML visibility covers base-table scans only: a registered table
    /// *function* (e.g. the SkyServer cone search) is a black box that
    /// captures whatever inputs it was built with, so writes do not flow
    /// into function-backed relations — rebuild the `FnRegistry` (and the
    /// engine) to refresh them.
    pub fn append(&self, table: &str, rows: &[Vec<Value>]) -> Result<WriteOutcome, PlanError> {
        if self.is_read_only() {
            return Err(PlanError::read_only());
        }
        let vt = self
            .catalog
            .versioned(table)
            .ok_or_else(|| PlanError::unknown_table(table))?;
        let schema = vt.schema().clone();
        let snap = vt.append(rows).map_err(|e| self.write_error(e))?;
        let (invalidated, repaired, repair_fallbacks, deltas_applied) = if rows.is_empty() {
            (Vec::new(), 0, 0, 0)
        } else {
            let delta = Delta::append(table, schema, snap.epoch(), rows);
            self.notify_update(table, snap.epoch(), Some(&delta))
        };
        Ok(WriteOutcome {
            kind: WriteKind::Append,
            table: table.to_string(),
            epoch: snap.epoch(),
            rows_affected: rows.len(),
            invalidated,
            repaired,
            repair_fallbacks,
            deltas_applied,
        })
    }

    /// Delete every row of `table` matching `predicate` (named column
    /// references resolved against the table's schema; NULL evaluates to
    /// not-matched, as in a `WHERE` clause) and commit a new epoch. A
    /// predicate matching no rows is a no-op: no epoch is committed and
    /// nothing is invalidated. See [`Engine::append`] for the
    /// table-function visibility caveat.
    pub fn delete(&self, table: &str, predicate: &Expr) -> Result<WriteOutcome, PlanError> {
        if self.is_read_only() {
            return Err(PlanError::read_only());
        }
        let vt = self
            .catalog
            .versioned(table)
            .ok_or_else(|| PlanError::unknown_table(table))?;
        let bound = predicate.bind(vt.schema()).map_err(PlanError::from)?;
        if bound.has_params() {
            return Err(PlanError::msg(format!(
                "delete predicate for '{table}' contains unbound parameters; \
                 substitute them first"
            )));
        }
        let types: Vec<_> = vt.schema().fields().iter().map(|f| f.dtype).collect();
        let dtype = bound.data_type(&types);
        if dtype != rdb_vector::DataType::Bool {
            return Err(PlanError::type_mismatch(
                "boolean",
                dtype.to_string(),
                format!("delete predicate for '{table}'"),
            ));
        }
        // The mask is evaluated against the exact snapshot being replaced
        // (VersionedTable::delete_where_capturing re-runs it if a
        // concurrent writer commits first), so interleaved writers compose
        // linearizably. The deleted rows are captured inside the commit —
        // they are the typed delta the repair path retracts from dependent
        // cache entries.
        let all_cols: Vec<usize> = (0..vt.schema().len()).collect();
        let (captured, snap) = vt
            .delete_where_capturing(|t| {
                let mut mask = Vec::with_capacity(t.rows());
                for b in t.batches(&all_cols) {
                    mask.extend(eval_predicate(&bound, &b));
                }
                mask
            })
            .map_err(|e| self.write_error(e))?;
        let deleted = captured.len();
        let (invalidated, repaired, repair_fallbacks, deltas_applied) = if deleted == 0 {
            // No-op delete: no epoch committed, cache stays hot.
            (Vec::new(), 0, 0, 0)
        } else {
            let delta = Delta::delete(table, vt.schema().clone(), snap.epoch(), &captured);
            self.notify_update(table, snap.epoch(), Some(&delta))
        };
        Ok(WriteOutcome {
            kind: WriteKind::Delete,
            table: table.to_string(),
            epoch: snap.epoch(),
            rows_affected: deleted,
            invalidated,
            repaired,
            repair_fallbacks,
            deltas_applied,
        })
    }

    /// Replace a base table's contents wholesale, committing the new
    /// contents as the next epoch. Unlike raw `Catalog::replace`, this
    /// routes through the recycler's invalidation walk, so cache entries
    /// that depended on the old contents can never serve stale rows.
    /// In-flight queries keep reading their pinned snapshots.
    pub fn replace_table(&self, table: Arc<Table>) -> Result<WriteOutcome, PlanError> {
        if self.is_read_only() {
            return Err(PlanError::read_only());
        }
        let name = table.name().to_string();
        let vt = self
            .catalog
            .versioned(&name)
            .ok_or_else(|| PlanError::unknown_table(&name))?;
        let rows = table.rows();
        let snap = vt.replace(&table).map_err(|e| self.write_error(e))?;
        // A wholesale replacement has no row-level delta: dependent cache
        // entries evict, subscriptions refresh.
        let (invalidated, repaired, repair_fallbacks, deltas_applied) =
            self.notify_update(&name, snap.epoch(), None);
        Ok(WriteOutcome {
            kind: WriteKind::Replace,
            table: name,
            epoch: snap.epoch(),
            rows_affected: rows,
            invalidated,
            repaired,
            repair_fallbacks,
            deltas_applied,
        })
    }

    /// Map a storage-level write failure: once the WAL is poisoned the
    /// engine-visible cause is read-only mode, not the raw I/O message.
    fn write_error(&self, e: rdb_storage::StorageError) -> PlanError {
        if self.is_read_only() {
            PlanError::read_only()
        } else {
            PlanError::msg(e.to_string())
        }
    }

    /// Tell the recycler (and live subscriptions) a table committed a new
    /// epoch. With a typed delta the recycler *repairs* dependent cache
    /// entries in place where their classification allows it, falling back
    /// to eviction otherwise; without one (table replacement) everything
    /// dependent evicts. Returns `(events, repaired, fallbacks,
    /// deltas_applied)` for the [`WriteOutcome`].
    fn notify_update(
        &self,
        table: &str,
        epoch: u64,
        delta: Option<&Delta>,
    ) -> (Vec<RecyclerEvent>, u64, u64, u64) {
        let out = match (&self.recycler, delta) {
            (Some(r), Some(d)) => {
                let snapshot = self.catalog.snapshot();
                let out = r.repair(d, &snapshot, &self.functions);
                (out.events, out.repaired, out.fallbacks, out.deltas_applied)
            }
            (Some(r), None) => (r.invalidate(table, epoch), 0, 0, 0),
            (None, _) => (Vec::new(), 0, 0, 0),
        };
        self.fan_out(table, delta);
        out
    }

    /// Push this write's change to every subscription whose plan reads
    /// `table`: an appended-rows [`DeltaEvent::Delta`] where the plan is
    /// select-class over the changed table and the write was a pure
    /// append, a full [`DeltaEvent::Refresh`] otherwise. Runs under the
    /// registry lock so fan-out serializes with registration (gapless
    /// handoff) and per-subscription event order follows epoch order.
    fn fan_out(&self, table: &str, delta: Option<&Delta>) {
        let mut subs = self.subscriptions.lock();
        if subs.is_empty() {
            return;
        }
        let snapshot = Arc::new(self.catalog.snapshot());
        for entry in subs.iter_mut() {
            let Some(pos) = entry.tables.iter().position(|t| t == table) else {
                continue;
            };
            let seen = entry.epochs[pos];
            if let Some(d) = delta {
                if d.epoch <= seen {
                    // Already inside the initial result (or a refresh that
                    // raced ahead of this fan-out).
                    continue;
                }
                if d.epoch == seen + 1
                    && d.deleted.rows() == 0
                    && entry.classes[pos] == Repairability::Select
                {
                    if let Some(appended) = rdb_delta::eval_append(
                        &entry.plan,
                        &entry.schema,
                        d,
                        &snapshot,
                        &self.functions,
                    ) {
                        entry.epochs[pos] = d.epoch;
                        if appended.rows() > 0 {
                            entry.queue.push(DeltaEvent::Delta {
                                appended,
                                epoch: d.epoch,
                                table: table.to_string(),
                            });
                        }
                        continue;
                    }
                }
            }
            // Deletes, non-select plans, skipped epochs, replacements, or
            // a failed delta evaluation: re-evaluate in full. The refresh
            // reflects the *current* snapshot, so every table's seen epoch
            // advances to it.
            if let Some(full) =
                rdb_delta::eval_full(&entry.plan, &entry.schema, &snapshot, &self.functions)
            {
                for (i, t) in entry.tables.iter().enumerate() {
                    if let Some(e) = snapshot.epoch_of(t) {
                        entry.epochs[i] = e;
                    }
                }
                entry.queue.push(DeltaEvent::Refresh(full));
            }
        }
    }

    /// Register a live query: evaluate `plan` once against the current
    /// snapshot (serially — identical to any-DOP execution), queue the
    /// result as [`DeltaEvent::Initial`], and subscribe the plan to all
    /// its base tables. Taken under the registry lock, so no committed
    /// write can fall between the initial result and the event stream.
    pub(crate) fn subscribe(
        self: &Arc<Self>,
        plan: Plan,
        schema: Schema,
    ) -> Result<Subscription, PlanError> {
        let mut subs = self.subscriptions.lock();
        let snapshot = Arc::new(self.catalog.snapshot());
        let initial = rdb_delta::eval_full(&plan, &schema, &snapshot, &self.functions)
            .ok_or_else(|| PlanError::msg("subscription: initial evaluation failed"))?;
        let tables = plan.base_tables();
        let epochs = tables
            .iter()
            .map(|t| snapshot.epoch_of(t).unwrap_or(0))
            .collect();
        let classes = tables
            .iter()
            .map(|t| rdb_delta::classify(&plan, t))
            .collect();
        let id = self
            .next_sub_id
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let queue = Arc::new(SubQueue::new());
        queue.push(DeltaEvent::Initial(initial));
        if self.is_shutting_down() {
            queue.close();
        }
        subs.push(SubEntry {
            id,
            plan,
            schema: schema.clone(),
            tables,
            epochs,
            classes,
            queue: Arc::clone(&queue),
        });
        Ok(Subscription::new(Arc::clone(self), id, schema, queue))
    }

    pub(crate) fn unregister_subscription(&self, id: u64) {
        self.subscriptions.lock().retain(|s| s.id != id);
    }

    /// Live subscriptions currently registered.
    pub fn subscriptions_active(&self) -> usize {
        self.subscriptions.lock().len()
    }

    /// Acquire an admission slot, blocking (FIFO-fair) while the engine is
    /// at its concurrency limit. Fails when the wait queue is full or the
    /// engine is shutting down.
    pub(crate) fn admit(&self) -> Result<GateGuard, PlanError> {
        self.gate.acquire()
    }

    /// Acquire an admission slot only if one is free right now (and nobody
    /// is queued ahead — `try` never jumps the FIFO line).
    pub(crate) fn try_admit(&self) -> Option<GateGuard> {
        self.gate.try_acquire()
    }

    /// Point-in-time admission-scheduler counters: slots in use, queue
    /// depth, limits, and whether the engine is draining.
    pub fn admission(&self) -> AdmissionSnapshot {
        self.gate.snapshot()
    }

    /// Begin graceful shutdown: stop admitting queries and close every
    /// live subscription (queued events still drain; iteration then
    /// ends). Executions already holding a slot drain normally; queued
    /// and future executions fail with
    /// [`rdb_plan::PlanErrorKind::ShuttingDown`]. Idempotent.
    pub fn shutdown(&self) {
        self.gate.close();
        for entry in self.subscriptions.lock().iter() {
            entry.queue.close();
        }
    }

    /// Whether [`Engine::shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.gate.snapshot().closed
    }

    /// Execute one query to completion (named or bound plan). Blocks while
    /// the engine is at its concurrency limit.
    #[deprecated(note = "use Engine::session(), Session::prepare(), and Prepared::execute()")]
    pub fn run(self: &Arc<Self>, plan: &Plan) -> Result<QueryOutcome, PlanError> {
        Ok(self.session().query(plan)?.into_outcome())
    }

    /// Run several query streams concurrently (one session and thread per
    /// stream, bounded by the engine's admission gate), as in the TPC-H
    /// throughput test of §V.
    pub fn run_streams(self: &Arc<Self>, streams: &[Vec<WorkloadQuery>]) -> StreamsReport {
        let run_start = Instant::now();
        let mut stream_times = vec![Duration::ZERO; streams.len()];
        let mut records: Vec<QueryRecord> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = streams
                .iter()
                .enumerate()
                .map(|(si, stream)| {
                    let engine = Arc::clone(self);
                    scope.spawn(move |_| {
                        let session = engine.session();
                        let stream_start = Instant::now();
                        let mut recs = Vec::with_capacity(stream.len());
                        for (qi, q) in stream.iter().enumerate() {
                            let out = session
                                .query(&q.plan)
                                .unwrap_or_else(|e| panic!("query {} failed: {e}", q.label))
                                .into_outcome();
                            recs.push(QueryRecord {
                                stream: si,
                                index: qi,
                                label: q.label.clone(),
                                start: out.started_at,
                                end: out.finished_at,
                                exec: out.wall,
                                match_ns: out.match_ns,
                                reused: out.reused(),
                                materialized: out.materialized(),
                                stalled: out.stalled(),
                            });
                        }
                        (si, stream_start.elapsed(), recs)
                    })
                })
                .collect();
            for h in handles {
                let (si, elapsed, mut recs) = h.join().expect("stream thread panicked");
                stream_times[si] = elapsed;
                records.append(&mut recs);
            }
        })
        .expect("stream scope failed");
        records.sort_by_key(|r| (r.stream, r.index));
        StreamsReport {
            stream_times,
            records,
            total: run_start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_expr::{AggFunc, Expr};
    use rdb_plan::scan;
    use rdb_recycler::CostModel;
    use rdb_storage::TableBuilder;
    use rdb_vector::{DataType, Value};

    fn catalog(rows: i64) -> Arc<Catalog> {
        let mut cat = Catalog::new();
        let schema = Schema::from_pairs([("k", DataType::Int), ("v", DataType::Float)]);
        let mut b = TableBuilder::new("t", schema, rows as usize);
        for i in 0..rows {
            b.push_row(vec![Value::Int(i % 50), Value::Float(i as f64)]);
        }
        cat.register(b.finish()).expect("register table");
        Arc::new(cat)
    }

    fn agg_query(limit: i64) -> Plan {
        scan("t", &["k", "v"])
            .select(Expr::name("k").lt(Expr::lit(limit)))
            .aggregate(
                vec![(Expr::name("k"), "k")],
                vec![(AggFunc::Sum(Expr::name("v")), "sv")],
            )
    }

    fn det_config() -> RecyclerConfig {
        let mut c = RecyclerConfig::deterministic(1 << 20);
        c.spec_min_progress = 0.0;
        c
    }

    fn run(engine: &Arc<Engine>, plan: &Plan) -> QueryOutcome {
        engine.session().query(plan).unwrap().into_outcome()
    }

    #[test]
    fn off_mode_runs_plain() {
        let engine = Engine::builder(catalog(10_000)).no_recycler().build();
        let out = run(&engine, &agg_query(10));
        assert_eq!(out.batch.rows(), 10);
        assert!(out.events.is_empty());
        assert_eq!(out.match_ns, 0);
    }

    #[test]
    fn repeated_query_is_reused() {
        let engine = Engine::builder(catalog(20_000))
            .recycler(det_config())
            .build();
        let q = agg_query(10);
        let first = run(&engine, &q);
        assert!(!first.reused());
        assert!(first.materialized(), "speculation caches the aggregate");
        let second = run(&engine, &q);
        assert!(second.reused(), "second run must hit the cache");
        assert_eq!(first.batch.to_rows(), second.batch.to_rows());
        // Cached runs skip the scan work entirely.
        let r = engine.recycler().unwrap();
        assert!(r.cache_len() >= 1);
        assert!(r.stats.reuses.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    }

    #[test]
    fn different_parameters_do_not_share_results() {
        let engine = Engine::builder(catalog(5_000))
            .recycler(det_config())
            .build();
        let a = run(&engine, &agg_query(10));
        let b = run(&engine, &agg_query(20));
        assert!(!b.reused() || b.batch.rows() == 20);
        assert_eq!(a.batch.rows(), 10);
        assert_eq!(b.batch.rows(), 20);
    }

    #[test]
    fn flush_forces_recompute() {
        let engine = Engine::builder(catalog(5_000))
            .recycler(det_config())
            .build();
        let q = agg_query(10);
        run(&engine, &q);
        engine.flush_cache();
        assert_eq!(engine.recycler().unwrap().cache_len(), 0);
        let again = run(&engine, &q);
        assert!(!again.reused());
        assert_eq!(again.batch.rows(), 10);
    }

    #[test]
    fn history_mode_needs_three_occurrences() {
        // Paper §V: "a result has to appear at least three times in a
        // workload for the [history] recycler to benefit from reusing it":
        // 1st inserts, 2nd is seen-before (gets a store), 3rd reuses.
        let mut cfg = det_config();
        cfg.mode = rdb_recycler::RecyclerMode::History;
        let engine = Engine::builder(catalog(5_000)).recycler(cfg).build();
        let q = agg_query(10);
        let first = run(&engine, &q);
        assert!(
            !first.materialized(),
            "history mode never stores first-timers"
        );
        let second = run(&engine, &q);
        assert!(!second.reused());
        assert!(second.materialized(), "second occurrence materializes");
        let third = run(&engine, &q);
        assert!(third.reused(), "third occurrence reuses");
    }

    #[test]
    fn work_cost_model_annotations_flow() {
        let engine = Engine::builder(catalog(5_000))
            .recycler(det_config())
            .build();
        run(&engine, &agg_query(10));
        let r = engine.recycler().unwrap();
        assert!(r.graph_len() >= 3);
        r.with_graph(|g| {
            // Every node of the query got annotated with measured stats.
            let measured = (0..g.len())
                .filter(|&i| g.node(rdb_recycler::NodeId(i as u32)).stats.measured)
                .count();
            assert!(measured >= 3, "expected measured nodes, got {measured}");
            for i in 0..g.len() {
                let n = g.node(rdb_recycler::NodeId(i as u32));
                if n.stats.measured {
                    assert!(n.stats.bcost_work > 0.0);
                }
            }
        });
        let _ = CostModel::WorkUnits;
    }

    #[test]
    fn concurrent_identical_streams_share_work() {
        let engine = Engine::builder(catalog(20_000))
            .recycler(det_config())
            .build();
        let mk = |label: &str| WorkloadQuery::new(label, agg_query(10));
        let streams: Vec<Vec<WorkloadQuery>> =
            (0..4).map(|_| vec![mk("QA"), mk("QA"), mk("QA")]).collect();
        let report = engine.run_streams(&streams);
        assert_eq!(report.records.len(), 12);
        let reused = report.records.iter().filter(|r| r.reused).count();
        assert!(
            reused >= 8,
            "most of the 12 identical queries should reuse (got {reused})"
        );
        let by_label = report.avg_exec_by_label();
        assert_eq!(by_label.len(), 1);
        assert!(report.avg_stream_time() > Duration::ZERO);
    }

    #[test]
    fn streams_report_orders_records() {
        let engine = Engine::builder(catalog(1_000)).no_recycler().build();
        let streams: Vec<Vec<WorkloadQuery>> = (0..2)
            .map(|_| {
                vec![
                    WorkloadQuery::new("A", agg_query(5)),
                    WorkloadQuery::new("B", agg_query(15)),
                ]
            })
            .collect();
        let report = engine.run_streams(&streams);
        assert_eq!(report.records.len(), 4);
        assert_eq!(report.records[0].stream, 0);
        assert_eq!(report.records[0].index, 0);
        assert_eq!(report.records[3].stream, 1);
        assert_eq!(report.records[3].index, 1);
        assert_eq!(report.stream_times.len(), 2);
    }

    #[test]
    fn gate_guard_releases_on_panic() {
        let engine = Engine::builder(catalog(1_000))
            .no_recycler()
            .max_concurrent_queries(1)
            .build();
        // A query that panics mid-stream must give its slot back.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let handle = engine.session().query(&agg_query(5)).unwrap();
            let _hold = handle;
            panic!("simulated query failure");
        }));
        assert!(caught.is_err());
        assert_eq!(engine.gate.available(), 1, "slot restored after panic");
        // The engine still accepts queries afterwards.
        let out = run(&engine, &agg_query(5));
        assert_eq!(out.batch.rows(), 5);
    }

    #[test]
    fn gate_admits_waiters_in_arrival_order() {
        // One slot, held. N waiters queue one at a time (each provably
        // enqueued before the next arrives, via the queue-depth counter);
        // releasing the slot repeatedly must admit them in exactly
        // arrival order — the starvation regression this gate fixes.
        let gate = Arc::new(Gate::new(1, usize::MAX));
        let held = gate.acquire().unwrap();
        const N: usize = 8;
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut threads = Vec::new();
        for i in 0..N {
            let g = Arc::clone(&gate);
            let order = Arc::clone(&order);
            threads.push(std::thread::spawn(move || {
                let guard = g.acquire().unwrap();
                order.lock().push(i);
                drop(guard); // pass the slot to the next ticket
            }));
            // Wait until waiter i is actually queued before starting i+1,
            // so arrival order is deterministic.
            while gate.snapshot().queued < i + 1 {
                std::thread::yield_now();
            }
        }
        drop(held);
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*order.lock(), (0..N).collect::<Vec<_>>());
    }

    #[test]
    fn gate_bounds_the_wait_queue() {
        let gate = Arc::new(Gate::new(1, 2));
        let _held = gate.acquire().unwrap();
        let mut waiters = Vec::new();
        for _ in 0..2 {
            let gate = Arc::clone(&gate);
            waiters.push(std::thread::spawn(move || {
                drop(gate.acquire().unwrap());
            }));
        }
        while gate.snapshot().queued < 2 {
            std::thread::yield_now();
        }
        // Third waiter exceeds the bound: rejected, not queued.
        let err = gate.acquire().expect_err("queue is full");
        assert!(
            matches!(err.kind, rdb_plan::PlanErrorKind::Saturated { limit: 2 }),
            "{err}"
        );
        drop(_held);
        for t in waiters {
            t.join().unwrap();
        }
    }

    #[test]
    fn gate_close_fails_waiters_and_new_arrivals() {
        let gate = Arc::new(Gate::new(1, usize::MAX));
        let held = gate.acquire().unwrap();
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.acquire().map(|_| ()))
        };
        while gate.snapshot().queued < 1 {
            std::thread::yield_now();
        }
        gate.close();
        let err = waiter.join().unwrap().expect_err("waiter fails on close");
        assert!(matches!(err.kind, rdb_plan::PlanErrorKind::ShuttingDown));
        let err = gate.acquire().expect_err("closed gate admits nothing");
        assert!(matches!(err.kind, rdb_plan::PlanErrorKind::ShuttingDown));
        // The held slot still releases cleanly.
        drop(held);
        assert_eq!(gate.snapshot().in_flight, 0);
        assert!(gate.snapshot().closed);
    }

    #[test]
    fn try_admit_never_jumps_the_fifo_line() {
        let gate = Arc::new(Gate::new(1, usize::MAX));
        let held = gate.acquire().unwrap();
        let gate2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || drop(gate2.acquire().unwrap()));
        while gate.snapshot().queued < 1 {
            std::thread::yield_now();
        }
        // A slot is about to free up, but the queued waiter owns it.
        drop(held);
        assert!(
            gate.try_acquire().is_none() || gate.snapshot().queued == 0,
            "try_acquire must not overtake a queued waiter"
        );
        waiter.join().unwrap();
    }

    #[test]
    fn engine_shutdown_rejects_new_queries() {
        let engine = Engine::builder(catalog(1_000)).no_recycler().build();
        let out = run(&engine, &agg_query(5));
        assert_eq!(out.batch.rows(), 5);
        engine.shutdown();
        assert!(engine.is_shutting_down());
        let err = engine.session().query(&agg_query(5)).expect_err("closed");
        assert!(matches!(err.kind, rdb_plan::PlanErrorKind::ShuttingDown));
    }

    #[test]
    fn deprecated_run_shim_matches_session_path() {
        let engine = Engine::builder(catalog(5_000))
            .recycler(det_config())
            .build();
        let q = agg_query(10);
        #[allow(deprecated)]
        let a = engine.run(&q).unwrap();
        let b = run(&engine, &q);
        assert_eq!(a.batch.to_rows(), b.batch.to_rows());
        assert!(b.reused(), "second execution reuses the first's result");
    }
}
