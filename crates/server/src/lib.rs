//! Postgres-wire-protocol serving layer over the recycling engine.
//!
//! `rdb_server` puts the engine behind a socket: any Postgres client or
//! driver that speaks protocol v3 with text-format values can connect
//! (trust auth), run SQL, prepare statements, and cancel running queries.
//! The recycler sits under all of it — two clients issuing the same
//! parameterized template land on the same fingerprints and share cached
//! results, which is exactly the multi-user session workload the
//! recycling paper targets.
//!
//! # What's mapped where
//!
//! | Wire concept | Engine concept |
//! |---|---|
//! | connection startup | [`rdb_engine::Engine::session`] |
//! | simple `Query` | [`rdb_engine::Session::sql`] per statement |
//! | `Parse` | [`rdb_engine::Session::prepare`] (queries) / kept text (DML) |
//! | `Bind` + `Execute` | [`rdb_engine::Prepared::execute`] with [`rdb_expr::Params`] |
//! | `CancelRequest` | dropping the [`rdb_engine::QueryHandle`] mid-stream |
//! | `ErrorResponse` | [`rdb_sql::SqlError`] with SQLSTATE, position, caret detail |
//! | `SELECT * FROM rdb_stats()` | [`ServerStatsSnapshot`] as a volatile table function |
//!
//! # Threading model
//!
//! Three kinds of thread, none per-connection:
//!
//! * **reactor** (one): owns the listener and every idle connection;
//!   accepts, then sweeps the idle set with nonblocking `peek`. An idle
//!   connection costs a map entry, not a thread — thousands of parked
//!   clients are fine.
//! * **connection handlers** (a small pool, [`ServerBuilder::workers`]):
//!   a readable connection is pumped here — frames decoded, statements
//!   executed, responses encoded — until no complete frame remains, then
//!   handed back to the reactor. The pool overflows instead of queueing,
//!   so a slow statement never blocks another connection's pump.
//! * **engine workers**: intra-query parallelism, unchanged from the
//!   embedded engine.
//!
//! Admission control is the engine's FIFO-fair gate: at most
//! [`ServerBuilder::max_concurrent_queries`] statements execute at once,
//! later arrivals queue in arrival order up to
//! [`ServerBuilder::admission_queue_limit`], and arrivals past that are
//! refused immediately with SQLSTATE `53300` (load shedding beats
//! unbounded queueing under overload).
//!
//! # Backpressure
//!
//! Bounded on both sides of every connection. Reads stop once a maximum
//! frame's worth of bytes is buffered. Responses accumulate in an encode
//! buffer flushed with *blocking* writes whenever it passes ~64 KiB — a
//! client that stops reading stalls its own statement through the TCP
//! window and nothing else; the reactor never writes.
//!
//! # Shutdown
//!
//! [`Server::shutdown`] stops accepting (new connections are refused
//! with `57P03`), closes idle connections with `57P01`, and lets
//! statements already executing stream to completion — no in-flight
//! result is lost. Stragglers past the drain deadline are aborted through
//! the cancel path and their sockets severed. Dropping the [`Server`]
//! shuts down with a 5-second deadline.
//!
//! ```no_run
//! use std::sync::Arc;
//! use rdb_storage::Catalog;
//! use rdb_server::ServerBuilder;
//!
//! let server = ServerBuilder::new(Arc::new(Catalog::new()))
//!     .max_concurrent_queries(12)
//!     .serve()
//!     .unwrap();
//! println!("listening on {}", server.local_addr());
//! ```

pub mod conn;
pub mod protocol;
pub mod server;
pub mod stats;

pub use server::{Server, ServerBuilder};
pub use stats::{ServerShared, ServerStatsSnapshot};
