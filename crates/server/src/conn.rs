//! One client connection: startup negotiation, the simple and extended
//! query cycles, cancellation, and buffered, backpressured output.
//!
//! A connection is a state machine pumped by pool workers whenever its
//! socket turns readable (see `server.rs` for the readiness loop). Reads
//! are nonblocking — [`Conn::pump`] drains whatever the kernel has, acts
//! on every *complete* frame, and returns with partial frames left in the
//! input buffer. Writes are the opposite: responses accumulate in a
//! bounded output buffer that is flushed with *blocking* writes, so a
//! client that stops reading stalls only its own statement (TCP
//! backpressure), never the reactor.
//!
//! Error discipline follows Postgres: SQL-level failures produce an
//! `ErrorResponse` and leave the connection healthy (the extended
//! protocol additionally discards messages until `Sync`); protocol-level
//! violations (unknown tags, truncated frames, binary formats) produce an
//! `ErrorResponse` and close *this* connection — never the server.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rdb_engine::{Engine, Prepared, QueryHandle, Session, SqlOutcome, WriteKind, WriteOutcome};
use rdb_expr::Params;
use rdb_plan::PlanErrorKind;
use rdb_sql::{BindErrorKind, BoundStatement, CatalogWithFunctions, Span, SqlError, SqlErrorKind};

use crate::protocol::{self as pg, Frontend, MAX_FRAME};
use crate::stats::ServerShared;

/// Flush the output buffer once it holds this much encoded data. Bounds
/// per-connection memory: at most one batch's rows are encoded beyond the
/// threshold before the (blocking) flush runs.
pub(crate) const FLUSH_THRESHOLD: usize = 64 << 10;

/// What one pump round left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pump {
    /// No complete frame pending; hand the socket back to the reactor.
    Idle,
    /// The connection is finished (Terminate, EOF, error); drop it.
    Closed,
}

/// A statement prepared over the wire, classified at Parse time. Queries
/// go through the engine's [`Prepared`] path — same template, same
/// normalization, same recycler fingerprints as an embedded
/// `Session::prepare_sql`. DML keeps its text and re-binds at Execute
/// (the engine's write path takes values, not a prepared template).
enum Statement {
    Query {
        sql: String,
        prepared: Prepared,
        param_oids: Vec<i32>,
    },
    Dml {
        sql: String,
        param_oids: Vec<i32>,
        nparams: usize,
    },
    Empty,
}

/// A bound portal: decoded parameters against a named statement.
struct Portal {
    statement: String,
    params: Params,
}

/// What an Execute decided to do, computed while the statement map is
/// borrowed and acted on after the borrow ends.
// Transient, matched once; boxing the handle would tax the query path.
#[allow(clippy::large_enum_variant)]
enum Exec {
    Handle(QueryHandle),
    Write(WriteOutcome),
    Empty,
    Fail { sql: String, err: SqlError },
}

pub(crate) struct Conn {
    stream: TcpStream,
    pid: i32,
    secret: i32,
    shared: Arc<ServerShared>,
    engine: Arc<Engine>,
    session: Option<Session>,
    cancel: Arc<AtomicBool>,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    started: bool,
    dead: bool,
    skip_to_sync: bool,
    statements: HashMap<String, Statement>,
    portals: HashMap<String, Portal>,
}

impl Conn {
    pub(crate) fn new(
        stream: TcpStream,
        pid: i32,
        secret: i32,
        cancel: Arc<AtomicBool>,
        shared: Arc<ServerShared>,
        engine: Arc<Engine>,
    ) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            pid,
            secret,
            shared,
            engine,
            session: None,
            cancel,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            started: false,
            dead: false,
            skip_to_sync: false,
            statements: HashMap::new(),
            portals: HashMap::new(),
        })
    }

    pub(crate) fn pid(&self) -> i32 {
        self.pid
    }

    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Close an idle connection during graceful shutdown: tell the client
    /// why, then sever the socket.
    pub(crate) fn close_for_shutdown(&mut self) {
        pg::error_response(
            &mut self.outbuf,
            "57P01",
            "terminating connection due to administrator command",
            None,
            None,
        );
        self.flush();
        self.dead = true;
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// Drain readable bytes, act on every complete frame, flush responses.
    pub(crate) fn pump(&mut self) -> Pump {
        let eof = self.fill();
        while !self.dead {
            match self.next_frame() {
                Ok(None) => break,
                Ok(Some(Raw::Startup(body))) => self.on_startup(&body),
                Ok(Some(Raw::Tagged(tag, body))) => self.on_frame(tag, &body),
                Err(msg) => {
                    pg::error_response(&mut self.outbuf, "08P01", &msg, None, None);
                    self.dead = true;
                }
            }
        }
        if eof {
            self.dead = true;
        }
        self.flush();
        if self.dead {
            Pump::Closed
        } else {
            Pump::Idle
        }
    }

    /// Nonblocking read of everything available (capped at one max frame
    /// beyond what's buffered — a firehosing client waits in the kernel
    /// buffer, which is the read-side backpressure). Returns whether the
    /// peer hit EOF.
    fn fill(&mut self) -> bool {
        let mut chunk = [0u8; 16 << 10];
        while self.inbuf.len() <= MAX_FRAME + 5 {
            match self.stream.read(&mut chunk) {
                Ok(0) => return true,
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return true,
            }
        }
        false
    }

    fn next_frame(&mut self) -> Result<Option<Raw>, String> {
        if !self.started {
            if self.inbuf.len() < 4 {
                return Ok(None);
            }
            let len = i32::from_be_bytes(self.inbuf[..4].try_into().unwrap());
            if !(8..=MAX_FRAME as i32).contains(&len) {
                return Err(format!("invalid startup packet length {len}"));
            }
            let len = len as usize;
            if self.inbuf.len() < len {
                return Ok(None);
            }
            let body = self.inbuf[4..len].to_vec();
            self.inbuf.drain(..len);
            return Ok(Some(Raw::Startup(body)));
        }
        if self.inbuf.len() < 5 {
            return Ok(None);
        }
        let tag = self.inbuf[0];
        let len = i32::from_be_bytes(self.inbuf[1..5].try_into().unwrap());
        if !(4..=MAX_FRAME as i32).contains(&len) {
            return Err(format!("invalid message length {len} for tag {tag:#x}"));
        }
        let total = 1 + len as usize;
        if self.inbuf.len() < total {
            return Ok(None);
        }
        let body = self.inbuf[5..total].to_vec();
        self.inbuf.drain(..total);
        Ok(Some(Raw::Tagged(tag, body)))
    }

    // -- startup ----------------------------------------------------------

    fn on_startup(&mut self, body: &[u8]) {
        if body.len() < 4 {
            self.dead = true;
            return;
        }
        let code = i32::from_be_bytes(body[..4].try_into().unwrap());
        match code {
            pg::SSL_CODE | pg::GSSENC_CODE => {
                // Refused, not framed: a single 'N' byte, then the client
                // retries with a plain startup packet.
                self.outbuf.push(b'N');
            }
            pg::CANCEL_CODE if body.len() >= 12 => {
                let pid = i32::from_be_bytes(body[4..8].try_into().unwrap());
                let secret = i32::from_be_bytes(body[8..12].try_into().unwrap());
                self.shared.cancel(pid, secret);
                // A cancel connection carries nothing else and gets no
                // reply, matched or not.
                self.dead = true;
            }
            pg::PROTOCOL_V3 => {
                if self.shared.draining() {
                    pg::error_response(
                        &mut self.outbuf,
                        "57P03",
                        "the database system is shutting down",
                        None,
                        None,
                    );
                    self.dead = true;
                    return;
                }
                // Trust auth: the user/database startup parameters are
                // accepted as-is.
                let mut session = self.engine.session();
                // One flag, two observers: the connection's statement loop
                // checks-and-clears it between batches, and the executor's
                // operators (which only ever *load* it) wind down stuck
                // scans/morsels at their own boundaries.
                session.set_cancel_flag(Arc::clone(&self.cancel));
                self.session = Some(session);
                self.started = true;
                pg::authentication_ok(&mut self.outbuf);
                pg::parameter_status(&mut self.outbuf, "server_version", "14.0 (rdb)");
                pg::parameter_status(&mut self.outbuf, "server_encoding", "UTF8");
                pg::parameter_status(&mut self.outbuf, "client_encoding", "UTF8");
                pg::parameter_status(&mut self.outbuf, "DateStyle", "ISO, YMD");
                pg::parameter_status(&mut self.outbuf, "integer_datetimes", "on");
                pg::backend_key_data(&mut self.outbuf, self.pid, self.secret);
                pg::ready_for_query(&mut self.outbuf);
            }
            other => {
                pg::error_response(
                    &mut self.outbuf,
                    "08P01",
                    &format!("unsupported protocol version {other}"),
                    None,
                    None,
                );
                self.dead = true;
            }
        }
    }

    // -- post-startup dispatch --------------------------------------------

    fn on_frame(&mut self, tag: u8, body: &[u8]) {
        let frame = match pg::parse_frame(tag, body) {
            Ok(f) => f,
            Err(e) => {
                pg::error_response(&mut self.outbuf, "08P01", &e.to_string(), None, None);
                self.dead = true;
                return;
            }
        };
        match frame {
            Frontend::Terminate => self.dead = true,
            Frontend::Query(text) => self.simple_query(&text),
            Frontend::Sync => {
                self.skip_to_sync = false;
                pg::ready_for_query(&mut self.outbuf);
            }
            // Responses flush at the end of every pump anyway.
            Frontend::Flush => {}
            // After an extended-protocol error, everything up to Sync is
            // discarded.
            _ if self.skip_to_sync => {}
            Frontend::Parse {
                name,
                sql,
                param_oids,
            } => self.on_parse(name, &sql, param_oids),
            Frontend::Bind {
                portal,
                statement,
                params,
            } => self.on_bind(portal, statement, &params),
            Frontend::Describe { kind, name } => self.on_describe(kind, &name),
            Frontend::Execute { portal, .. } => self.on_execute(&portal),
            Frontend::Close { kind, name } => {
                if kind == b'S' {
                    self.statements.remove(&name);
                } else {
                    self.portals.remove(&name);
                }
                pg::close_complete(&mut self.outbuf);
            }
        }
    }

    // -- simple query cycle -----------------------------------------------

    fn simple_query(&mut self, text: &str) {
        let statements = pg::split_statements(text);
        if statements.is_empty() {
            pg::empty_query_response(&mut self.outbuf);
            pg::ready_for_query(&mut self.outbuf);
            return;
        }
        let statements: Vec<String> = statements.into_iter().map(str::to_string).collect();
        for sql in &statements {
            // An error aborts the rest of the query string, Postgres-style.
            if !self.run_simple(sql) {
                break;
            }
        }
        pg::ready_for_query(&mut self.outbuf);
    }

    fn run_simple(&mut self, sql: &str) -> bool {
        self.shared.queries.fetch_add(1, Ordering::Relaxed);
        self.shared.queries_active.fetch_add(1, Ordering::Relaxed);
        let outcome = self
            .session
            .as_ref()
            .expect("startup completed")
            .sql(sql, &Params::none());
        let ok = match outcome {
            Ok(SqlOutcome::Rows(handle)) => self.stream_rows(handle, true),
            Ok(SqlOutcome::Write(w)) => {
                pg::command_complete(&mut self.outbuf, &write_tag(&w));
                true
            }
            Err(e) => {
                self.sql_error(sql, &e);
                false
            }
        };
        self.shared.queries_active.fetch_sub(1, Ordering::Relaxed);
        if !ok {
            self.shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Stream a query's batches as DataRows, checking the cancel flag at
    /// every batch boundary and flushing whenever the output buffer fills.
    /// `send_desc` distinguishes the simple cycle (RowDescription precedes
    /// the rows — even for zero rows) from the extended cycle (Describe
    /// already announced it).
    fn stream_rows(&mut self, mut handle: QueryHandle, send_desc: bool) -> bool {
        if send_desc {
            pg::row_description(&mut self.outbuf, handle.schema());
        }
        let mut rows = 0u64;
        loop {
            if self.cancel.swap(false, Ordering::AcqRel) {
                // Dropping the handle mid-stream is the engine's abort
                // path: the admission slot frees, the recycler abandons
                // in-flight materializations without poisoning the cache.
                drop(handle);
                pg::error_response(
                    &mut self.outbuf,
                    "57014",
                    "canceling statement due to user request",
                    None,
                    None,
                );
                return false;
            }
            let Some(batch) = handle.next() else { break };
            rows += batch.rows() as u64;
            for row in batch.to_rows() {
                pg::data_row(&mut self.outbuf, &row);
            }
            if self.outbuf.len() >= FLUSH_THRESHOLD && !self.flush() {
                return false;
            }
        }
        // The executor observes the same flag at batch/morsel boundaries
        // and may have ended the stream early itself; a truncated result
        // must not masquerade as a completed SELECT.
        if self.cancel.swap(false, Ordering::AcqRel) {
            pg::error_response(
                &mut self.outbuf,
                "57014",
                "canceling statement due to user request",
                None,
                None,
            );
            return false;
        }
        pg::command_complete(&mut self.outbuf, &format!("SELECT {rows}"));
        true
    }

    // -- extended query cycle ---------------------------------------------

    fn on_parse(&mut self, name: String, sql: &str, param_oids: Vec<i32>) {
        match self.classify(sql, param_oids) {
            Ok(stmt) => {
                self.statements.insert(name, stmt);
                pg::parse_complete(&mut self.outbuf);
            }
            Err(e) => {
                self.sql_error(sql, &e);
                self.fail_extended();
            }
        }
    }

    /// Compile the statement text once at Parse. Queries become engine
    /// [`Prepared`] templates — wire prepared statements land on the same
    /// recycler fingerprints as embedded ones.
    fn classify(&self, sql: &str, param_oids: Vec<i32>) -> Result<Statement, SqlError> {
        let text = sql.trim();
        if text.is_empty() {
            return Ok(Statement::Empty);
        }
        let provider = CatalogWithFunctions {
            catalog: self.engine.catalog().as_ref(),
            functions: self.engine.functions().as_ref(),
        };
        match rdb_sql::compile(text, &provider)? {
            BoundStatement::Query(plan) => {
                let prepared = self
                    .session
                    .as_ref()
                    .expect("startup completed")
                    .prepare(&plan)
                    .map_err(|pe| SqlError::from_plan(Span::new(0, text.len()), pe))?;
                Ok(Statement::Query {
                    sql: text.to_string(),
                    prepared,
                    param_oids,
                })
            }
            BoundStatement::Insert { .. } | BoundStatement::Delete { .. } => Ok(Statement::Dml {
                sql: text.to_string(),
                nparams: positional_param_count(text),
                param_oids,
            }),
        }
    }

    fn on_bind(&mut self, portal: String, statement: String, raw: &[Option<Vec<u8>>]) {
        let Some(stmt) = self.statements.get(&statement) else {
            pg::error_response(
                &mut self.outbuf,
                "26000",
                &format!("prepared statement \"{statement}\" does not exist"),
                None,
                None,
            );
            self.fail_extended();
            return;
        };
        let (names, oids): (Vec<String>, &[i32]) = match stmt {
            Statement::Query {
                prepared,
                param_oids,
                ..
            } => (prepared.param_names().to_vec(), param_oids),
            Statement::Dml {
                nparams,
                param_oids,
                ..
            } => ((1..=*nparams).map(|i| i.to_string()).collect(), param_oids),
            Statement::Empty => (Vec::new(), &[]),
        };
        if raw.len() != names.len() {
            let (got, want) = (raw.len(), names.len());
            pg::error_response(
                &mut self.outbuf,
                "08P01",
                &format!(
                    "bind message supplies {got} parameters, \
                     but prepared statement requires {want}"
                ),
                None,
                None,
            );
            self.fail_extended();
            return;
        }
        let mut params = Params::new();
        for (i, value) in raw.iter().enumerate() {
            let oid = oids.get(i).copied().unwrap_or(0);
            match pg::decode_param(oid, value.as_deref()) {
                Ok(v) => params = params.set(names[i].clone(), v),
                Err(e) => {
                    pg::error_response(&mut self.outbuf, "22P02", &e.to_string(), None, None);
                    self.fail_extended();
                    return;
                }
            }
        }
        self.portals.insert(portal, Portal { statement, params });
        pg::bind_complete(&mut self.outbuf);
    }

    fn on_describe(&mut self, kind: u8, name: &str) {
        if kind == b'S' {
            let Some(stmt) = self.statements.get(name) else {
                pg::error_response(
                    &mut self.outbuf,
                    "26000",
                    &format!("prepared statement \"{name}\" does not exist"),
                    None,
                    None,
                );
                self.fail_extended();
                return;
            };
            match stmt {
                Statement::Query {
                    prepared,
                    param_oids,
                    ..
                } => {
                    let n = prepared.param_names().len();
                    let oids: Vec<i32> = (0..n)
                        .map(|i| param_oids.get(i).copied().unwrap_or(0))
                        .collect();
                    pg::parameter_description(&mut self.outbuf, &oids);
                    // A parameterized template cannot derive its schema
                    // before binding; the portal Describe can.
                    match prepared.template().schema(self.engine.catalog()) {
                        Ok(schema) => pg::row_description(&mut self.outbuf, &schema),
                        Err(_) => pg::no_data(&mut self.outbuf),
                    }
                }
                Statement::Dml {
                    nparams,
                    param_oids,
                    ..
                } => {
                    let oids: Vec<i32> = (0..*nparams)
                        .map(|i| param_oids.get(i).copied().unwrap_or(0))
                        .collect();
                    pg::parameter_description(&mut self.outbuf, &oids);
                    pg::no_data(&mut self.outbuf);
                }
                Statement::Empty => {
                    pg::parameter_description(&mut self.outbuf, &[]);
                    pg::no_data(&mut self.outbuf);
                }
            }
            return;
        }
        let Some(portal) = self.portals.get(name) else {
            pg::error_response(
                &mut self.outbuf,
                "34000",
                &format!("portal \"{name}\" does not exist"),
                None,
                None,
            );
            self.fail_extended();
            return;
        };
        match self.statements.get(&portal.statement) {
            Some(Statement::Query { prepared, .. }) => {
                let schema = prepared
                    .template()
                    .substitute_params(&portal.params)
                    .and_then(|p| p.schema(self.engine.catalog()));
                match schema {
                    Ok(s) => pg::row_description(&mut self.outbuf, &s),
                    Err(_) => pg::no_data(&mut self.outbuf),
                }
            }
            _ => pg::no_data(&mut self.outbuf),
        }
    }

    fn on_execute(&mut self, portal: &str) {
        let Some(p) = self.portals.get(portal) else {
            pg::error_response(
                &mut self.outbuf,
                "34000",
                &format!("portal \"{portal}\" does not exist"),
                None,
                None,
            );
            self.fail_extended();
            return;
        };
        self.shared.queries.fetch_add(1, Ordering::Relaxed);
        self.shared.queries_active.fetch_add(1, Ordering::Relaxed);
        let params = p.params.clone();
        // Decide while the statement map is borrowed; act afterwards (the
        // produced handle owns everything it needs).
        let exec = match self.statements.get(&p.statement) {
            None => Exec::Fail {
                sql: String::new(),
                err: SqlError::bind(
                    Span::default(),
                    format!("prepared statement \"{}\" does not exist", p.statement),
                ),
            },
            Some(Statement::Empty) => Exec::Empty,
            Some(Statement::Query { sql, prepared, .. }) => match prepared.execute(&params) {
                Ok(handle) => Exec::Handle(handle),
                Err(pe) => Exec::Fail {
                    sql: sql.clone(),
                    err: SqlError::from_plan(Span::new(0, sql.len()), pe),
                },
            },
            Some(Statement::Dml { sql, .. }) => {
                match self
                    .session
                    .as_ref()
                    .expect("startup completed")
                    .sql(sql, &params)
                {
                    Ok(SqlOutcome::Write(w)) => Exec::Write(w),
                    Ok(SqlOutcome::Rows(handle)) => Exec::Handle(handle),
                    Err(e) => Exec::Fail {
                        sql: sql.clone(),
                        err: e,
                    },
                }
            }
        };
        let ok = match exec {
            Exec::Empty => {
                pg::empty_query_response(&mut self.outbuf);
                true
            }
            Exec::Write(w) => {
                pg::command_complete(&mut self.outbuf, &write_tag(&w));
                true
            }
            // Extended protocol: Describe announced the row shape; Execute
            // sends only the data.
            Exec::Handle(handle) => self.stream_rows(handle, false),
            Exec::Fail { sql, err } => {
                self.sql_error(&sql, &err);
                false
            }
        };
        self.shared.queries_active.fetch_sub(1, Ordering::Relaxed);
        if !ok {
            self.fail_extended();
        }
    }

    /// Record an extended-protocol statement failure: count it and discard
    /// frames until the client's Sync.
    fn fail_extended(&mut self) {
        self.shared.errors.fetch_add(1, Ordering::Relaxed);
        self.skip_to_sync = true;
    }

    // -- errors and output ------------------------------------------------

    /// Encode a SQL error with its SQLSTATE, the 1-based character
    /// position of the offending span, and the caret-rendered report as
    /// detail.
    fn sql_error(&mut self, sql: &str, e: &SqlError) {
        let position = (!sql.is_empty()).then(|| {
            let start = e.span.start.min(sql.len());
            sql[..start].chars().count() + 1
        });
        let detail = (!sql.is_empty()).then(|| e.render(sql));
        pg::error_response(
            &mut self.outbuf,
            sqlstate(e),
            &e.message,
            position,
            detail.as_deref(),
        );
    }

    /// Blocking flush of the output buffer — the write-side backpressure
    /// point. A dead peer surfaces here and closes the connection.
    fn flush(&mut self) -> bool {
        if self.outbuf.is_empty() {
            return !self.dead;
        }
        let buf = std::mem::take(&mut self.outbuf);
        let _ = self.stream.set_nonblocking(false);
        let ok = self.stream.write_all(&buf).is_ok() && self.stream.flush().is_ok();
        let _ = self.stream.set_nonblocking(true);
        if !ok {
            self.dead = true;
        }
        ok
    }
}

/// A raw frame as cut from the input buffer.
enum Raw {
    Startup(Vec<u8>),
    Tagged(u8, Vec<u8>),
}

/// CommandComplete tag for a committed write, keyed on the engine's
/// [`WriteKind`] (`INSERT 0 n` / `DELETE n` — the shapes drivers parse).
fn write_tag(w: &WriteOutcome) -> String {
    match w.kind {
        WriteKind::Append => format!("INSERT 0 {}", w.rows_affected),
        WriteKind::Delete => format!("DELETE {}", w.rows_affected),
        WriteKind::Replace => format!("REPLACE {}", w.rows_affected),
    }
}

/// SQLSTATE for an error from the SQL frontend or the engine. Every arm
/// dispatches on structured kinds ([`BindErrorKind`], [`PlanErrorKind`]) —
/// never on message text, which is free to change without moving the
/// SQLSTATE.
fn sqlstate(e: &SqlError) -> &'static str {
    match &e.kind {
        SqlErrorKind::Bind(b) => match b {
            BindErrorKind::UnknownColumn => "42703",
            BindErrorKind::UnknownTable => "42P01",
            BindErrorKind::AmbiguousColumn => "42702",
            BindErrorKind::UnknownAggregate => "42883",
            BindErrorKind::Other => "42601",
        },
        SqlErrorKind::Lex | SqlErrorKind::Parse => "42601",
        SqlErrorKind::Plan(p) => match p {
            PlanErrorKind::UnknownTable { .. } => "42P01",
            PlanErrorKind::UnknownColumn { .. } => "42703",
            PlanErrorKind::UnknownFunction { .. } => "42883",
            PlanErrorKind::TypeMismatch { .. } => "42804",
            PlanErrorKind::ArityMismatch { .. } => "42601",
            PlanErrorKind::UnboundParameter { .. } => "08P01",
            PlanErrorKind::Saturated { .. } => "53300",
            PlanErrorKind::ShuttingDown => "57P01",
            // read_only_sql_transaction: the WAL failed and the engine
            // degraded to read-only; reads keep serving.
            PlanErrorKind::ReadOnly => "25006",
            PlanErrorKind::Other { .. } => "XX000",
        },
    }
}

/// Highest `$N` positional parameter in `sql` (outside single-quoted
/// strings); the parameter count of a DML statement.
fn positional_param_count(sql: &str) -> usize {
    let bytes = sql.as_bytes();
    let mut max = 0usize;
    let mut in_str = false;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' => in_str = !in_str,
            b'$' if !in_str => {
                let mut j = i + 1;
                let mut n = 0usize;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    n = n * 10 + (bytes[j] - b'0') as usize;
                    j += 1;
                }
                if j > i + 1 {
                    max = max.max(n);
                }
                i = j;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positional_params_counted_outside_strings() {
        assert_eq!(positional_param_count("INSERT INTO t VALUES ($1, $2)"), 2);
        assert_eq!(positional_param_count("DELETE FROM t WHERE k = $3"), 3);
        assert_eq!(positional_param_count("SELECT '$9'"), 0);
        assert_eq!(positional_param_count("SELECT 1"), 0);
    }

    #[test]
    fn write_tags_distinguish_insert_and_delete() {
        let ins = WriteOutcome {
            kind: WriteKind::Append,
            table: "t".into(),
            epoch: 1,
            rows_affected: 3,
            invalidated: Vec::new(),
            repaired: 0,
            repair_fallbacks: 0,
            deltas_applied: 0,
        };
        let del = WriteOutcome {
            kind: WriteKind::Delete,
            table: "t".into(),
            epoch: 2,
            rows_affected: 7,
            invalidated: Vec::new(),
            repaired: 0,
            repair_fallbacks: 0,
            deltas_applied: 0,
        };
        assert_eq!(write_tag(&ins), "INSERT 0 3");
        assert_eq!(write_tag(&del), "DELETE 7");
    }

    #[test]
    fn sqlstates_map_structured_kinds() {
        let err = |kind| SqlError {
            kind,
            span: rdb_sql::Span::new(0, 1),
            message: String::new(),
        };
        assert_eq!(
            sqlstate(&err(SqlErrorKind::Plan(PlanErrorKind::UnknownTable {
                table: "x".into()
            }))),
            "42P01"
        );
        assert_eq!(sqlstate(&err(SqlErrorKind::Parse)), "42601");
        assert_eq!(
            sqlstate(&err(SqlErrorKind::Plan(PlanErrorKind::ShuttingDown))),
            "57P01"
        );
        // Bind errors classify structurally: the message text is
        // deliberately nonsense to prove nothing string-matches it.
        let gibberish = "zxqv 9000";
        for (kind, state) in [
            (BindErrorKind::UnknownColumn, "42703"),
            (BindErrorKind::UnknownTable, "42P01"),
            (BindErrorKind::AmbiguousColumn, "42702"),
            (BindErrorKind::UnknownAggregate, "42883"),
            (BindErrorKind::Other, "42601"),
        ] {
            let e = SqlError::bind_as(rdb_sql::Span::new(0, 4), kind, gibberish);
            assert_eq!(sqlstate(&e), state, "{kind:?}");
        }
    }
}
