//! Server-wide statistics and the `rdb_stats()` table function.
//!
//! One [`ServerShared`] instance is threaded through the listener, the
//! reactor, and every connection; its counters are lock-free atomics so
//! the hot paths never serialize on a stats mutex. The `rdb_stats()`
//! table function renders a point-in-time snapshot as a two-column
//! relation — `SELECT * FROM rdb_stats()` works over any connection, and
//! because the function is declared *volatile* the engine never routes it
//! through the recycler (a cached stats result would be stale by
//! definition).

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use parking_lot::Mutex;
use rdb_engine::Engine;
use rdb_exec::TableFunction;
use rdb_vector::{Batch, Column, DataType, Schema, Value};

/// Server lifecycle phase (stored in [`ServerShared::state`]).
pub const STATE_RUNNING: u8 = 0;
/// Draining: no new connections, in-flight statements finish.
pub const STATE_DRAINING: u8 = 1;
/// Stopped: reactor and listener have exited.
pub const STATE_STOPPED: u8 = 2;

/// A connection's cancel handle: the backend secret plus the flag the
/// statement loop polls between batches, and a socket clone so a blocked
/// write can be severed from outside.
pub(crate) struct CancelEntry {
    pub secret: i32,
    pub flag: Arc<AtomicBool>,
    pub stream: Option<TcpStream>,
}

/// State shared by every thread of one server: lifecycle, counters, the
/// cancel-key registry, and (once built) the engine.
pub struct ServerShared {
    /// Filled right after the engine is constructed (the `rdb_stats()`
    /// function is registered *before* the engine exists, so it reaches
    /// the engine through here).
    pub(crate) engine: OnceLock<Arc<Engine>>,
    /// Lifecycle phase: RUNNING → DRAINING → STOPPED.
    pub(crate) state: AtomicU8,
    /// Currently open connections.
    pub(crate) connections: AtomicU64,
    /// Connections ever accepted.
    pub(crate) connections_total: AtomicU64,
    /// Statements executed (queries + DML + failed).
    pub(crate) queries: AtomicU64,
    /// Statements currently executing or streaming.
    pub(crate) queries_active: AtomicU64,
    /// Statements that returned an error to the client.
    pub(crate) errors: AtomicU64,
    /// CancelRequests that matched a live backend.
    pub(crate) cancels: AtomicU64,
    /// pid → cancel handle for every live connection.
    pub(crate) cancel_registry: Mutex<HashMap<i32, CancelEntry>>,
}

impl Default for ServerShared {
    fn default() -> Self {
        ServerShared {
            engine: OnceLock::new(),
            state: AtomicU8::new(STATE_RUNNING),
            connections: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            queries_active: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            cancels: AtomicU64::new(0),
            cancel_registry: Mutex::new(HashMap::new()),
        }
    }
}

impl ServerShared {
    pub(crate) fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    pub(crate) fn draining(&self) -> bool {
        self.state() != STATE_RUNNING
    }

    /// Handle a CancelRequest: if `(pid, secret)` matches a live backend,
    /// set its cancel flag. Never reports success or failure to the
    /// requester (per protocol).
    pub(crate) fn cancel(&self, pid: i32, secret: i32) {
        let reg = self.cancel_registry.lock();
        if let Some(e) = reg.get(&pid) {
            if e.secret == secret {
                e.flag.store(true, Ordering::Release);
                self.cancels.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Force-abort every live connection: set all cancel flags and sever
    /// the sockets, so even a statement blocked on a slow client's TCP
    /// window unblocks (the drain-deadline path of graceful shutdown).
    pub(crate) fn abort_all(&self) {
        let reg = self.cancel_registry.lock();
        for e in reg.values() {
            e.flag.store(true, Ordering::Release);
            if let Some(s) = &e.stream {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Point-in-time snapshot of everything `rdb_stats()` reports.
    pub fn snapshot(&self) -> ServerStatsSnapshot {
        #[derive(Default)]
        struct EngineCounters {
            in_flight: u64,
            queued: u64,
            hits: u64,
            lookups: u64,
            cache_entries: u64,
            cache_bytes: u64,
            invalidations: u64,
            hash_build_hits: u64,
            agg_table_hits: u64,
            repaired_hits: u64,
            repair_fallbacks: u64,
            deltas_applied: u64,
            subscriptions_active: u64,
        }
        let ec = match self.engine.get() {
            Some(engine) => {
                let adm = engine.admission();
                let mut ec = EngineCounters {
                    in_flight: adm.in_flight as u64,
                    queued: adm.queued as u64,
                    ..EngineCounters::default()
                };
                ec.subscriptions_active = engine.subscriptions_active() as u64;
                if let Some(r) = engine.recycler() {
                    ec.hits = r.stats.reuses.load(Ordering::Relaxed)
                        + r.stats.subsumption_reuses.load(Ordering::Relaxed);
                    ec.lookups = r.stats.queries.load(Ordering::Relaxed);
                    ec.cache_entries = r.cache_len() as u64;
                    ec.cache_bytes = r.cache_used();
                    ec.invalidations = r.stats.invalidations.load(Ordering::Relaxed);
                    ec.hash_build_hits = r.stats.hash_build_hits.load(Ordering::Relaxed);
                    ec.agg_table_hits = r.stats.agg_table_hits.load(Ordering::Relaxed);
                    ec.repaired_hits = r.stats.repaired.load(Ordering::Relaxed);
                    ec.repair_fallbacks = r.stats.repair_fallbacks.load(Ordering::Relaxed);
                    ec.deltas_applied = r.stats.deltas_applied.load(Ordering::Relaxed);
                }
                ec
            }
            None => EngineCounters::default(),
        };
        let durability = self
            .engine
            .get()
            .map(|e| e.durability_stats())
            .unwrap_or_default();
        ServerStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            connections_total: self.connections_total.load(Ordering::Relaxed),
            statements: self.queries.load(Ordering::Relaxed),
            statements_active: self.queries_active.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cancels: self.cancels.load(Ordering::Relaxed),
            queries_in_flight: ec.in_flight,
            queue_depth: ec.queued,
            recycler_hits: ec.hits,
            recycler_lookups: ec.lookups,
            cache_entries: ec.cache_entries,
            cache_bytes: ec.cache_bytes,
            invalidations: ec.invalidations,
            hash_build_hits: ec.hash_build_hits,
            agg_table_hits: ec.agg_table_hits,
            repaired_hits: ec.repaired_hits,
            repair_fallbacks: ec.repair_fallbacks,
            deltas_applied: ec.deltas_applied,
            subscriptions_active: ec.subscriptions_active,
            draining: self.draining(),
            wal_bytes: durability.wal_bytes,
            last_checkpoint_epoch: durability.last_checkpoint_epoch,
            recovery_warm_hits: durability.recovery_warm_hits,
            read_only: durability.read_only,
        }
    }
}

/// Plain-value snapshot of server statistics (also the row set of
/// `rdb_stats()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Currently open connections.
    pub connections: u64,
    /// Connections ever accepted.
    pub connections_total: u64,
    /// Statements executed.
    pub statements: u64,
    /// Statements currently executing or streaming.
    pub statements_active: u64,
    /// Statements that errored.
    pub errors: u64,
    /// Matched CancelRequests.
    pub cancels: u64,
    /// Queries holding an engine admission slot right now.
    pub queries_in_flight: u64,
    /// Queries waiting in the engine's admission queue.
    pub queue_depth: u64,
    /// Recycler reuses (exact + subsumption).
    pub recycler_hits: u64,
    /// Recycler lookups (prepared queries).
    pub recycler_lookups: u64,
    /// Cached results.
    pub cache_entries: u64,
    /// Bytes in the recycler cache.
    pub cache_bytes: u64,
    /// Cache entries evicted by DML.
    pub invalidations: u64,
    /// Queries served a cached hash-join build side (operator-state
    /// artifact) instead of rebuilding it.
    pub hash_build_hits: u64,
    /// Queries served a cached aggregate table instead of re-aggregating.
    pub agg_table_hits: u64,
    /// Cache entries repaired in place from DML deltas instead of being
    /// evicted.
    pub repaired_hits: u64,
    /// Repair candidates that fell back to eviction.
    pub repair_fallbacks: u64,
    /// Non-empty DML deltas routed through the repair walk.
    pub deltas_applied: u64,
    /// Live query subscriptions registered on the engine right now.
    pub subscriptions_active: u64,
    /// Whether the server is draining.
    pub draining: bool,
    /// Bytes across all live WAL segments (0 without a data directory).
    pub wal_bytes: u64,
    /// Highest epoch covered by the last checkpoint.
    pub last_checkpoint_epoch: u64,
    /// Cache entries re-materialized from persisted lineage at boot.
    pub recovery_warm_hits: u64,
    /// Whether the engine degraded to read-only (WAL failure).
    pub read_only: bool,
}

impl ServerStatsSnapshot {
    /// Recycler hit rate over all lookups, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.recycler_lookups == 0 {
            0.0
        } else {
            self.recycler_hits as f64 / self.recycler_lookups as f64
        }
    }

    fn rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("connections", self.connections as f64),
            ("connections_total", self.connections_total as f64),
            ("statements", self.statements as f64),
            ("statements_active", self.statements_active as f64),
            ("errors", self.errors as f64),
            ("cancels", self.cancels as f64),
            ("queries_in_flight", self.queries_in_flight as f64),
            ("queue_depth", self.queue_depth as f64),
            ("recycler_hits", self.recycler_hits as f64),
            ("recycler_lookups", self.recycler_lookups as f64),
            ("recycler_hit_rate", self.hit_rate()),
            ("cache_entries", self.cache_entries as f64),
            ("cache_bytes", self.cache_bytes as f64),
            ("invalidations", self.invalidations as f64),
            ("hash_build_hits", self.hash_build_hits as f64),
            ("agg_table_hits", self.agg_table_hits as f64),
            ("repaired_hits", self.repaired_hits as f64),
            ("repair_fallbacks", self.repair_fallbacks as f64),
            ("deltas_applied", self.deltas_applied as f64),
            ("subscriptions_active", self.subscriptions_active as f64),
            ("draining", if self.draining { 1.0 } else { 0.0 }),
            ("wal_bytes", self.wal_bytes as f64),
            ("last_checkpoint_epoch", self.last_checkpoint_epoch as f64),
            ("recovery_warm_hits", self.recovery_warm_hits as f64),
            ("read_only", if self.read_only { 1.0 } else { 0.0 }),
        ]
    }
}

/// The `rdb_stats()` table function: `(metric str, value float)` rows.
/// Declared volatile, so results bypass the recycler entirely.
pub struct StatsFn {
    pub(crate) shared: Arc<ServerShared>,
}

impl TableFunction for StatsFn {
    fn schema(&self, _args: &[Value]) -> Schema {
        Schema::from_pairs([("metric", DataType::Str), ("value", DataType::Float)])
    }

    fn execute(&self, _args: &[Value], work: &mut u64) -> Vec<Batch> {
        let rows = self.shared.snapshot().rows();
        *work += rows.len() as u64;
        let (names, values): (Vec<&str>, Vec<f64>) = rows.into_iter().unzip();
        vec![Batch::new(vec![
            Column::from_strs(names),
            Column::from_floats(values),
        ])]
    }

    fn volatile(&self) -> bool {
        true
    }
}

/// Wait until `pred` holds or `timeout` elapses, polling gently.
pub(crate) fn wait_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let start = std::time::Instant::now();
    while start.elapsed() < timeout {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    pred()
}
