//! Postgres wire protocol v3: message framing, backend encoders, frontend
//! decoders.
//!
//! Only the subset the serving layer needs is implemented — startup
//! (including `SSLRequest`/`GSSENCRequest` refusal and `CancelRequest`),
//! the simple query cycle, the extended Parse/Bind/Describe/Execute/Sync
//! cycle with text-format parameters and results, and error reporting with
//! SQLSTATE codes and statement positions. Everything is plain
//! `Vec<u8>`-level encoding over `std::net`; no external dependencies.

use rdb_vector::{format_date, DataType, Schema, Value};

/// Protocol version 3.0 in a startup packet.
pub const PROTOCOL_V3: i32 = 196608;
/// `CancelRequest` magic code.
pub const CANCEL_CODE: i32 = 80877102;
/// `SSLRequest` magic code (refused with `'N'`).
pub const SSL_CODE: i32 = 80877103;
/// `GSSENCRequest` magic code (refused with `'N'`).
pub const GSSENC_CODE: i32 = 80877104;

/// Upper bound on a single frontend message body; larger length prefixes
/// are treated as a protocol violation (they are far more likely garbage
/// than a legitimate 64 MiB statement).
pub const MAX_FRAME: usize = 64 << 20;

/// A malformed frontend message: connection-fatal, but never
/// server-fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol violation: {}", self.0)
    }
}

/// Postgres type OID for a column type (the ones psql and drivers key
/// their text decoding on).
pub fn type_oid(dtype: DataType) -> i32 {
    match dtype {
        DataType::Bool => 16,   // bool
        DataType::Int => 20,    // int8
        DataType::Float => 701, // float8
        DataType::Str => 25,    // text
        DataType::Date => 1082, // date
    }
}

/// Wire size of a type (`-1` = variable length).
pub fn type_len(dtype: DataType) -> i16 {
    match dtype {
        DataType::Bool => 1,
        DataType::Int | DataType::Float => 8,
        DataType::Str => -1,
        DataType::Date => 4,
    }
}

/// Text-format rendering of one value; `None` encodes SQL NULL.
pub fn text_value(v: &Value) -> Option<String> {
    match v {
        Value::Null => None,
        Value::Bool(b) => Some(if *b { "t" } else { "f" }.to_string()),
        Value::Int(i) => Some(i.to_string()),
        Value::Float(f) => Some(if f.is_nan() {
            "NaN".to_string()
        } else if f.is_infinite() {
            (if *f > 0.0 { "Infinity" } else { "-Infinity" }).to_string()
        } else {
            format!("{f}")
        }),
        Value::Str(s) => Some(s.to_string()),
        Value::Date(d) => Some(format_date(*d)),
    }
}

/// Decode one text-format parameter into a [`Value`], guided by the OID
/// the client declared at Parse time (0 = unspecified → inferred from the
/// literal's shape: integer, float, `YYYY-MM-DD` date, bool, else text).
pub fn decode_param(oid: i32, raw: Option<&[u8]>) -> Result<Value, ProtoError> {
    let Some(raw) = raw else {
        return Ok(Value::Null);
    };
    let text = std::str::from_utf8(raw)
        .map_err(|_| ProtoError("parameter value is not valid UTF-8".into()))?;
    let parse_err = |ty: &str| ProtoError(format!("cannot decode '{text}' as {ty}"));
    match oid {
        16 => match text {
            "t" | "true" | "TRUE" | "1" => Ok(Value::Bool(true)),
            "f" | "false" | "FALSE" | "0" => Ok(Value::Bool(false)),
            _ => Err(parse_err("bool")),
        },
        20 | 21 | 23 => text
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| parse_err("int")),
        700 | 701 | 1700 => text
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| parse_err("float")),
        1082 => parse_date(text).map(Value::Date).ok_or(parse_err("date")),
        25 | 1043 => Ok(Value::str(text)),
        0 => Ok(infer_value(text)),
        other => Err(ProtoError(format!(
            "unsupported parameter type OID {other}"
        ))),
    }
}

/// Shape-based inference for parameters bound without a declared type.
fn infer_value(text: &str) -> Value {
    if let Ok(i) = text.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = text.parse::<f64>() {
        return Value::Float(f);
    }
    if let Some(d) = parse_date(text) {
        return Value::Date(d);
    }
    match text {
        "true" | "TRUE" => Value::Bool(true),
        "false" | "FALSE" => Value::Bool(false),
        _ => Value::str(text),
    }
}

/// `YYYY-MM-DD` → days since epoch.
pub fn parse_date(text: &str) -> Option<i32> {
    let mut it = text.split('-');
    let y: i32 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(rdb_vector::date_from_ymd(y, m, d))
}

// ---------------------------------------------------------------------------
// Backend (server → client) encoding
// ---------------------------------------------------------------------------

fn put_i16(buf: &mut Vec<u8>, v: i16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_cstr(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(s.as_bytes());
    buf.push(0);
}

/// Append one tagged backend message to `out`; `body` writes the payload.
pub fn msg(out: &mut Vec<u8>, tag: u8, body: impl FnOnce(&mut Vec<u8>)) {
    out.push(tag);
    let len_at = out.len();
    put_i32(out, 0);
    body(out);
    let len = (out.len() - len_at) as i32;
    out[len_at..len_at + 4].copy_from_slice(&len.to_be_bytes());
}

/// `AuthenticationOk`.
pub fn authentication_ok(out: &mut Vec<u8>) {
    msg(out, b'R', |b| put_i32(b, 0));
}

/// `ParameterStatus(name, value)`.
pub fn parameter_status(out: &mut Vec<u8>, name: &str, value: &str) {
    msg(out, b'S', |b| {
        put_cstr(b, name);
        put_cstr(b, value);
    });
}

/// `BackendKeyData(pid, secret)` — the cancel key for this connection.
pub fn backend_key_data(out: &mut Vec<u8>, pid: i32, secret: i32) {
    msg(out, b'K', |b| {
        put_i32(b, pid);
        put_i32(b, secret);
    });
}

/// `ReadyForQuery` (always idle: the engine has no wire-level
/// transactions).
pub fn ready_for_query(out: &mut Vec<u8>) {
    msg(out, b'Z', |b| b.push(b'I'));
}

/// `RowDescription` from a result schema, all columns text-format.
pub fn row_description(out: &mut Vec<u8>, schema: &Schema) {
    msg(out, b'T', |b| {
        put_i16(b, schema.fields().len() as i16);
        for f in schema.fields() {
            put_cstr(b, &f.name);
            put_i32(b, 0); // table OID: not a base column
            put_i16(b, 0); // attribute number
            put_i32(b, type_oid(f.dtype));
            put_i16(b, type_len(f.dtype));
            put_i32(b, -1); // typmod
            put_i16(b, 0); // text format
        }
    });
}

/// One `DataRow` in text format.
pub fn data_row(out: &mut Vec<u8>, row: &[Value]) {
    msg(out, b'D', |b| {
        put_i16(b, row.len() as i16);
        for v in row {
            match text_value(v) {
                None => put_i32(b, -1),
                Some(text) => {
                    put_i32(b, text.len() as i32);
                    b.extend_from_slice(text.as_bytes());
                }
            }
        }
    });
}

/// `CommandComplete` with the given tag (`SELECT 4`, `INSERT 0 2`, …).
pub fn command_complete(out: &mut Vec<u8>, tag: &str) {
    msg(out, b'C', |b| put_cstr(b, tag));
}

/// `EmptyQueryResponse` (the statement was empty text).
pub fn empty_query_response(out: &mut Vec<u8>) {
    msg(out, b'I', |b| {
        let _ = b;
    });
}

/// `ParseComplete`.
pub fn parse_complete(out: &mut Vec<u8>) {
    msg(out, b'1', |_| {});
}

/// `BindComplete`.
pub fn bind_complete(out: &mut Vec<u8>) {
    msg(out, b'2', |_| {});
}

/// `CloseComplete`.
pub fn close_complete(out: &mut Vec<u8>) {
    msg(out, b'3', |_| {});
}

/// `NoData` (Describe of a statement producing no row set).
pub fn no_data(out: &mut Vec<u8>) {
    msg(out, b'n', |_| {});
}

/// `ParameterDescription` with the given OIDs.
pub fn parameter_description(out: &mut Vec<u8>, oids: &[i32]) {
    msg(out, b't', |b| {
        put_i16(b, oids.len() as i16);
        for &oid in oids {
            put_i32(b, oid);
        }
    });
}

/// `ErrorResponse`. `position` is the 1-based *character* offset into the
/// statement text (the span start of a [`rdb_sql::SqlError`]); `detail`
/// carries the caret-rendered report when available.
pub fn error_response(
    out: &mut Vec<u8>,
    code: &str,
    message: &str,
    position: Option<usize>,
    detail: Option<&str>,
) {
    msg(out, b'E', |b| {
        b.push(b'S');
        put_cstr(b, "ERROR");
        b.push(b'V');
        put_cstr(b, "ERROR");
        b.push(b'C');
        put_cstr(b, code);
        b.push(b'M');
        put_cstr(b, message);
        if let Some(p) = position {
            b.push(b'P');
            put_cstr(b, &p.to_string());
        }
        if let Some(d) = detail {
            b.push(b'D');
            put_cstr(b, d);
        }
        b.push(0);
    });
}

// ---------------------------------------------------------------------------
// Frontend (client → server) decoding
// ---------------------------------------------------------------------------

/// A decoded post-startup frontend message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frontend {
    /// Simple query: one or more `;`-separated statements.
    Query(String),
    /// Extended: parse `sql` as prepared statement `name`.
    Parse {
        /// Statement name (`""` = the unnamed statement).
        name: String,
        /// Statement text.
        sql: String,
        /// Parameter type OIDs the client pre-declared (may be shorter
        /// than the statement's parameter list; missing entries are
        /// inferred at Bind).
        param_oids: Vec<i32>,
    },
    /// Extended: bind parameter values to a portal.
    Bind {
        /// Portal name (`""` = the unnamed portal).
        portal: String,
        /// Source prepared statement.
        statement: String,
        /// Raw parameter values (`None` = NULL); text format only.
        params: Vec<Option<Vec<u8>>>,
    },
    /// Extended: describe a statement (`'S'`) or portal (`'P'`).
    Describe {
        /// `b'S'` or `b'P'`.
        kind: u8,
        /// Statement/portal name.
        name: String,
    },
    /// Extended: run a portal. `max_rows` is accepted but not used for
    /// paging — the portal always runs to completion.
    Execute {
        /// Portal name.
        portal: String,
        /// Row-count hint (ignored; 0 = all).
        max_rows: i32,
    },
    /// Extended: close a statement (`'S'`) or portal (`'P'`).
    Close {
        /// `b'S'` or `b'P'`.
        kind: u8,
        /// Statement/portal name.
        name: String,
    },
    /// End of an extended-protocol batch.
    Sync,
    /// Flush buffered responses.
    Flush,
    /// Orderly disconnect.
    Terminate,
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn i16(&mut self) -> Result<i16, ProtoError> {
        let b = self
            .take(2)
            .ok_or_else(|| ProtoError("truncated int16".into()))?;
        Ok(i16::from_be_bytes([b[0], b[1]]))
    }

    fn i32(&mut self) -> Result<i32, ProtoError> {
        let b = self
            .take(4)
            .ok_or_else(|| ProtoError("truncated int32".into()))?;
        Ok(i32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.at + n > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Some(s)
    }

    fn cstr(&mut self) -> Result<String, ProtoError> {
        let rest = &self.buf[self.at..];
        let nul = rest
            .iter()
            .position(|&b| b == 0)
            .ok_or_else(|| ProtoError("unterminated string".into()))?;
        let s = std::str::from_utf8(&rest[..nul])
            .map_err(|_| ProtoError("string is not valid UTF-8".into()))?;
        self.at += nul + 1;
        Ok(s.to_string())
    }
}

/// Decode the body of one tagged frontend message.
pub fn parse_frame(tag: u8, body: &[u8]) -> Result<Frontend, ProtoError> {
    let mut r = Reader { buf: body, at: 0 };
    match tag {
        b'Q' => Ok(Frontend::Query(r.cstr()?)),
        b'P' => {
            let name = r.cstr()?;
            let sql = r.cstr()?;
            let n = r.i16()?;
            if n < 0 {
                return Err(ProtoError("negative parameter-type count".into()));
            }
            let mut param_oids = Vec::with_capacity(n as usize);
            for _ in 0..n {
                param_oids.push(r.i32()?);
            }
            Ok(Frontend::Parse {
                name,
                sql,
                param_oids,
            })
        }
        b'B' => {
            let portal = r.cstr()?;
            let statement = r.cstr()?;
            let nfmt = r.i16()?;
            if nfmt < 0 {
                return Err(ProtoError("negative format count".into()));
            }
            for _ in 0..nfmt {
                if r.i16()? != 0 {
                    return Err(ProtoError(
                        "binary parameter format not supported (text only)".into(),
                    ));
                }
            }
            let nparams = r.i16()?;
            if nparams < 0 {
                return Err(ProtoError("negative parameter count".into()));
            }
            let mut params = Vec::with_capacity(nparams as usize);
            for _ in 0..nparams {
                let len = r.i32()?;
                if len < 0 {
                    params.push(None);
                } else {
                    let bytes = r
                        .take(len as usize)
                        .ok_or_else(|| ProtoError("truncated parameter value".into()))?;
                    params.push(Some(bytes.to_vec()));
                }
            }
            let nres = r.i16()?;
            for _ in 0..nres.max(0) {
                if r.i16()? != 0 {
                    return Err(ProtoError(
                        "binary result format not supported (text only)".into(),
                    ));
                }
            }
            Ok(Frontend::Bind {
                portal,
                statement,
                params,
            })
        }
        b'D' | b'C' => {
            let kind = r
                .take(1)
                .ok_or_else(|| ProtoError("missing describe/close kind".into()))?[0];
            if kind != b'S' && kind != b'P' {
                return Err(ProtoError(format!(
                    "describe/close kind must be 'S' or 'P', got {kind:#x}"
                )));
            }
            let name = r.cstr()?;
            if tag == b'D' {
                Ok(Frontend::Describe { kind, name })
            } else {
                Ok(Frontend::Close { kind, name })
            }
        }
        b'E' => {
            let portal = r.cstr()?;
            let max_rows = r.i32()?;
            Ok(Frontend::Execute { portal, max_rows })
        }
        b'S' => Ok(Frontend::Sync),
        b'H' => Ok(Frontend::Flush),
        b'X' => Ok(Frontend::Terminate),
        other => Err(ProtoError(format!(
            "unknown frontend message tag {:?} ({other:#x})",
            other as char
        ))),
    }
}

/// Split simple-query text into statements on `;` outside single-quoted
/// strings (`''` escapes a quote). Empty statements are dropped.
pub fn split_statements(text: &str) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' => in_str = !in_str,
            b';' if !in_str => {
                let stmt = text[start..i].trim();
                if !stmt.is_empty() {
                    out.push(stmt);
                }
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    let tail = text[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_parse_bind() {
        let mut body = Vec::new();
        put_cstr(&mut body, "s1");
        put_cstr(&mut body, "SELECT 1");
        put_i16(&mut body, 2);
        put_i32(&mut body, 20);
        put_i32(&mut body, 25);
        match parse_frame(b'P', &body).unwrap() {
            Frontend::Parse {
                name,
                sql,
                param_oids,
            } => {
                assert_eq!(name, "s1");
                assert_eq!(sql, "SELECT 1");
                assert_eq!(param_oids, vec![20, 25]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bind_rejects_binary_formats() {
        let mut body = Vec::new();
        put_cstr(&mut body, "");
        put_cstr(&mut body, "");
        put_i16(&mut body, 1);
        put_i16(&mut body, 1); // binary
        assert!(parse_frame(b'B', &body).is_err());
    }

    #[test]
    fn truncated_messages_error_cleanly() {
        assert!(parse_frame(b'P', b"name-without-nul").is_err());
        assert!(parse_frame(b'E', b"p\0").is_err()); // missing max_rows
        assert!(parse_frame(b'Z', b"").is_err()); // backend-only tag
    }

    #[test]
    fn statement_splitting_respects_strings() {
        assert_eq!(
            split_statements("SELECT 'a;b'; INSERT INTO t VALUES (1);;"),
            vec!["SELECT 'a;b'", "INSERT INTO t VALUES (1)"]
        );
        assert_eq!(split_statements("  ;; "), Vec::<&str>::new());
    }

    #[test]
    fn text_values_render_postgres_style() {
        assert_eq!(text_value(&Value::Bool(true)).unwrap(), "t");
        assert_eq!(text_value(&Value::Null), None);
        assert_eq!(text_value(&Value::Int(-7)).unwrap(), "-7");
        assert_eq!(
            text_value(&Value::Date(rdb_vector::date_from_ymd(1995, 3, 5))).unwrap(),
            "1995-03-05"
        );
    }

    #[test]
    fn param_decoding_follows_oids_then_shape() {
        assert_eq!(decode_param(20, Some(b"42")).unwrap(), Value::Int(42));
        assert_eq!(
            decode_param(25, Some(b"42")).unwrap(),
            Value::str("42"),
            "declared text stays text"
        );
        assert_eq!(decode_param(0, Some(b"42")).unwrap(), Value::Int(42));
        assert_eq!(decode_param(0, Some(b"4.5")).unwrap(), Value::Float(4.5));
        assert_eq!(
            decode_param(0, Some(b"1995-03-05")).unwrap(),
            Value::Date(rdb_vector::date_from_ymd(1995, 3, 5))
        );
        assert_eq!(decode_param(0, None).unwrap(), Value::Null);
        assert!(decode_param(16, Some(b"maybe")).is_err());
    }

    #[test]
    fn backend_messages_are_framed() {
        let mut out = Vec::new();
        command_complete(&mut out, "SELECT 1");
        assert_eq!(out[0], b'C');
        let len = i32::from_be_bytes([out[1], out[2], out[3], out[4]]) as usize;
        assert_eq!(len + 1, out.len());
        assert_eq!(&out[5..out.len() - 1], b"SELECT 1");
    }
}
