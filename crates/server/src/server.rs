//! The server proper: listener, readiness reactor, connection-handler
//! pool, graceful shutdown.
//!
//! # Threading model
//!
//! One **reactor** thread owns the listener and every *idle* connection.
//! It accepts new sockets (nonblocking) and sweeps the idle set with
//! `peek` — a connection with readable bytes (or EOF) is handed to the
//! shared [`WorkerPool`], pumped until its input has no complete frame,
//! and sent back. Idle connections therefore cost a map entry and one
//! `peek` per sweep, not a thread: thousands of mostly-idle clients park
//! on the reactor while the pool's threads serve only the active ones.
//! The pool overflows rather than queues (see `rdb_exec::pool`), so one
//! slow statement never delays another connection's pump behind it.
//!
//! # Backpressure
//!
//! Per connection and bounded on both sides: reads stop once a full
//! frame's worth of bytes is buffered, and responses accumulate in a
//! bounded encode buffer flushed with *blocking* writes — a client that
//! stops reading stalls exactly its own statement via the TCP window.
//!
//! # Shutdown
//!
//! [`Server::shutdown`] drains: the reactor stops accepting, idle
//! connections are closed with `57P01`, and statements already executing
//! run to completion — no result in flight is lost. Connections still
//! busy past the drain deadline are aborted (cancel flag + socket
//! shutdown). Dropping the server shuts it down with a default deadline.

use std::hash::{BuildHasher, Hasher};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rdb_engine::{DurabilityConfig, Engine, EngineBuilder, IoFault};
use rdb_exec::{FnRegistry, WorkerPool};
use rdb_recycler::RecyclerConfig;
use rdb_storage::Catalog;

use crate::conn::{Conn, Pump};
use crate::stats::{
    wait_until, CancelEntry, ServerShared, ServerStatsSnapshot, StatsFn, STATE_DRAINING,
    STATE_RUNNING, STATE_STOPPED,
};

/// Reactor sweep interval while nothing is ready.
const SWEEP_PAUSE: Duration = Duration::from_micros(500);

/// Configure and start a [`Server`].
pub struct ServerBuilder {
    catalog: Arc<Catalog>,
    functions: FnRegistry,
    recycler: Option<RecyclerConfig>,
    max_concurrent: usize,
    admission_queue_limit: usize,
    parallelism: usize,
    workers: usize,
    addr: String,
    data_dir: Option<std::path::PathBuf>,
    durability: DurabilityConfig,
    io_fault: Option<Arc<dyn IoFault>>,
}

impl ServerBuilder {
    /// A server over `catalog` with recycling on (default config), bound
    /// to an ephemeral localhost port.
    pub fn new(catalog: Arc<Catalog>) -> ServerBuilder {
        ServerBuilder {
            catalog,
            functions: FnRegistry::new(),
            recycler: Some(RecyclerConfig::default()),
            max_concurrent: 12,
            admission_queue_limit: 256,
            parallelism: 1,
            workers: 8,
            addr: "127.0.0.1:0".to_string(),
            data_dir: None,
            durability: DurabilityConfig::default(),
            io_fault: None,
        }
    }

    /// Serve durably out of `dir`: recover it at startup, write-ahead log
    /// every commit, and checkpoint in the background (see
    /// `EngineBuilder::data_dir`).
    pub fn data_dir(mut self, dir: impl Into<std::path::PathBuf>) -> ServerBuilder {
        self.data_dir = Some(dir.into());
        self
    }

    /// Tune durability (fsync policy, checkpoint cadence); only meaningful
    /// with [`ServerBuilder::data_dir`].
    pub fn durability(mut self, config: DurabilityConfig) -> ServerBuilder {
        self.durability = config;
        self
    }

    /// Inject an I/O fault schedule into the WAL writer (fault testing).
    pub fn io_fault(mut self, fault: Arc<dyn IoFault>) -> ServerBuilder {
        self.io_fault = Some(fault);
        self
    }

    /// Table functions to expose (the server adds `rdb_stats()` on top).
    pub fn functions(mut self, functions: FnRegistry) -> ServerBuilder {
        self.functions = functions;
        self
    }

    /// Recycler configuration (defaults to [`RecyclerConfig::default`]).
    pub fn recycler(mut self, config: RecyclerConfig) -> ServerBuilder {
        self.recycler = Some(config);
        self
    }

    /// Disable recycling.
    pub fn no_recycler(mut self) -> ServerBuilder {
        self.recycler = None;
        self
    }

    /// Engine admission limit (concurrently *executing* queries).
    pub fn max_concurrent_queries(mut self, n: usize) -> ServerBuilder {
        self.max_concurrent = n.max(1);
        self
    }

    /// Bound on the engine's FIFO admission wait queue; arrivals past it
    /// are rejected with SQLSTATE `53300` instead of queued.
    pub fn admission_queue_limit(mut self, n: usize) -> ServerBuilder {
        self.admission_queue_limit = n;
        self
    }

    /// Intra-query parallelism (the engine's default DOP).
    pub fn parallelism(mut self, n: usize) -> ServerBuilder {
        self.parallelism = n.max(1);
        self
    }

    /// Resident connection-handler threads. Active connections beyond
    /// this run on overflow threads; idle ones cost no thread at all.
    pub fn workers(mut self, n: usize) -> ServerBuilder {
        self.workers = n.max(1);
        self
    }

    /// Listen address (default `127.0.0.1:0`).
    pub fn addr(mut self, addr: impl Into<String>) -> ServerBuilder {
        self.addr = addr.into();
        self
    }

    /// Build the engine, bind the listener, and start serving.
    pub fn serve(self) -> std::io::Result<Server> {
        let shared = Arc::new(ServerShared::default());
        let mut functions = self.functions;
        functions.register(
            "rdb_stats",
            Arc::new(StatsFn {
                shared: Arc::clone(&shared),
            }),
        );
        let mut builder = EngineBuilder::new(self.catalog)
            .functions(Arc::new(functions))
            .max_concurrent_queries(self.max_concurrent)
            .admission_queue_limit(self.admission_queue_limit)
            .parallelism(self.parallelism);
        builder = match self.recycler {
            Some(config) => builder.recycler(config),
            None => builder.no_recycler(),
        };
        if let Some(dir) = self.data_dir {
            builder = builder.data_dir(dir).durability(self.durability);
        }
        if let Some(fault) = self.io_fault {
            builder = builder.io_fault(fault);
        }
        let engine = builder
            .try_build()
            .map_err(|e| std::io::Error::other(format!("engine build failed: {e}")))?;
        let _ = shared.engine.set(Arc::clone(&engine));

        let listener = TcpListener::bind(&self.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let pool = WorkerPool::new(self.workers);
        let reactor = {
            let shared = Arc::clone(&shared);
            let engine = Arc::clone(&engine);
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name("rdb-reactor".to_string())
                .spawn(move || reactor_loop(listener, shared, engine, pool))
                .expect("spawn reactor thread")
        };
        Ok(Server {
            shared,
            engine,
            addr,
            reactor: Some(reactor),
            _pool: pool,
        })
    }
}

/// A running pgwire server. See the module docs for the threading model.
pub struct Server {
    shared: Arc<ServerShared>,
    engine: Arc<Engine>,
    addr: SocketAddr,
    reactor: Option<JoinHandle<()>>,
    _pool: Arc<WorkerPool>,
}

impl Server {
    /// The bound address (useful with the default ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the wire (same instance every connection talks
    /// to — embedded sessions share its recycler cache with wire ones).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Point-in-time server statistics (the `rdb_stats()` row set).
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.shared.snapshot()
    }

    /// Gracefully shut down: stop accepting, close idle connections,
    /// let executing statements finish, abort whatever is still running
    /// after `drain`. Idempotent.
    pub fn shutdown(&mut self, drain: Duration) {
        let was = self
            .shared
            .state
            .compare_exchange(
                STATE_RUNNING,
                STATE_DRAINING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        if was {
            let shared = Arc::clone(&self.shared);
            if !wait_until(drain, || shared.state() == STATE_STOPPED) {
                // Past the deadline: force every straggler off. Their
                // statement loops see the cancel flag at the next batch,
                // and severed sockets unblock any write in progress.
                shared.abort_all();
            }
        }
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown(Duration::from_secs(5));
    }
}

/// The reactor: accept, sweep, dispatch, drain. Owns the listener and all
/// idle connections; active connections live on pool threads and come
/// back through the channel.
fn reactor_loop(
    listener: TcpListener,
    shared: Arc<ServerShared>,
    engine: Arc<Engine>,
    pool: Arc<WorkerPool>,
) {
    let (tx, rx): (Sender<Conn>, Receiver<Conn>) = std::sync::mpsc::channel();
    let mut idle: Vec<Conn> = Vec::new();
    // Connections currently on a pool thread. The reactor may only exit
    // once these have all come back (or retired).
    let active = Arc::new(AtomicU64::new(0));
    let mut next_pid: i32 = 1;
    let secret_seed = std::collections::hash_map::RandomState::new();

    loop {
        let draining = shared.draining();
        let mut progressed = false;

        // 1. Accept (until draining).
        if !draining {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        progressed = true;
                        let pid = next_pid;
                        next_pid = next_pid.wrapping_add(1).max(1);
                        let mut h = secret_seed.build_hasher();
                        h.write_i32(pid);
                        let secret = h.finish() as i32;
                        let flag = Arc::new(AtomicBool::new(false));
                        if let Ok(conn) = Conn::new(
                            stream,
                            pid,
                            secret,
                            Arc::clone(&flag),
                            Arc::clone(&shared),
                            Arc::clone(&engine),
                        ) {
                            shared.cancel_registry.lock().insert(
                                pid,
                                CancelEntry {
                                    secret,
                                    flag,
                                    stream: conn.stream().try_clone().ok(),
                                },
                            );
                            shared.connections.fetch_add(1, Ordering::Relaxed);
                            shared.connections_total.fetch_add(1, Ordering::Relaxed);
                            idle.push(conn);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // 2. Collect connections coming back from pool threads.
        while let Ok(conn) = rx.try_recv() {
            progressed = true;
            idle.push(conn);
        }

        // 3. Draining: idle connections are closed, not kept.
        if draining {
            for mut conn in idle.drain(..) {
                conn.close_for_shutdown();
                retire(&shared, &conn);
            }
            if active.load(Ordering::Acquire) == 0 {
                shared.state.store(STATE_STOPPED, Ordering::Release);
                return;
            }
            std::thread::sleep(SWEEP_PAUSE);
            continue;
        }

        // 4. Sweep: dispatch every readable (or dead) idle connection.
        let mut i = 0;
        while i < idle.len() {
            if readable(&idle[i]) {
                progressed = true;
                let conn = idle.swap_remove(i);
                dispatch(conn, &pool, &tx, &shared, &active);
            } else {
                i += 1;
            }
        }

        if !progressed {
            std::thread::sleep(SWEEP_PAUSE);
        }
    }
}

/// Whether a nonblocking `peek` reports bytes, EOF, or an error — anything
/// a pump should look at.
fn readable(conn: &Conn) -> bool {
    let mut b = [0u8; 1];
    match conn.stream().peek(&mut b) {
        Ok(_) => true,
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    }
}

/// Run one pump on a pool thread; the connection comes back via `tx`
/// unless it closed.
fn dispatch(
    mut conn: Conn,
    pool: &Arc<WorkerPool>,
    tx: &Sender<Conn>,
    shared: &Arc<ServerShared>,
    active: &Arc<AtomicU64>,
) {
    let tx = tx.clone();
    let shared = Arc::clone(shared);
    let active = Arc::clone(active);
    active.fetch_add(1, Ordering::AcqRel);
    pool.run(Box::new(move || {
        match conn.pump() {
            // The reactor only exits after active drops to zero, so the
            // receiver is still alive; a failed send can only mean
            // teardown, where dropping the conn is correct.
            Pump::Idle => drop(tx.send(conn)),
            Pump::Closed => retire(&shared, &conn),
        }
        active.fetch_sub(1, Ordering::AcqRel);
    }));
}

/// Remove a finished connection's cancel entry and count it out.
fn retire(shared: &ServerShared, conn: &Conn) {
    shared.cancel_registry.lock().remove(&conn.pid());
    shared.connections.fetch_sub(1, Ordering::Relaxed);
}
