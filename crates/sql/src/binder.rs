//! Name resolution and lowering: SQL AST → bound [`Plan`] / DML.
//!
//! The binder resolves every table, alias, and column against a schema
//! provider, prunes base-table scans to exactly the referenced columns
//! (in table-schema order, so SQL-lowered scans converge with hand-built
//! plans), extracts hash-join keys from `ON` / comma-join `WHERE`
//! conjuncts, and lowers aggregates by splitting select items into an
//! `Aggregate` node plus a projection over its output. The produced plan
//! is *bound* (positional column references throughout) and ready for
//! [`rdb_plan::normalize`].

use rdb_expr::{AggFunc, ArithOp, Expr};
use rdb_plan::{JoinKind, Plan, SortKeyExpr};
use rdb_storage::Catalog;
use rdb_vector::{Schema, Value};

use crate::ast::*;
use crate::error::{BindErrorKind, Span, SqlError};

/// Schema source for binding: base tables plus table functions.
pub trait SqlCatalog {
    /// Schema of a base table.
    fn table_schema(&self, name: &str) -> Option<Schema>;

    /// Output schema of a table function called with `args` (parameter
    /// placeholders appear as [`Value::Null`]).
    fn function_schema(&self, name: &str, args: &[Value]) -> Option<Schema>;
}

impl SqlCatalog for Catalog {
    fn table_schema(&self, name: &str) -> Option<Schema> {
        self.schema_of(name).cloned()
    }

    fn function_schema(&self, _name: &str, _args: &[Value]) -> Option<Schema> {
        None
    }
}

/// A catalog paired with a table-function registry (the engine's view).
pub struct CatalogWithFunctions<'a> {
    /// Base tables.
    pub catalog: &'a Catalog,
    /// Table functions.
    pub functions: &'a rdb_exec::FnRegistry,
}

impl SqlCatalog for CatalogWithFunctions<'_> {
    fn table_schema(&self, name: &str) -> Option<Schema> {
        self.catalog.schema_of(name).cloned()
    }

    fn function_schema(&self, name: &str, args: &[Value]) -> Option<Schema> {
        self.functions.get(name).map(|f| f.schema(args))
    }
}

/// A lowered statement.
#[derive(Debug, Clone)]
pub enum BoundStatement {
    /// A query: a bound, positional plan (run it through
    /// [`rdb_plan::normalize`] before fingerprinting).
    Query(Plan),
    /// `INSERT INTO … VALUES …`: rows of literal/parameter expressions in
    /// table-schema order.
    Insert {
        /// Target table.
        table: String,
        /// Rows; each cell is [`Expr::Lit`] or [`Expr::Param`].
        rows: Vec<Vec<Expr>>,
    },
    /// `DELETE FROM … [WHERE …]`: predicate positional over the full
    /// table schema (`TRUE` when absent).
    Delete {
        /// Target table.
        table: String,
        /// Row filter.
        predicate: Expr,
    },
}

/// Lower a parsed statement against `catalog`.
pub fn bind_statement(
    stmt: &Statement,
    catalog: &dyn SqlCatalog,
) -> Result<BoundStatement, SqlError> {
    match stmt {
        Statement::Select(s) => Ok(BoundStatement::Query(bind_select(s, catalog)?)),
        Statement::Insert(i) => bind_insert(i, catalog),
        Statement::Delete(d) => bind_delete(d, catalog),
    }
}

// ---- scopes ---------------------------------------------------------------

/// One in-scope column: where it came from and what it is called.
#[derive(Debug, Clone)]
struct ScopeCol {
    /// Table alias (or table/function name when unaliased).
    qualifier: String,
    /// Column name.
    name: String,
}

/// The flat list of columns visible to expressions, in plan-output order.
#[derive(Debug, Clone, Default)]
struct Scope {
    cols: Vec<ScopeCol>,
}

impl Scope {
    fn resolve(&self, qualifier: Option<&str>, name: &str, span: Span) -> Result<usize, SqlError> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, c)| c.name == name && qualifier.map(|q| q == c.qualifier).unwrap_or(true))
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => Err(SqlError::bind_as(
                span,
                BindErrorKind::UnknownColumn,
                match qualifier {
                    Some(q) => format!("unknown column '{q}.{name}'"),
                    None => format!("unknown column '{name}'"),
                },
            )),
            1 => Ok(matches[0]),
            _ => Err(SqlError::bind_as(
                span,
                BindErrorKind::AmbiguousColumn,
                format!(
                    "ambiguous column '{name}' (matches {}); qualify it",
                    matches
                        .iter()
                        .map(|&i| format!("{}.{}", self.cols[i].qualifier, self.cols[i].name))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )),
        }
    }

    fn extend(&mut self, other: Scope) {
        self.cols.extend(other.cols);
    }

    fn len(&self) -> usize {
        self.cols.len()
    }
}

// ---- FROM lowering --------------------------------------------------------

/// A lowered relation: its plan and its column scope.
struct Relation {
    plan: Plan,
    scope: Scope,
}

struct Binder<'a> {
    catalog: &'a dyn SqlCatalog,
}

impl Binder<'_> {
    /// Lower one `FROM` source: a pruned table scan or a function scan.
    fn table_ref(&self, t: &TableRef, referenced: &ColumnUse) -> Result<Relation, SqlError> {
        let binding = t.alias.clone().unwrap_or_else(|| t.name.clone());
        match &t.args {
            None => {
                let schema = self.catalog.table_schema(&t.name).ok_or_else(|| {
                    SqlError::from_plan(t.span, rdb_plan::PlanError::unknown_table(&t.name))
                })?;
                // Scan exactly the referenced columns, in schema order —
                // the same order a careful hand-built plan uses, so the
                // two converge. A relation nothing references still needs
                // one column to carry row counts.
                let mut positions: Vec<usize> = referenced.for_binding(&binding);
                positions.sort_unstable();
                positions.dedup();
                if positions.is_empty() {
                    positions.push(0);
                }
                let cols: Vec<String> = positions
                    .iter()
                    .map(|&i| schema.field(i).name.clone())
                    .collect();
                let scope = Scope {
                    cols: cols
                        .iter()
                        .map(|c| ScopeCol {
                            qualifier: binding.clone(),
                            name: c.clone(),
                        })
                        .collect(),
                };
                Ok(Relation {
                    plan: Plan::Scan {
                        table: t.name.clone(),
                        cols,
                    },
                    scope,
                })
            }
            Some(args) => {
                let empty = Scope::default();
                let arg_exprs: Vec<Expr> = args
                    .iter()
                    .map(|a| lower_scalar(a, &empty))
                    .collect::<Result<_, _>>()?;
                // Probe the registry with literal arguments; parameters
                // appear as NULLs (function schemas may not depend on
                // placeholder values).
                let probe: Vec<Value> = arg_exprs
                    .iter()
                    .map(|e| match e {
                        Expr::Lit(v) => v.clone(),
                        _ => Value::Null,
                    })
                    .collect();
                let schema = self
                    .catalog
                    .function_schema(&t.name.to_ascii_lowercase(), &probe)
                    .ok_or_else(|| {
                        SqlError::from_plan(t.span, rdb_plan::PlanError::unknown_function(&t.name))
                    })?;
                let scope = Scope {
                    cols: schema
                        .fields()
                        .iter()
                        .map(|f| ScopeCol {
                            qualifier: binding.clone(),
                            name: f.name.clone(),
                        })
                        .collect(),
                };
                Ok(Relation {
                    plan: Plan::FnScan {
                        name: t.name.to_ascii_lowercase(),
                        args: arg_exprs,
                        schema,
                    },
                    scope,
                })
            }
        }
    }

    /// Join `right` onto `left` with keys extracted from `conjuncts`
    /// (equality comparisons spanning the two sides). Non-key conjuncts
    /// go to `residual` for inner joins and are an error otherwise.
    fn join(
        &self,
        left: Relation,
        right: Relation,
        kind: JoinKind,
        conjuncts: Vec<SExpr>,
        at: Span,
        residual: &mut Vec<Expr>,
    ) -> Result<Relation, SqlError> {
        let lw = left.scope.len();
        let mut combined = left.scope.clone();
        combined.extend(right.scope.clone());
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        for c in &conjuncts {
            let bound = lower_scalar(c, &combined)?;
            if let Some((lk, rk)) = split_equi(&bound, lw) {
                left_keys.push(lk);
                right_keys.push(rk);
                continue;
            }
            if kind == JoinKind::Inner {
                residual.push(bound);
            } else {
                return Err(SqlError::bind(
                    c.span,
                    format!(
                        "a {} join condition must be a conjunction of \
                         equalities between the two sides",
                        kind.label()
                    ),
                ));
            }
        }
        if left_keys.is_empty() {
            // Point at the condition that failed to provide a key, when
            // there is one; otherwise at the relation itself.
            let span = conjuncts.first().map(|c| c.span).unwrap_or(at);
            return Err(SqlError::bind(
                span,
                "no equi-join condition links this relation to the others \
                 (hash joins need at least one `left = right` equality)",
            ));
        }
        let scope = match kind {
            JoinKind::Semi | JoinKind::Anti => left.scope,
            _ => combined,
        };
        Ok(Relation {
            plan: Plan::Join {
                left: Box::new(left.plan),
                right: Box::new(right.plan),
                kind,
                left_keys,
                right_keys,
            },
            scope,
        })
    }
}

/// If `e` is `a = b` with `a` reading only columns `< lw` and `b` only
/// columns `>= lw` (or vice versa), return the per-side key expressions
/// (right side rebased to its own input positions).
fn split_equi(e: &Expr, lw: usize) -> Option<(Expr, Expr)> {
    let Expr::Cmp(rdb_expr::CmpOp::Eq, a, b) = e else {
        return None;
    };
    let side = |x: &Expr| -> Option<bool> {
        let mut cols = Vec::new();
        x.columns_used(&mut cols);
        if cols.is_empty() {
            return None; // a constant is not a join key side
        }
        if cols.iter().all(|&i| i < lw) {
            Some(true)
        } else if cols.iter().all(|&i| i >= lw) {
            Some(false)
        } else {
            None
        }
    };
    let rebase = |x: &Expr| {
        let mut cols = Vec::new();
        x.columns_used(&mut cols);
        let max = cols.iter().max().copied().unwrap_or(0);
        let map: Vec<usize> = (0..=max).map(|i| i.saturating_sub(lw)).collect();
        x.remap_cols(&map)
    };
    match (side(a), side(b)) {
        (Some(true), Some(false)) => Some(((**a).clone(), rebase(b))),
        (Some(false), Some(true)) => Some(((**b).clone(), rebase(a))),
        _ => None,
    }
}

// ---- column-use pre-pass --------------------------------------------------

/// Which schema positions of each `FROM` binding the statement touches.
struct ColumnUse {
    /// `(binding alias, schema, referenced positions)`.
    entries: Vec<(String, Schema, Vec<usize>)>,
}

impl ColumnUse {
    fn for_binding(&self, binding: &str) -> Vec<usize> {
        self.entries
            .iter()
            .find(|(b, _, _)| b == binding)
            .map(|(_, _, p)| p.clone())
            .unwrap_or_default()
    }
}

/// Walk every expression of the core and record, per table binding, the
/// set of referenced schema positions. Also validates column names (with
/// spans) before any plan exists.
fn collect_column_use(core: &SelectCore, catalog: &dyn SqlCatalog) -> Result<ColumnUse, SqlError> {
    // Gather the bindings: (alias, schema, is_table).
    let mut entries: Vec<(String, Schema, Vec<usize>)> = Vec::new();
    let mut seen = Vec::new();
    let mut add_ref = |t: &TableRef| -> Result<(), SqlError> {
        let binding = t.alias.clone().unwrap_or_else(|| t.name.clone());
        if seen.contains(&binding) {
            return Err(SqlError::bind(
                t.span,
                format!("duplicate table binding '{binding}'; alias one of them"),
            ));
        }
        seen.push(binding.clone());
        let schema = match &t.args {
            None => catalog.table_schema(&t.name).ok_or_else(|| {
                SqlError::from_plan(t.span, rdb_plan::PlanError::unknown_table(&t.name))
            })?,
            Some(args) => {
                let probe: Vec<Value> = args
                    .iter()
                    .map(|a| match &a.kind {
                        SExprKind::Lit(v) => v.clone(),
                        _ => Value::Null,
                    })
                    .collect();
                catalog
                    .function_schema(&t.name.to_ascii_lowercase(), &probe)
                    .ok_or_else(|| {
                        SqlError::from_plan(t.span, rdb_plan::PlanError::unknown_function(&t.name))
                    })?
            }
        };
        entries.push((binding, schema, Vec::new()));
        Ok(())
    };
    for item in &core.from {
        add_ref(&item.first)?;
        for j in &item.joins {
            add_ref(&j.table)?;
        }
    }

    // Record a column reference.
    let mut record = |qualifier: Option<&str>, name: &str, span: Span| -> Result<(), SqlError> {
        match qualifier {
            Some(q) => {
                let Some((_, schema, used)) = entries.iter_mut().find(|(b, _, _)| b == q) else {
                    return Err(SqlError::bind_as(
                        span,
                        BindErrorKind::UnknownTable,
                        format!("unknown table or alias '{q}'"),
                    ));
                };
                let Some(i) = schema.index_of(name) else {
                    return Err(SqlError::bind_as(
                        span,
                        BindErrorKind::UnknownColumn,
                        format!("unknown column '{name}' in '{q}'"),
                    ));
                };
                used.push(i);
                Ok(())
            }
            None => {
                let hits: Vec<usize> = entries
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, s, _))| s.index_of(name).is_some())
                    .map(|(i, _)| i)
                    .collect();
                match hits.len() {
                    0 => Err(SqlError::bind_as(
                        span,
                        BindErrorKind::UnknownColumn,
                        format!("unknown column '{name}'"),
                    )),
                    1 => {
                        let (_, schema, used) = &mut entries[hits[0]];
                        used.push(schema.index_of(name).unwrap());
                        Ok(())
                    }
                    _ => Err(SqlError::bind_as(
                        span,
                        BindErrorKind::AmbiguousColumn,
                        format!(
                            "ambiguous column '{name}' (in {}); qualify it",
                            hits.iter()
                                .map(|&i| entries[i].0.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    )),
                }
            }
        }
    };

    type Record<'r> = dyn FnMut(Option<&str>, &str, Span) -> Result<(), SqlError> + 'r;
    let mut walk = |e: &SExpr| -> Result<(), SqlError> {
        fn go(e: &SExpr, record: &mut Record<'_>) -> Result<(), SqlError> {
            if let SExprKind::Column { qualifier, name } = &e.kind {
                record(qualifier.as_deref(), name, e.span)?;
            }
            for c in e.children() {
                go(c, record)?;
            }
            Ok(())
        }
        go(e, &mut record)
    };

    let mut star = false;
    for item in &core.items {
        if matches!(item.expr.kind, SExprKind::Star) {
            star = true;
        } else {
            walk(&item.expr)?;
        }
    }
    if let Some(w) = &core.where_ {
        walk(w)?;
    }
    for g in &core.group_by {
        walk(g)?;
    }
    if let Some(h) = &core.having {
        walk(h)?;
    }
    for item in &core.from {
        for j in &item.joins {
            walk(&j.on)?;
        }
    }
    if star {
        // `SELECT *` touches every column of every binding.
        for (_, schema, used) in &mut entries {
            used.extend(0..schema.len());
        }
    }
    Ok(ColumnUse { entries })
}

// ---- SELECT lowering ------------------------------------------------------

/// Lower a full select statement (union arms + order/limit).
fn bind_select(stmt: &SelectStatement, catalog: &dyn SqlCatalog) -> Result<Plan, SqlError> {
    let mut arms = Vec::with_capacity(stmt.arms.len());
    let mut first_names: Option<Vec<String>> = None;
    for core in &stmt.arms {
        let (plan, names) = bind_core(core, catalog)?;
        if first_names.is_none() {
            first_names = Some(names);
        }
        arms.push(plan);
    }
    let mut plan = if arms.len() == 1 {
        arms.pop().unwrap()
    } else {
        Plan::UnionAll { children: arms }
    };
    let names = first_names.unwrap_or_default();

    if !stmt.order_by.is_empty() {
        // ORDER BY resolves against the *output* columns (aliases /
        // projected names), the only schema a union or projection exposes.
        let out_scope = Scope {
            cols: names
                .iter()
                .map(|n| ScopeCol {
                    qualifier: String::new(),
                    name: n.clone(),
                })
                .collect(),
        };
        let mut keys = Vec::with_capacity(stmt.order_by.len());
        for k in &stmt.order_by {
            let expr = lower_scalar(&k.expr, &out_scope).map_err(|mut e| {
                e.message = format!(
                    "{} (ORDER BY sees the output columns: {})",
                    e.message,
                    names.join(", ")
                );
                e
            })?;
            keys.push(if k.desc {
                SortKeyExpr::desc(expr)
            } else {
                SortKeyExpr::asc(expr)
            });
        }
        plan = match stmt.limit {
            Some(n) => plan.top_n(keys, n as usize),
            None => plan.sort(keys),
        };
    } else if let Some(n) = stmt.limit {
        plan = plan.limit(n as usize);
    }
    Ok(plan)
}

/// Lower one select core; returns the plan and its output column names.
fn bind_core(core: &SelectCore, catalog: &dyn SqlCatalog) -> Result<(Plan, Vec<String>), SqlError> {
    let binder = Binder { catalog };
    let referenced = collect_column_use(core, catalog)?;

    // WHERE conjuncts; comma joins consume the equi ones that link them.
    let mut where_conjuncts: Vec<SExpr> = match &core.where_ {
        Some(w) => split_and(w),
        None => Vec::new(),
    };
    let mut residual: Vec<Expr> = Vec::new();

    // Left-deep join tree in FROM order.
    let mut current: Option<Relation> = None;
    for item in &core.from {
        let mut rel = binder.table_ref(&item.first, &referenced)?;
        // Comma item: link to the accumulated scope via WHERE equi
        // conjuncts.
        if let Some(left) = current.take() {
            let lw = left.scope.len();
            let mut combined = left.scope.clone();
            combined.extend(rel.scope.clone());
            // A conjunct is a candidate key if it binds over the combined
            // scope and splits cleanly across the two sides.
            let mut keys = Vec::new();
            where_conjuncts.retain(|c| {
                if let Ok(bound) = lower_scalar(c, &combined) {
                    if split_equi(&bound, lw).is_some() {
                        keys.push(c.clone());
                        return false;
                    }
                }
                true
            });
            rel = binder.join(
                left,
                rel,
                JoinKind::Inner,
                keys,
                item.first.span,
                &mut residual,
            )?;
        }
        // Explicit joins chained onto this item.
        let mut acc = rel;
        for j in &item.joins {
            let right = binder.table_ref(&j.table, &referenced)?;
            let on_conjuncts = split_and(&j.on);
            acc = binder.join(
                acc,
                right,
                j.kind,
                on_conjuncts,
                j.table.span,
                &mut residual,
            )?;
        }
        current = Some(acc);
    }
    let rel = current.expect("grammar guarantees at least one FROM item");
    let scope = rel.scope;
    let mut plan = rel.plan;

    // WHERE (remaining conjuncts) + inner-join residuals.
    let mut filters = residual;
    for c in &where_conjuncts {
        filters.push(lower_scalar(c, &scope)?);
    }
    if !filters.is_empty() {
        plan = plan.select(Expr::and_all(filters));
    }

    // Select items: expand `*`, derive output names.
    let mut items: Vec<(SExpr, String)> = Vec::new();
    for item in &core.items {
        if matches!(item.expr.kind, SExprKind::Star) {
            for c in &scope.cols {
                items.push((
                    SExpr::new(
                        SExprKind::Column {
                            qualifier: Some(c.qualifier.clone()),
                            name: c.name.clone(),
                        },
                        item.expr.span,
                    ),
                    c.name.clone(),
                ));
            }
            continue;
        }
        let name = item.alias.clone().unwrap_or_else(|| match &item.expr.kind {
            SExprKind::Column { name, .. } => name.clone(),
            other => {
                // Deterministic default name for computed columns.
                let _ = other;
                item.expr.to_sql()
            }
        });
        items.push((item.expr.clone(), name));
    }

    let grouped = !core.group_by.is_empty()
        || core.having.is_some()
        || items.iter().any(|(e, _)| e.has_aggregate());

    if !grouped {
        let names: Vec<String> = items.iter().map(|(_, n)| n.clone()).collect();
        let exprs: Vec<Expr> = items
            .iter()
            .map(|(e, _)| lower_scalar(e, &scope))
            .collect::<Result<_, _>>()?;
        let plan = Plan::Project {
            child: Box::new(plan),
            exprs,
            names: names.clone(),
        };
        return Ok((plan, names));
    }

    // ---- aggregate lowering ----
    let group_exprs: Vec<Expr> = core
        .group_by
        .iter()
        .map(|g| lower_scalar(g, &scope))
        .collect::<Result<_, _>>()?;
    let mut agg = AggContext {
        scope: &scope,
        groups: &group_exprs,
        aggs: Vec::new(),
    };
    // Lower select items over the aggregate output space.
    let mut out_exprs = Vec::with_capacity(items.len());
    for (e, _) in &items {
        out_exprs.push(agg.lower(e)?);
    }
    // HAVING lowers in the same context (may introduce hidden aggregates).
    let having = match &core.having {
        Some(h) => Some(agg.lower(h)?),
        None => None,
    };

    // Output names for the aggregate node: select aliases where a group
    // key / aggregate surfaces directly, synthesized otherwise.
    let n_groups = group_exprs.len();
    let mut group_names: Vec<String> = (0..n_groups).map(|i| format!("g{i}")).collect();
    let mut agg_names: Vec<String> = (0..agg.aggs.len()).map(|i| format!("a{i}")).collect();
    for ((_, name), out) in items.iter().zip(&out_exprs) {
        if let Expr::Col(i) = out {
            if *i < n_groups {
                group_names[*i] = name.clone();
            } else {
                agg_names[*i - n_groups] = name.clone();
            }
        }
    }

    let aggs = agg.aggs;
    let mut out_plan = Plan::Aggregate {
        child: Box::new(plan),
        group_by: group_exprs.clone(),
        group_names: group_names.clone(),
        aggs,
        agg_names: agg_names.clone(),
    };
    if let Some(h) = having {
        out_plan = out_plan.select(h);
    }
    let names: Vec<String> = items.iter().map(|(_, n)| n.clone()).collect();
    let out_plan = Plan::Project {
        child: Box::new(out_plan),
        exprs: out_exprs,
        names: names.clone(),
    };
    Ok((out_plan, names))
}

/// Context for lowering expressions over an aggregate's output.
struct AggContext<'a> {
    scope: &'a Scope,
    groups: &'a [Expr],
    aggs: Vec<AggFunc>,
}

impl AggContext<'_> {
    /// Lower `e` into the aggregate output space: aggregate calls become
    /// references to (deduplicated) aggregate columns, subtrees matching
    /// a GROUP BY expression become group-key references, and anything
    /// else recurses — a bare column that matches neither is an error.
    fn lower(&mut self, e: &SExpr) -> Result<Expr, SqlError> {
        // Aggregate call → aggregate output column.
        if let SExprKind::Agg {
            func,
            distinct,
            arg,
        } = &e.kind
        {
            let bound_arg = match arg {
                None => None,
                Some(a) => {
                    if a.has_aggregate() {
                        return Err(SqlError::bind(a.span, "aggregate calls cannot nest"));
                    }
                    Some(lower_scalar(a, self.scope)?)
                }
            };
            let f = make_agg(func, *distinct, bound_arg, e.span)?;
            let idx = match self.aggs.iter().position(|x| *x == f) {
                Some(i) => i,
                None => {
                    self.aggs.push(f);
                    self.aggs.len() - 1
                }
            };
            return Ok(Expr::Col(self.groups.len() + idx));
        }
        // Whole subtree equals a group key?
        if !e.has_aggregate() {
            if let Ok(bound) = lower_scalar(e, self.scope) {
                if let Some(i) = self.groups.iter().position(|g| *g == bound) {
                    return Ok(Expr::Col(i));
                }
                // Constants pass through unchanged.
                let mut cols = Vec::new();
                bound.columns_used(&mut cols);
                if cols.is_empty() && !matches!(e.kind, SExprKind::Column { .. }) {
                    return Ok(bound);
                }
            }
        }
        // A bare column that matched no group key cannot appear here.
        if let SExprKind::Column { name, .. } = &e.kind {
            return Err(SqlError::bind(
                e.span,
                format!("column '{name}' must appear in GROUP BY or inside an aggregate"),
            ));
        }
        // Recurse and rebuild.
        self.rebuild(e)
    }

    fn rebuild(&mut self, e: &SExpr) -> Result<Expr, SqlError> {
        match &e.kind {
            SExprKind::Cmp(op, a, b) => Ok(Expr::Cmp(
                *op,
                Box::new(self.lower(a)?),
                Box::new(self.lower(b)?),
            )),
            SExprKind::Arith(op, a, b) => Ok(Expr::Arith(
                *op,
                Box::new(self.lower(a)?),
                Box::new(self.lower(b)?),
            )),
            SExprKind::And(items) => Ok(Expr::and_all(
                items
                    .iter()
                    .map(|i| self.lower(i))
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            SExprKind::Or(items) => Ok(Expr::or_all(
                items
                    .iter()
                    .map(|i| self.lower(i))
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            SExprKind::Not(a) => Ok(self.lower(a)?.not()),
            SExprKind::Neg(a) => Ok(Expr::Arith(
                ArithOp::Sub,
                Box::new(Expr::lit(0)),
                Box::new(self.lower(a)?),
            )),
            SExprKind::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(self.lower(expr)?),
                negated: *negated,
            }),
            SExprKind::Case {
                branches,
                otherwise,
            } => {
                let bs = branches
                    .iter()
                    .map(|(c, t)| Ok((self.lower(c)?, self.lower(t)?)))
                    .collect::<Result<Vec<_>, SqlError>>()?;
                let other = match otherwise {
                    Some(o) => self.lower(o)?,
                    None => Expr::Lit(Value::Null),
                };
                Ok(Expr::case(bs, other))
            }
            _ => Err(SqlError::bind(
                e.span,
                "this expression must appear in GROUP BY or inside an aggregate",
            )),
        }
    }
}

// ---- scalar lowering ------------------------------------------------------

/// Lower a scalar expression over `scope` into a positional [`Expr`].
fn lower_scalar(e: &SExpr, scope: &Scope) -> Result<Expr, SqlError> {
    match &e.kind {
        SExprKind::Column { qualifier, name } => scope
            .resolve(qualifier.as_deref(), name, e.span)
            .map(Expr::Col),
        SExprKind::Star => Err(SqlError::bind(
            e.span,
            "'*' is only valid as a select item or inside count(*)",
        )),
        SExprKind::Lit(v) => Ok(Expr::Lit(v.clone())),
        SExprKind::Param(n) => Ok(Expr::Param(n.clone())),
        SExprKind::Question(i) => Ok(Expr::Param(i.to_string())),
        SExprKind::Cmp(op, a, b) => Ok(Expr::Cmp(
            *op,
            Box::new(lower_scalar(a, scope)?),
            Box::new(lower_scalar(b, scope)?),
        )),
        SExprKind::Arith(op, a, b) => Ok(Expr::Arith(
            *op,
            Box::new(lower_scalar(a, scope)?),
            Box::new(lower_scalar(b, scope)?),
        )),
        SExprKind::And(items) => Ok(Expr::and_all(
            items
                .iter()
                .map(|i| lower_scalar(i, scope))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        SExprKind::Or(items) => Ok(Expr::or_all(
            items
                .iter()
                .map(|i| lower_scalar(i, scope))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        SExprKind::Not(a) => Ok(lower_scalar(a, scope)?.not()),
        SExprKind::Neg(a) => Ok(Expr::Arith(
            ArithOp::Sub,
            Box::new(Expr::lit(0)),
            Box::new(lower_scalar(a, scope)?),
        )),
        SExprKind::Like {
            expr,
            pattern,
            negated,
        } => Ok(Expr::Like {
            expr: Box::new(lower_scalar(expr, scope)?),
            pattern: pattern.clone(),
            negated: *negated,
        }),
        SExprKind::InList {
            expr,
            list,
            negated,
        } => {
            let probe = lower_scalar(expr, scope)?;
            let values: Vec<Value> = list
                .iter()
                .map(|i| match &i.kind {
                    SExprKind::Lit(v) => Ok(v.clone()),
                    _ => Err(SqlError::bind(i.span, "IN list elements must be literals")),
                })
                .collect::<Result<_, _>>()?;
            Ok(Expr::InList {
                expr: Box::new(probe),
                list: values,
                negated: *negated,
            })
        }
        SExprKind::Between { expr, lo, hi } => {
            let probe = lower_scalar(expr, scope)?;
            let lo = lower_scalar(lo, scope)?;
            let hi = lower_scalar(hi, scope)?;
            Ok(probe.clone().ge(lo).and(probe.le(hi)))
        }
        SExprKind::IsNull { expr, negated } => Ok(Expr::IsNull {
            expr: Box::new(lower_scalar(expr, scope)?),
            negated: *negated,
        }),
        SExprKind::Case {
            branches,
            otherwise,
        } => {
            let bs = branches
                .iter()
                .map(|(c, t)| Ok((lower_scalar(c, scope)?, lower_scalar(t, scope)?)))
                .collect::<Result<Vec<_>, SqlError>>()?;
            let other = match otherwise {
                Some(o) => lower_scalar(o, scope)?,
                None => Expr::Lit(Value::Null),
            };
            Ok(Expr::case(bs, other))
        }
        SExprKind::Func { name, args } => lower_func(name, args, scope, e.span),
        SExprKind::Agg { .. } => Err(SqlError::bind(
            e.span,
            "aggregate calls are only valid in a SELECT list or HAVING",
        )),
    }
}

fn lower_func(name: &str, args: &[SExpr], scope: &Scope, span: Span) -> Result<Expr, SqlError> {
    let arity = |n: usize| -> Result<(), SqlError> {
        if args.len() != n {
            return Err(SqlError::from_plan(
                span,
                rdb_plan::PlanError::arity(format!(
                    "{name}() takes {n} argument{}, got {}",
                    if n == 1 { "" } else { "s" },
                    args.len()
                )),
            ));
        }
        Ok(())
    };
    match name {
        "year" => {
            arity(1)?;
            Ok(Expr::Year(Box::new(lower_scalar(&args[0], scope)?)))
        }
        "month" => {
            arity(1)?;
            Ok(Expr::Month(Box::new(lower_scalar(&args[0], scope)?)))
        }
        "substr" => {
            arity(3)?;
            let s = lower_scalar(&args[0], scope)?;
            let as_pos = |a: &SExpr, what: &str, min: i64| -> Result<usize, SqlError> {
                match &a.kind {
                    SExprKind::Lit(Value::Int(i)) if *i >= min => Ok(*i as usize),
                    _ => Err(SqlError::bind(
                        a.span,
                        format!("substr {what} must be an integer literal >= {min}"),
                    )),
                }
            };
            let start = as_pos(&args[1], "start (1-based)", 1)?;
            let len = as_pos(&args[2], "length", 0)?;
            Ok(Expr::Substr {
                expr: Box::new(s),
                start,
                len,
            })
        }
        other => Err(SqlError::from_plan(
            span,
            rdb_plan::PlanError::unknown_function(other),
        )),
    }
}

fn make_agg(
    func: &str,
    distinct: bool,
    arg: Option<Expr>,
    span: Span,
) -> Result<AggFunc, SqlError> {
    Ok(match (func, distinct, arg) {
        ("count", false, None) => AggFunc::CountStar,
        ("count", false, Some(a)) => AggFunc::Count(a),
        ("count", true, Some(a)) => AggFunc::CountDistinct(a),
        ("count_distinct", _, Some(a)) => AggFunc::CountDistinct(a),
        ("sum", _, Some(a)) => AggFunc::Sum(a),
        ("min", _, Some(a)) => AggFunc::Min(a),
        ("max", _, Some(a)) => AggFunc::Max(a),
        ("avg", _, Some(a)) => AggFunc::Avg(a),
        (f, _, None) => return Err(SqlError::bind(span, format!("{f}() requires an argument"))),
        (f, _, _) => {
            return Err(SqlError::bind_as(
                span,
                BindErrorKind::UnknownAggregate,
                format!("unknown aggregate '{f}'"),
            ));
        }
    })
}

/// Split a conjunction into its top-level conjuncts.
fn split_and(e: &SExpr) -> Vec<SExpr> {
    match &e.kind {
        SExprKind::And(items) => items.iter().flat_map(split_and).collect(),
        _ => vec![e.clone()],
    }
}

// ---- DML lowering ---------------------------------------------------------

fn bind_insert(i: &Insert, catalog: &dyn SqlCatalog) -> Result<BoundStatement, SqlError> {
    let schema = catalog.table_schema(&i.table).ok_or_else(|| {
        SqlError::from_plan(i.table_span, rdb_plan::PlanError::unknown_table(&i.table))
    })?;
    // Map the (optional) column list onto schema order: every schema
    // column must be named exactly once.
    let order: Vec<usize> = if i.columns.is_empty() {
        (0..schema.len()).collect()
    } else {
        if i.columns.len() != schema.len() {
            return Err(SqlError::from_plan(
                i.table_span,
                rdb_plan::PlanError::arity(format!(
                    "INSERT column list must name all {} columns of '{}', got {}",
                    schema.len(),
                    i.table,
                    i.columns.len()
                )),
            ));
        }
        let mut order = vec![usize::MAX; schema.len()];
        for (pos, (name, span)) in i.columns.iter().enumerate() {
            let Some(si) = schema.index_of(name) else {
                return Err(SqlError::bind_as(
                    *span,
                    BindErrorKind::UnknownColumn,
                    format!("unknown column '{name}' in '{}'", i.table),
                ));
            };
            if order[si] != usize::MAX {
                return Err(SqlError::bind(
                    *span,
                    format!("column '{name}' listed twice"),
                ));
            }
            order[si] = pos;
        }
        order
    };
    let empty = Scope::default();
    let mut rows = Vec::with_capacity(i.rows.len());
    for row in &i.rows {
        if row.len() != schema.len() {
            let span = row
                .first()
                .map(|e| e.span.union(row.last().unwrap().span))
                .unwrap_or(i.table_span);
            return Err(SqlError::from_plan(
                span,
                rdb_plan::PlanError::arity(format!(
                    "INSERT row has {} values, table '{}' has {} columns",
                    row.len(),
                    i.table,
                    schema.len()
                )),
            ));
        }
        let mut cells = Vec::with_capacity(row.len());
        for &src in &order {
            let cell = &row[src];
            let lowered = lower_scalar(cell, &empty)?;
            match &lowered {
                Expr::Lit(_) | Expr::Param(_) => cells.push(lowered),
                _ => {
                    return Err(SqlError::bind(
                        cell.span,
                        "INSERT values must be literals or parameters",
                    ))
                }
            }
        }
        rows.push(cells);
    }
    Ok(BoundStatement::Insert {
        table: i.table.clone(),
        rows,
    })
}

fn bind_delete(d: &Delete, catalog: &dyn SqlCatalog) -> Result<BoundStatement, SqlError> {
    let schema = catalog.table_schema(&d.table).ok_or_else(|| {
        SqlError::from_plan(d.table_span, rdb_plan::PlanError::unknown_table(&d.table))
    })?;
    let scope = Scope {
        cols: schema
            .fields()
            .iter()
            .map(|f| ScopeCol {
                qualifier: d.table.clone(),
                name: f.name.clone(),
            })
            .collect(),
    };
    let predicate = match &d.where_ {
        Some(w) => {
            if w.has_aggregate() {
                return Err(SqlError::bind(
                    w.span,
                    "aggregates are not allowed in DELETE predicates",
                ));
            }
            lower_scalar(w, &scope)?
        }
        None => Expr::lit(true),
    };
    Ok(BoundStatement::Delete {
        table: d.table.clone(),
        predicate,
    })
}
