//! The SQL abstract syntax tree, with source spans and a pretty-printer.
//!
//! Every expression node carries the byte [`Span`] of the text it was
//! parsed from, so binder errors point at the exact fragment. The
//! [`Statement::to_sql`] printer emits canonical text (uppercase keywords,
//! fully parenthesized binary expressions) that re-parses to an equivalent
//! tree — the roundtrip property the test suite checks.

use std::fmt::Write as _;

use rdb_expr::{ArithOp, CmpOp};
use rdb_plan::JoinKind;
use rdb_vector::Value;

use crate::error::Span;

/// A scalar (or aggregate-call) expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct SExpr {
    /// The node.
    pub kind: SExprKind,
    /// Source bytes this node was parsed from.
    pub span: Span,
}

/// Aggregate function names the grammar recognizes.
pub const AGG_NAMES: [&str; 6] = ["count", "sum", "min", "max", "avg", "count_distinct"];

/// Expression node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum SExprKind {
    /// `[qualifier.]name`.
    Column {
        /// Table name or alias, when qualified.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// `*` (select list, or `count(*)` argument).
    Star,
    /// Literal (numbers, strings, booleans, NULL, `DATE '…'`).
    Lit(Value),
    /// Named placeholder `$name`.
    Param(String),
    /// Positional placeholder `?`, numbered left to right from 1.
    Question(u32),
    /// Binary comparison.
    Cmp(CmpOp, Box<SExpr>, Box<SExpr>),
    /// Binary arithmetic.
    Arith(ArithOp, Box<SExpr>, Box<SExpr>),
    /// N-ary conjunction (parsed flat, so wide `AND` chains cost one
    /// nesting level, not one per conjunct).
    And(Vec<SExpr>),
    /// N-ary disjunction.
    Or(Vec<SExpr>),
    /// `NOT a`.
    Not(Box<SExpr>),
    /// Unary minus.
    Neg(Box<SExpr>),
    /// `expr [NOT] LIKE 'pattern'`.
    Like {
        /// String input.
        expr: Box<SExpr>,
        /// Wildcard pattern.
        pattern: String,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// `expr [NOT] IN (…)`.
    InList {
        /// Probe expression.
        expr: Box<SExpr>,
        /// Member expressions (literals/params after binding).
        list: Vec<SExpr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<SExpr>,
        /// Lower bound (inclusive).
        lo: Box<SExpr>,
        /// Upper bound (inclusive).
        hi: Box<SExpr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<SExpr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `CASE WHEN … THEN … [ELSE …] END`.
    Case {
        /// `(condition, value)` branches.
        branches: Vec<(SExpr, SExpr)>,
        /// `ELSE` value (NULL when omitted).
        otherwise: Option<Box<SExpr>>,
    },
    /// Scalar function call: `year(d)`, `month(d)`, `substr(s, i, n)`,
    /// `extract(year from d)` is sugared into `year(d)` by the parser.
    Func {
        /// Lowercased function name.
        name: String,
        /// Arguments.
        args: Vec<SExpr>,
    },
    /// Aggregate call: `count(*)`, `count(x)`, `count(distinct x)`,
    /// `sum/min/max/avg(x)`.
    Agg {
        /// Lowercased function name.
        func: String,
        /// `DISTINCT` flag (only `count` supports it).
        distinct: bool,
        /// Argument; `None` encodes `*`.
        arg: Option<Box<SExpr>>,
    },
}

impl SExpr {
    /// Construct with a span.
    pub fn new(kind: SExprKind, span: Span) -> SExpr {
        SExpr { kind, span }
    }

    /// Whether any node in the subtree is an aggregate call.
    pub fn has_aggregate(&self) -> bool {
        if matches!(self.kind, SExprKind::Agg { .. }) {
            return true;
        }
        self.children().iter().any(|c| c.has_aggregate())
    }

    /// Immediate children.
    pub fn children(&self) -> Vec<&SExpr> {
        match &self.kind {
            SExprKind::Column { .. }
            | SExprKind::Star
            | SExprKind::Lit(_)
            | SExprKind::Param(_)
            | SExprKind::Question(_) => vec![],
            SExprKind::Cmp(_, a, b) | SExprKind::Arith(_, a, b) => vec![a, b],
            SExprKind::And(items) | SExprKind::Or(items) => items.iter().collect(),
            SExprKind::Not(e) | SExprKind::Neg(e) => vec![e],
            SExprKind::Like { expr, .. } | SExprKind::IsNull { expr, .. } => vec![expr],
            SExprKind::InList { expr, list, .. } => {
                let mut v = vec![expr.as_ref()];
                v.extend(list.iter());
                v
            }
            SExprKind::Between { expr, lo, hi } => vec![expr, lo, hi],
            SExprKind::Case {
                branches,
                otherwise,
            } => {
                let mut v = Vec::new();
                for (c, t) in branches {
                    v.push(c);
                    v.push(t);
                }
                if let Some(e) = otherwise {
                    v.push(e);
                }
                v
            }
            SExprKind::Func { args, .. } => args.iter().collect(),
            SExprKind::Agg { arg, .. } => arg.iter().map(|b| b.as_ref()).collect(),
        }
    }

    /// Canonical SQL text of this expression.
    pub fn to_sql(&self) -> String {
        let mut s = String::new();
        self.write_sql(&mut s);
        s
    }

    fn write_sql(&self, out: &mut String) {
        match &self.kind {
            SExprKind::Column { qualifier, name } => {
                if let Some(q) = qualifier {
                    let _ = write!(out, "{q}.");
                }
                out.push_str(name);
            }
            SExprKind::Star => out.push('*'),
            SExprKind::Lit(v) => out.push_str(&lit_sql(v)),
            SExprKind::Param(n) => {
                let _ = write!(out, "${n}");
            }
            SExprKind::Question(_) => out.push('?'),
            SExprKind::Cmp(op, a, b) => binary(out, op.symbol(), a, b),
            SExprKind::Arith(op, a, b) => binary(out, op.symbol(), a, b),
            SExprKind::And(items) => junction(out, "AND", items),
            SExprKind::Or(items) => junction(out, "OR", items),
            SExprKind::Not(e) => {
                out.push_str("(NOT ");
                e.write_sql(out);
                out.push(')');
            }
            SExprKind::Neg(e) => {
                out.push_str("(-");
                e.write_sql(out);
                out.push(')');
            }
            SExprKind::Like {
                expr,
                pattern,
                negated,
            } => {
                out.push('(');
                expr.write_sql(out);
                let _ = write!(
                    out,
                    " {}LIKE '{}')",
                    if *negated { "NOT " } else { "" },
                    pattern.replace('\'', "''")
                );
            }
            SExprKind::InList {
                expr,
                list,
                negated,
            } => {
                out.push('(');
                expr.write_sql(out);
                out.push_str(if *negated { " NOT IN (" } else { " IN (" });
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    e.write_sql(out);
                }
                out.push_str("))");
            }
            SExprKind::Between { expr, lo, hi } => {
                out.push('(');
                expr.write_sql(out);
                out.push_str(" BETWEEN ");
                lo.write_sql(out);
                out.push_str(" AND ");
                hi.write_sql(out);
                out.push(')');
            }
            SExprKind::IsNull { expr, negated } => {
                out.push('(');
                expr.write_sql(out);
                out.push_str(if *negated {
                    " IS NOT NULL)"
                } else {
                    " IS NULL)"
                });
            }
            SExprKind::Case {
                branches,
                otherwise,
            } => {
                out.push_str("CASE");
                for (c, t) in branches {
                    out.push_str(" WHEN ");
                    c.write_sql(out);
                    out.push_str(" THEN ");
                    t.write_sql(out);
                }
                if let Some(e) = otherwise {
                    out.push_str(" ELSE ");
                    e.write_sql(out);
                }
                out.push_str(" END");
            }
            SExprKind::Func { name, args } => {
                let _ = write!(out, "{name}(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    a.write_sql(out);
                }
                out.push(')');
            }
            SExprKind::Agg {
                func,
                distinct,
                arg,
            } => {
                let _ = write!(out, "{func}(");
                if *distinct {
                    out.push_str("DISTINCT ");
                }
                match arg {
                    None => out.push('*'),
                    Some(a) => a.write_sql(out),
                }
                out.push(')');
            }
        }
    }
}

fn junction(out: &mut String, op: &str, items: &[SExpr]) {
    out.push('(');
    for (i, e) in items.iter().enumerate() {
        if i > 0 {
            let _ = write!(out, " {op} ");
        }
        e.write_sql(out);
    }
    out.push(')');
}

fn binary(out: &mut String, op: &str, a: &SExpr, b: &SExpr) {
    out.push('(');
    a.write_sql(out);
    let _ = write!(out, " {op} ");
    b.write_sql(out);
    out.push(')');
}

/// SQL text of a literal (floats keep a decimal point so they re-parse as
/// floats; strings re-escape quotes; dates use the `DATE '…'` form).
fn lit_sql(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Date(d) => format!("DATE '{}'", rdb_vector::types::format_date(*d)),
    }
}

/// One `SELECT` list entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression (possibly [`SExprKind::Star`]).
    pub expr: SExpr,
    /// `AS alias`, when given.
    pub alias: Option<String>,
}

/// A base relation in `FROM`: a table, or a table function call.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table or function name.
    pub name: String,
    /// `Some(args)` marks a table-function call.
    pub args: Option<Vec<SExpr>>,
    /// Binding alias.
    pub alias: Option<String>,
    /// Span of the name token.
    pub span: Span,
}

/// An explicit join hanging off a `FROM` item.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// INNER / LEFT / SEMI / ANTI.
    pub kind: JoinKind,
    /// The joined relation.
    pub table: TableRef,
    /// `ON` condition.
    pub on: SExpr,
}

/// One `FROM` item: a relation plus its chained joins.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// The leading relation.
    pub first: TableRef,
    /// Chained `JOIN … ON …` clauses, in order.
    pub joins: Vec<JoinClause>,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Key expression (an output column name, usually).
    pub expr: SExpr,
    /// `DESC` when true.
    pub desc: bool,
}

/// The body of one `SELECT` (an arm of a `UNION ALL`).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectCore {
    /// Select list.
    pub items: Vec<SelectItem>,
    /// `FROM` items (comma-separated; commas mean inner joins whose keys
    /// come from `WHERE`).
    pub from: Vec<FromItem>,
    /// `WHERE` predicate.
    pub where_: Option<SExpr>,
    /// `GROUP BY` keys.
    pub group_by: Vec<SExpr>,
    /// `HAVING` predicate.
    pub having: Option<SExpr>,
    /// Span of the whole core.
    pub span: Span,
}

/// A full `SELECT` statement: `UNION ALL` arms plus statement-level
/// ordering and limit.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// The arms (length 1 without `UNION ALL`).
    pub arms: Vec<SelectCore>,
    /// `ORDER BY` keys over the output.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT n`.
    pub limit: Option<u64>,
}

/// `INSERT INTO t [(cols)] VALUES (…), (…)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Span of the table name.
    pub table_span: Span,
    /// Explicit column list (empty = schema order).
    pub columns: Vec<(String, Span)>,
    /// Value rows.
    pub rows: Vec<Vec<SExpr>>,
}

/// `DELETE FROM t [WHERE …]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// Span of the table name.
    pub table_span: Span,
    /// Row filter; `None` deletes everything.
    pub where_: Option<SExpr>,
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A query.
    Select(SelectStatement),
    /// An append.
    Insert(Insert),
    /// A predicate delete.
    Delete(Delete),
}

impl Statement {
    /// Canonical SQL text (re-parses to an equivalent statement).
    pub fn to_sql(&self) -> String {
        match self {
            Statement::Select(s) => s.to_sql(),
            Statement::Insert(i) => {
                let mut out = format!("INSERT INTO {}", i.table);
                if !i.columns.is_empty() {
                    let cols: Vec<&str> = i.columns.iter().map(|(c, _)| c.as_str()).collect();
                    let _ = write!(out, " ({})", cols.join(", "));
                }
                out.push_str(" VALUES ");
                for (ri, row) in i.rows.iter().enumerate() {
                    if ri > 0 {
                        out.push_str(", ");
                    }
                    out.push('(');
                    for (ci, v) in row.iter().enumerate() {
                        if ci > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&v.to_sql());
                    }
                    out.push(')');
                }
                out
            }
            Statement::Delete(d) => {
                let mut out = format!("DELETE FROM {}", d.table);
                if let Some(w) = &d.where_ {
                    let _ = write!(out, " WHERE {}", w.to_sql());
                }
                out
            }
        }
    }
}

impl SelectStatement {
    /// Canonical SQL text.
    pub fn to_sql(&self) -> String {
        let mut out = String::new();
        for (i, arm) in self.arms.iter().enumerate() {
            if i > 0 {
                out.push_str(" UNION ALL ");
            }
            arm.write_sql(&mut out);
        }
        if !self.order_by.is_empty() {
            out.push_str(" ORDER BY ");
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&k.expr.to_sql());
                if k.desc {
                    out.push_str(" DESC");
                }
            }
        }
        if let Some(n) = self.limit {
            let _ = write!(out, " LIMIT {n}");
        }
        out
    }
}

impl SelectCore {
    fn write_sql(&self, out: &mut String) {
        out.push_str("SELECT ");
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&item.expr.to_sql());
            if let Some(a) = &item.alias {
                let _ = write!(out, " AS {a}");
            }
        }
        out.push_str(" FROM ");
        for (i, f) in self.from.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_table_ref(out, &f.first);
            for j in &f.joins {
                let kw = match j.kind {
                    JoinKind::Inner => "INNER JOIN",
                    JoinKind::LeftOuter => "LEFT JOIN",
                    JoinKind::Semi => "SEMI JOIN",
                    JoinKind::Anti => "ANTI JOIN",
                    JoinKind::Single => "SINGLE JOIN",
                };
                let _ = write!(out, " {kw} ");
                write_table_ref(out, &j.table);
                let _ = write!(out, " ON {}", j.on.to_sql());
            }
        }
        if let Some(w) = &self.where_ {
            let _ = write!(out, " WHERE {}", w.to_sql());
        }
        if !self.group_by.is_empty() {
            out.push_str(" GROUP BY ");
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&g.to_sql());
            }
        }
        if let Some(h) = &self.having {
            let _ = write!(out, " HAVING {}", h.to_sql());
        }
    }
}

fn write_table_ref(out: &mut String, t: &TableRef) {
    out.push_str(&t.name);
    if let Some(args) = &t.args {
        out.push('(');
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&a.to_sql());
        }
        out.push(')');
    }
    if let Some(a) = &t.alias {
        let _ = write!(out, " AS {a}");
    }
}
