//! SQL text frontend for recycler-db.
//!
//! A hand-written lexer + recursive-descent parser for a pragmatic SQL
//! subset, an AST with byte spans ([`ast`]), and a binder ([`binder`])
//! that resolves names against the catalog and lowers to the engine's
//! [`rdb_plan::Plan`]. The point of the layer is *cache convergence*: all
//! SQL lowers through one code path, scans are pruned to referenced
//! columns in schema order, and the session layer normalizes every lowered
//! plan ([`rdb_plan::normalize`]) before fingerprinting — so textual
//! variants of the same query (`a AND b` vs `b AND a`, `5 < x` vs
//! `x > 5`, filters above vs below a join) land on the same
//! recycler-graph nodes and reuse each other's materialized results.
//!
//! # Supported grammar
//!
//! ```text
//! statement   := select_stmt | insert | delete
//!
//! select_stmt := select_core (UNION ALL select_core)*
//!                [ORDER BY out_col [ASC|DESC] (',' …)*] [LIMIT int]
//! select_core := SELECT item (',' item)*
//!                FROM from_item (',' from_item)*
//!                [WHERE expr]
//!                [GROUP BY expr (',' …)*] [HAVING expr]
//! item        := '*' | expr [[AS] alias]
//! from_item   := table_ref join*
//! table_ref   := name ['(' expr (',' …)* ')']   -- table function call
//!                [[AS] alias]
//! join        := (JOIN | INNER JOIN | LEFT [OUTER] JOIN |
//!                 SEMI JOIN | ANTI JOIN) table_ref ON expr
//!
//! insert      := INSERT INTO name ['(' col (',' …)* ')']
//!                VALUES '(' expr (',' …)* ')' (',' '(' … ')')*
//! delete      := DELETE FROM name [WHERE expr]
//!
//! expr        := usual precedence: OR < AND < NOT <
//!                {= <> < <= > >=, IS [NOT] NULL, [NOT] LIKE 'pat',
//!                 [NOT] IN (lit, …), BETWEEN a AND b} < + - < * / < unary -
//! primary     := int | float | 'string' | TRUE | FALSE | NULL
//!              | DATE 'YYYY-MM-DD'
//!              | $name | ?                       -- parameter placeholders
//!              | column | alias.column
//!              | year(e) | month(e) | extract(year|month from e)
//!              | substr(s, start, len) | substring(s from start for len)
//!              | count(*) | count([distinct] e) | sum(e) | min(e)
//!              | max(e) | avg(e)
//!              | CASE WHEN c THEN v … [ELSE e] END | '(' expr ')'
//! ```
//!
//! Notes:
//!
//! * **Placeholders** `$name` lower to [`rdb_expr::Expr::Param`] with that
//!   name; `?` placeholders are numbered left to right from 1 and lower to
//!   parameters named `"1"`, `"2"`, … — bind them with
//!   `Params::new().set("1", …)`.
//! * **Joins** are hash equi-joins: every `ON` must contain at least one
//!   `left = right` equality; non-equality conjuncts are allowed on inner
//!   joins (they become a filter above the join, which normalization then
//!   sinks as far as it can). Comma-separated `FROM` items are inner
//!   joins whose equalities are taken from `WHERE`.
//! * **ORDER BY** resolves against the statement's *output* columns
//!   (select aliases), after projection — `ORDER BY` + `LIMIT` lowers to
//!   the heap top-N operator, `ORDER BY` alone to a full sort.
//! * **Aggregates** may appear in select items and `HAVING`, arbitrarily
//!   nested in scalar expressions (`100.0 * sum(a) / sum(b)`); any other
//!   column reference must match a `GROUP BY` expression.
//!
//! # Entry points
//!
//! [`parse`] produces a [`ast::Statement`] (with
//! [`ast::Statement::to_sql`] as the canonical printer), and
//! [`bind_statement`] lowers it against a [`SqlCatalog`]. Most callers go
//! through the engine session instead: `Session::prepare_sql(text)`
//! prepares a SQL query template and `Session::sql(text, params)` executes
//! any statement, including DML.

pub mod ast;
pub mod binder;
pub mod error;
pub mod lexer;
pub mod parser;

pub use ast::Statement;
pub use binder::{bind_statement, BoundStatement, CatalogWithFunctions, SqlCatalog};
pub use error::{BindErrorKind, Span, SqlError, SqlErrorKind};
pub use parser::parse;

/// Parse and lower in one step.
pub fn compile(sql: &str, catalog: &dyn SqlCatalog) -> Result<BoundStatement, SqlError> {
    bind_statement(&parse(sql)?, catalog)
}
