//! Hand-written recursive-descent parser for the supported SQL subset.
//!
//! Grammar (see the crate docs for the full reference):
//!
//! ```text
//! statement   := select_stmt | insert | delete
//! select_stmt := select_core (UNION ALL select_core)*
//!                [ORDER BY key (',' key)*] [LIMIT int] [';']
//! select_core := SELECT item (',' item)* FROM from_item (',' from_item)*
//!                [WHERE expr] [GROUP BY expr (',' expr)*] [HAVING expr]
//! from_item   := table_ref (join)*
//! table_ref   := ident ['(' expr (',' expr)* ')'] [[AS] ident]
//! join        := (JOIN | INNER JOIN | LEFT [OUTER] JOIN | SEMI JOIN |
//!                 ANTI JOIN) table_ref ON expr
//! insert      := INSERT INTO ident ['(' ident (',' ident)* ')']
//!                VALUES tuple (',' tuple)*
//! delete      := DELETE FROM ident [WHERE expr]
//! ```
//!
//! Expressions use conventional precedence (`OR` < `AND` < `NOT` <
//! comparisons/`IS`/`LIKE`/`IN`/`BETWEEN` < `+ -` < `* /` < unary minus).

use rdb_expr::{ArithOp, CmpOp};
use rdb_plan::JoinKind;
use rdb_vector::types::date_from_ymd;
use rdb_vector::Value;

use crate::ast::*;
use crate::error::{Span, SqlError};
use crate::lexer::{lex, Tok, Token};

/// Words that terminate an implicit alias position.
const RESERVED: [&str; 36] = [
    "select", "from", "where", "group", "having", "order", "limit", "union", "all", "on", "inner",
    "left", "outer", "semi", "anti", "join", "as", "and", "or", "not", "by", "insert", "delete",
    "values", "into", "asc", "desc", "case", "when", "then", "else", "end", "is", "in", "like",
    "between",
];

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Statement, SqlError> {
    let tokens = lex(sql)?;
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        end: sql.len(),
        question_count: 0,
        depth: 0,
    };
    let stmt = p.statement()?;
    p.eat_sym(";");
    if let Some(t) = p.peek() {
        return Err(SqlError::parse(
            t.span,
            format!("unexpected trailing input: {}", p.describe(&t.tok)),
        ));
    }
    Ok(stmt)
}

/// Maximum expression nesting depth. Both the recursive-descent parser
/// and every downstream recursive consumer (binder, normalizer,
/// fingerprinting) recurse over the tree, so unbounded nesting would
/// crash the process with a stack overflow — which, unlike a panic, is
/// not catchable. Nesting beyond this is a [`SqlError`], not a crash.
const MAX_EXPR_DEPTH: usize = 64;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    end: usize,
    question_count: u32,
    depth: usize,
}

impl Parser {
    // ---- token plumbing --------------------------------------------------

    fn peek(&self) -> Option<Token> {
        self.toks.get(self.pos).cloned()
    }

    fn peek2(&self) -> Option<Token> {
        self.toks.get(self.pos + 1).cloned()
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> Span {
        self.toks
            .get(self.pos)
            .map(|t| t.span)
            .unwrap_or(Span::new(self.end, self.end))
    }

    fn prev_span(&self) -> Span {
        self.toks
            .get(self.pos.saturating_sub(1))
            .map(|t| t.span)
            .unwrap_or(Span::new(self.end, self.end))
    }

    fn describe(&self, t: &Tok) -> String {
        match t {
            Tok::Ident(s) => format!("'{s}'"),
            Tok::Number(s) => format!("number '{s}'"),
            Tok::Str(_) => "string literal".to_string(),
            Tok::Param(n) => format!("parameter ${n}"),
            Tok::Question => "'?'".to_string(),
            Tok::Sym(s) => format!("'{s}'"),
        }
    }

    fn is_kw(&self, offset: usize, word: &str) -> bool {
        matches!(
            self.toks.get(self.pos + offset),
            Some(Token { tok: Tok::Ident(s), .. }) if s.eq_ignore_ascii_case(word)
        )
    }

    fn eat_kw(&mut self, word: &str) -> bool {
        if self.is_kw(0, word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, word: &str) -> Result<Span, SqlError> {
        if self.is_kw(0, word) {
            let s = self.here();
            self.pos += 1;
            Ok(s)
        } else {
            Err(self.unexpected(&format!("expected {}", word.to_uppercase())))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token { tok: Tok::Sym(s), .. }) if s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<Span, SqlError> {
        if self.eat_sym(sym) {
            Ok(self.prev_span())
        } else {
            Err(self.unexpected(&format!("expected '{sym}'")))
        }
    }

    fn unexpected(&self, what: &str) -> SqlError {
        match self.peek() {
            Some(t) => SqlError::parse(t.span, format!("{what}, found {}", self.describe(&t.tok))),
            None => SqlError::parse(
                Span::new(self.end, self.end),
                format!("{what}, found end of input"),
            ),
        }
    }

    /// Run `f` one expression-nesting level deeper, rejecting input past
    /// [`MAX_EXPR_DEPTH`]. Guards every self-recursive expression
    /// production (parenthesized/NOT/unary chains) plus, via
    /// [`Parser::deepen`], the left-deep trees the binary-operator loops
    /// build. Depth only needs to balance on success — an error aborts
    /// the whole statement.
    fn nested<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, SqlError>,
    ) -> Result<T, SqlError> {
        self.deepen(1)?;
        let out = f(self)?;
        self.depth -= 1;
        Ok(out)
    }

    /// Account one level of tree depth; error when the statement exceeds
    /// the nesting budget.
    fn deepen(&mut self, levels: usize) -> Result<(), SqlError> {
        self.depth += levels;
        if self.depth > MAX_EXPR_DEPTH {
            return Err(SqlError::parse(
                self.here(),
                format!("expression nesting exceeds {MAX_EXPR_DEPTH} levels"),
            ));
        }
        Ok(())
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), SqlError> {
        match self.peek() {
            Some(Token {
                tok: Tok::Ident(s),
                span,
            }) => {
                self.pos += 1;
                Ok((s, span))
            }
            _ => Err(self.unexpected(what)),
        }
    }

    /// A bare alias identifier, unless the next word is reserved.
    fn maybe_alias(&mut self) -> Option<String> {
        match self.peek() {
            Some(Token {
                tok: Tok::Ident(s), ..
            }) if !RESERVED.contains(&s.to_ascii_lowercase().as_str()) => {
                self.pos += 1;
                Some(s)
            }
            _ => None,
        }
    }

    // ---- statements ------------------------------------------------------

    fn statement(&mut self) -> Result<Statement, SqlError> {
        if self.is_kw(0, "select") {
            return Ok(Statement::Select(self.select_statement()?));
        }
        if self.is_kw(0, "insert") {
            return self.insert();
        }
        if self.is_kw(0, "delete") {
            return self.delete();
        }
        Err(self.unexpected("expected SELECT, INSERT, or DELETE"))
    }

    fn select_statement(&mut self) -> Result<SelectStatement, SqlError> {
        let mut arms = vec![self.select_core()?];
        while self.is_kw(0, "union") {
            self.pos += 1;
            self.expect_kw("all")?;
            arms.push(self.select_core()?);
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.eat_kw("limit") {
            match self.advance() {
                Some(Token {
                    tok: Tok::Number(n),
                    span,
                }) => {
                    limit = Some(n.parse::<u64>().map_err(|_| {
                        SqlError::parse(
                            span,
                            format!("LIMIT must be a non-negative integer, got '{n}'"),
                        )
                    })?);
                }
                _ => return Err(self.unexpected("expected a row count after LIMIT")),
            }
        }
        Ok(SelectStatement {
            arms,
            order_by,
            limit,
        })
    }

    fn select_core(&mut self) -> Result<SelectCore, SqlError> {
        let start = self.expect_kw("select")?;
        let mut items = Vec::new();
        loop {
            if self.eat_sym("*") {
                items.push(SelectItem {
                    expr: SExpr::new(SExprKind::Star, self.prev_span()),
                    alias: None,
                });
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident("expected an alias after AS")?.0)
                } else {
                    self.maybe_alias()
                };
                items.push(SelectItem { expr, alias });
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_kw("from")?;
        let mut from = vec![self.parse_from_item()?];
        while self.eat_sym(",") {
            from.push(self.parse_from_item()?);
        }
        let where_ = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(SelectCore {
            items,
            from,
            where_,
            group_by,
            having,
            span: start.union(self.prev_span()),
        })
    }

    fn parse_from_item(&mut self) -> Result<FromItem, SqlError> {
        let first = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.is_kw(0, "join") || (self.is_kw(0, "inner") && self.is_kw(1, "join"))
            {
                self.eat_kw("inner");
                self.expect_kw("join")?;
                JoinKind::Inner
            } else if self.is_kw(0, "left") {
                self.pos += 1;
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::LeftOuter
            } else if self.is_kw(0, "semi") {
                self.pos += 1;
                self.expect_kw("join")?;
                JoinKind::Semi
            } else if self.is_kw(0, "anti") {
                self.pos += 1;
                self.expect_kw("join")?;
                JoinKind::Anti
            } else {
                break;
            };
            let table = self.table_ref()?;
            self.expect_kw("on")?;
            let on = self.expr()?;
            joins.push(JoinClause { kind, table, on });
        }
        Ok(FromItem { first, joins })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let (name, span) = self.ident("expected a table name")?;
        let args = if self.eat_sym("(") {
            let mut args = Vec::new();
            if !self.eat_sym(")") {
                loop {
                    args.push(self.expr()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
            }
            Some(args)
        } else {
            None
        };
        let alias = if self.eat_kw("as") {
            Some(self.ident("expected an alias after AS")?.0)
        } else {
            self.maybe_alias()
        };
        Ok(TableRef {
            name,
            args,
            alias,
            span,
        })
    }

    fn insert(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let (table, table_span) = self.ident("expected a table name")?;
        let mut columns = Vec::new();
        if self.eat_sym("(") {
            loop {
                let (c, s) = self.ident("expected a column name")?;
                columns.push((c, s));
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
        }
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            rows.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Statement::Insert(Insert {
            table,
            table_span,
            columns,
            rows,
        }))
    }

    fn delete(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let (table, table_span) = self.ident("expected a table name")?;
        let where_ = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete {
            table,
            table_span,
            where_,
        }))
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<SExpr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SExpr, SqlError> {
        let first = self.and_expr()?;
        if !self.is_kw(0, "or") {
            return Ok(first);
        }
        // Flat n-ary: a chain of ORs is one nesting level however long.
        self.deepen(1)?;
        let mut items = vec![first];
        while self.eat_kw("or") {
            items.push(self.and_expr()?);
        }
        self.depth -= 1;
        let span = items[0].span.union(items.last().unwrap().span);
        Ok(SExpr::new(SExprKind::Or(items), span))
    }

    fn and_expr(&mut self) -> Result<SExpr, SqlError> {
        let first = self.not_expr()?;
        if !self.is_kw(0, "and") {
            return Ok(first);
        }
        self.deepen(1)?;
        let mut items = vec![first];
        while self.eat_kw("and") {
            items.push(self.not_expr()?);
        }
        self.depth -= 1;
        let span = items[0].span.union(items.last().unwrap().span);
        Ok(SExpr::new(SExprKind::And(items), span))
    }

    fn not_expr(&mut self) -> Result<SExpr, SqlError> {
        if self.is_kw(0, "not") {
            let start = self.here();
            self.pos += 1;
            let inner = self.nested(|p| p.not_expr())?;
            let span = start.union(inner.span);
            return Ok(SExpr::new(SExprKind::Not(Box::new(inner)), span));
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<SExpr, SqlError> {
        let left = self.additive()?;
        // Comparison.
        if let Some(Token {
            tok: Tok::Sym(s), ..
        }) = self.peek()
        {
            let op = match s {
                "=" => Some(CmpOp::Eq),
                "<>" => Some(CmpOp::Ne),
                "<" => Some(CmpOp::Lt),
                "<=" => Some(CmpOp::Le),
                ">" => Some(CmpOp::Gt),
                ">=" => Some(CmpOp::Ge),
                _ => None,
            };
            if let Some(op) = op {
                self.pos += 1;
                let right = self.additive()?;
                let span = left.span.union(right.span);
                return Ok(SExpr::new(
                    SExprKind::Cmp(op, Box::new(left), Box::new(right)),
                    span,
                ));
            }
        }
        // IS [NOT] NULL.
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            let span = left.span.union(self.prev_span());
            return Ok(SExpr::new(
                SExprKind::IsNull {
                    expr: Box::new(left),
                    negated,
                },
                span,
            ));
        }
        // [NOT] LIKE / IN / BETWEEN.
        let negated = if self.is_kw(0, "not")
            && (self.is_kw(1, "like") || self.is_kw(1, "in") || self.is_kw(1, "between"))
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("like") {
            match self.advance() {
                Some(Token {
                    tok: Tok::Str(pattern),
                    span,
                }) => {
                    let span = left.span.union(span);
                    return Ok(SExpr::new(
                        SExprKind::Like {
                            expr: Box::new(left),
                            pattern,
                            negated,
                        },
                        span,
                    ));
                }
                _ => return Err(self.unexpected("expected a pattern string after LIKE")),
            }
        }
        if self.eat_kw("in") {
            self.expect_sym("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            let end = self.expect_sym(")")?;
            let span = left.span.union(end);
            return Ok(SExpr::new(
                SExprKind::InList {
                    expr: Box::new(left),
                    list,
                    negated,
                },
                span,
            ));
        }
        if self.eat_kw("between") {
            if negated {
                return Err(SqlError::parse(
                    left.span,
                    "NOT BETWEEN is not supported; write explicit comparisons",
                ));
            }
            let lo = self.additive()?;
            self.expect_kw("and")?;
            let hi = self.additive()?;
            let span = left.span.union(hi.span);
            return Ok(SExpr::new(
                SExprKind::Between {
                    expr: Box::new(left),
                    lo: Box::new(lo),
                    hi: Box::new(hi),
                },
                span,
            ));
        }
        if negated {
            return Err(self.unexpected("expected LIKE, IN, or BETWEEN after NOT"));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<SExpr, SqlError> {
        let mut left = self.multiplicative()?;
        let mut wrapped = 0;
        loop {
            let op = if self.eat_sym("+") {
                ArithOp::Add
            } else if self.eat_sym("-") {
                ArithOp::Sub
            } else {
                break;
            };
            self.deepen(1)?;
            wrapped += 1;
            let right = self.multiplicative()?;
            let span = left.span.union(right.span);
            left = SExpr::new(SExprKind::Arith(op, Box::new(left), Box::new(right)), span);
        }
        self.depth -= wrapped;
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<SExpr, SqlError> {
        let mut left = self.unary()?;
        let mut wrapped = 0;
        loop {
            let op = if self.eat_sym("*") {
                ArithOp::Mul
            } else if self.eat_sym("/") {
                ArithOp::Div
            } else {
                break;
            };
            self.deepen(1)?;
            wrapped += 1;
            let right = self.unary()?;
            let span = left.span.union(right.span);
            left = SExpr::new(SExprKind::Arith(op, Box::new(left), Box::new(right)), span);
        }
        self.depth -= wrapped;
        Ok(left)
    }

    fn unary(&mut self) -> Result<SExpr, SqlError> {
        if matches!(
            self.peek(),
            Some(Token {
                tok: Tok::Sym("-"),
                ..
            })
        ) {
            let start = self.here();
            self.pos += 1;
            let inner = self.nested(|p| p.unary())?;
            let span = start.union(inner.span);
            // Fold negation into numeric literals immediately.
            if let SExprKind::Lit(Value::Int(i)) = inner.kind {
                return Ok(SExpr::new(SExprKind::Lit(Value::Int(-i)), span));
            }
            if let SExprKind::Lit(Value::Float(f)) = inner.kind {
                return Ok(SExpr::new(SExprKind::Lit(Value::Float(-f)), span));
            }
            return Ok(SExpr::new(SExprKind::Neg(Box::new(inner)), span));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<SExpr, SqlError> {
        // One chokepoint for every bracketed recursion (parens, CASE,
        // function arguments, IN lists): active `primary_inner` frames
        // track the true nesting depth.
        self.nested(|p| p.primary_inner())
    }

    fn primary_inner(&mut self) -> Result<SExpr, SqlError> {
        let Some(t) = self.peek() else {
            return Err(self.unexpected("expected an expression"));
        };
        match t.tok {
            Tok::Number(ref n) => {
                self.pos += 1;
                let v = parse_number(n, t.span)?;
                Ok(SExpr::new(SExprKind::Lit(v), t.span))
            }
            Tok::Str(ref s) => {
                self.pos += 1;
                Ok(SExpr::new(SExprKind::Lit(Value::str(s)), t.span))
            }
            Tok::Param(ref n) => {
                self.pos += 1;
                Ok(SExpr::new(SExprKind::Param(n.clone()), t.span))
            }
            Tok::Question => {
                self.pos += 1;
                self.question_count += 1;
                Ok(SExpr::new(SExprKind::Question(self.question_count), t.span))
            }
            Tok::Sym("(") => {
                // No extra deepen: the recursion re-enters primary(),
                // which is the depth chokepoint.
                self.pos += 1;
                let e = self.expr()?;
                let end = self.expect_sym(")")?;
                Ok(SExpr::new(e.kind, t.span.union(end)))
            }
            Tok::Ident(ref word) => self.primary_ident(word.clone(), t.span),
            _ => Err(self.unexpected("expected an expression")),
        }
    }

    fn primary_ident(&mut self, word: String, span: Span) -> Result<SExpr, SqlError> {
        let lower = word.to_ascii_lowercase();
        match lower.as_str() {
            "null" => {
                self.pos += 1;
                return Ok(SExpr::new(SExprKind::Lit(Value::Null), span));
            }
            "true" => {
                self.pos += 1;
                return Ok(SExpr::new(SExprKind::Lit(Value::Bool(true)), span));
            }
            "false" => {
                self.pos += 1;
                return Ok(SExpr::new(SExprKind::Lit(Value::Bool(false)), span));
            }
            "date" => {
                if let Some(Token {
                    tok: Tok::Str(s),
                    span: sspan,
                }) = self.peek2()
                {
                    self.pos += 2;
                    let days = parse_date(&s, sspan)?;
                    return Ok(SExpr::new(
                        SExprKind::Lit(Value::Date(days)),
                        span.union(sspan),
                    ));
                }
            }
            "case" => return self.case_expr(span),
            "extract" => return self.extract_expr(span),
            "substring" => {
                if matches!(
                    self.peek2(),
                    Some(Token {
                        tok: Tok::Sym("("),
                        ..
                    })
                ) {
                    return self.substring_expr(span);
                }
            }
            _ => {}
        }
        // Reserved words cannot start an expression; rejecting them here
        // gives "expected an expression" instead of a confusing downstream
        // error about a column named e.g. 'from'.
        if RESERVED.contains(&lower.as_str()) {
            return Err(self.unexpected("expected an expression"));
        }
        // Function or aggregate call?
        if matches!(
            self.peek2(),
            Some(Token {
                tok: Tok::Sym("("),
                ..
            })
        ) {
            if AGG_NAMES.contains(&lower.as_str()) {
                return self.agg_call(lower, span);
            }
            self.pos += 2; // name (
            let mut args = Vec::new();
            if !self.eat_sym(")") {
                loop {
                    args.push(self.expr()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
            }
            let end = self.prev_span();
            return Ok(SExpr::new(
                SExprKind::Func { name: lower, args },
                span.union(end),
            ));
        }
        // Column reference, possibly qualified.
        self.pos += 1;
        if self.eat_sym(".") {
            let (name, nspan) = self.ident("expected a column name after '.'")?;
            return Ok(SExpr::new(
                SExprKind::Column {
                    qualifier: Some(word),
                    name,
                },
                span.union(nspan),
            ));
        }
        Ok(SExpr::new(
            SExprKind::Column {
                qualifier: None,
                name: word,
            },
            span,
        ))
    }

    fn agg_call(&mut self, func: String, start: Span) -> Result<SExpr, SqlError> {
        self.pos += 2; // name (
        let distinct = self.eat_kw("distinct");
        let arg = if self.eat_sym("*") {
            if func != "count" {
                return Err(SqlError::parse(
                    start,
                    format!("{func}(*) is not valid; only count(*) takes '*'"),
                ));
            }
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let end = self.expect_sym(")")?;
        if distinct && func != "count" {
            return Err(SqlError::parse(
                start.union(end),
                format!("DISTINCT is only supported inside count(), not {func}()"),
            ));
        }
        if distinct && arg.is_none() {
            return Err(SqlError::parse(
                start.union(end),
                "count(DISTINCT *) is not valid",
            ));
        }
        Ok(SExpr::new(
            SExprKind::Agg {
                func,
                distinct,
                arg,
            },
            start.union(end),
        ))
    }

    fn case_expr(&mut self, start: Span) -> Result<SExpr, SqlError> {
        self.pos += 1; // CASE
        let mut branches = Vec::new();
        while self.eat_kw("when") {
            let cond = self.expr()?;
            self.expect_kw("then")?;
            let value = self.expr()?;
            branches.push((cond, value));
        }
        if branches.is_empty() {
            return Err(self.unexpected("expected WHEN after CASE"));
        }
        let otherwise = if self.eat_kw("else") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        let end = self.expect_kw("end")?;
        Ok(SExpr::new(
            SExprKind::Case {
                branches,
                otherwise,
            },
            start.union(end),
        ))
    }

    /// `extract(year|month from expr)` sugars into `year(expr)` /
    /// `month(expr)`.
    fn extract_expr(&mut self, start: Span) -> Result<SExpr, SqlError> {
        self.pos += 1; // EXTRACT
        self.expect_sym("(")?;
        let (field, fspan) = self.ident("expected YEAR or MONTH")?;
        let name = match field.to_ascii_lowercase().as_str() {
            "year" => "year",
            "month" => "month",
            other => {
                return Err(SqlError::parse(
                    fspan,
                    format!("extract supports YEAR and MONTH, not '{other}'"),
                ))
            }
        };
        self.expect_kw("from")?;
        let arg = self.expr()?;
        let end = self.expect_sym(")")?;
        Ok(SExpr::new(
            SExprKind::Func {
                name: name.to_string(),
                args: vec![arg],
            },
            start.union(end),
        ))
    }

    /// `substring(s from a for b)` sugars into `substr(s, a, b)`.
    fn substring_expr(&mut self, start: Span) -> Result<SExpr, SqlError> {
        self.pos += 2; // substring (
        let s = self.expr()?;
        let (a, b) = if self.eat_kw("from") {
            let a = self.expr()?;
            self.expect_kw("for")?;
            let b = self.expr()?;
            (a, b)
        } else {
            self.expect_sym(",")?;
            let a = self.expr()?;
            self.expect_sym(",")?;
            let b = self.expr()?;
            (a, b)
        };
        let end = self.expect_sym(")")?;
        Ok(SExpr::new(
            SExprKind::Func {
                name: "substr".to_string(),
                args: vec![s, a, b],
            },
            start.union(end),
        ))
    }
}

fn parse_number(text: &str, span: Span) -> Result<Value, SqlError> {
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| SqlError::parse(span, format!("malformed number '{text}'")))
}

fn parse_date(text: &str, span: Span) -> Result<i32, SqlError> {
    let bad = || {
        SqlError::parse(
            span,
            format!("malformed date '{text}' (expected YYYY-MM-DD)"),
        )
    };
    let mut it = text.split('-');
    let y: i32 = it.next().and_then(|p| p.parse().ok()).ok_or_else(bad)?;
    let m: u32 = it.next().and_then(|p| p.parse().ok()).ok_or_else(bad)?;
    let d: u32 = it.next().and_then(|p| p.parse().ok()).ok_or_else(bad)?;
    if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(bad());
    }
    Ok(date_from_ymd(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(sql: &str) -> Statement {
        parse(sql).unwrap_or_else(|e| panic!("{}", e.render(sql)))
    }

    #[test]
    fn simple_select_roundtrips() {
        let s = parse_ok("SELECT a, b AS two FROM t WHERE a > 1 ORDER BY a DESC LIMIT 5");
        let text = s.to_sql();
        let again = parse_ok(&text);
        assert_eq!(text, again.to_sql());
    }

    #[test]
    fn precedence_or_and_cmp_arith() {
        let s = parse_ok("SELECT * FROM t WHERE a = 1 OR b < 2 AND c + 1 * 2 > 3");
        let Statement::Select(sel) = &s else { panic!() };
        let w = sel.arms[0].where_.as_ref().unwrap().to_sql();
        assert_eq!(w, "((a = 1) OR ((b < 2) AND ((c + (1 * 2)) > 3)))");
    }

    #[test]
    fn join_kinds_parse() {
        let s = parse_ok(
            "SELECT * FROM a INNER JOIN b ON a.x = b.y LEFT JOIN c ON a.x = c.z \
             SEMI JOIN d ON a.x = d.w",
        );
        let Statement::Select(sel) = &s else { panic!() };
        let joins = &sel.arms[0].from[0].joins;
        assert_eq!(joins.len(), 3);
        assert_eq!(joins[0].kind, JoinKind::Inner);
        assert_eq!(joins[1].kind, JoinKind::LeftOuter);
        assert_eq!(joins[2].kind, JoinKind::Semi);
    }

    #[test]
    fn comma_from_and_function_source() {
        let s = parse_ok("SELECT * FROM f(1, $r) n, t WHERE n.id = t.id");
        let Statement::Select(sel) = &s else { panic!() };
        let from = &sel.arms[0].from;
        assert_eq!(from.len(), 2);
        assert!(from[0].first.args.is_some());
        assert_eq!(from[0].first.alias.as_deref(), Some("n"));
    }

    #[test]
    fn aggregates_and_group_having() {
        let s = parse_ok("SELECT k, sum(v) AS sv, count(*) FROM t GROUP BY k HAVING sum(v) > 10");
        let Statement::Select(sel) = &s else { panic!() };
        assert!(sel.arms[0].items[1].expr.has_aggregate());
        assert!(sel.arms[0].having.is_some());
    }

    #[test]
    fn date_between_like_in_case() {
        let s = parse_ok(
            "SELECT CASE WHEN p LIKE 'PROMO%' THEN 1.0 ELSE 0.0 END FROM t \
             WHERE d BETWEEN DATE '1994-01-01' AND DATE '1994-12-31' \
             AND k IN (1, 2, 3) AND s IS NOT NULL",
        );
        let text = s.to_sql();
        assert!(text.contains("BETWEEN DATE '1994-01-01'"), "{text}");
        assert_eq!(parse_ok(&text).to_sql(), text);
    }

    #[test]
    fn placeholders_number_left_to_right() {
        let s = parse_ok("SELECT * FROM t WHERE a > ? AND b < ? AND c = $x");
        let Statement::Select(sel) = &s else { panic!() };
        let w = sel.arms[0].where_.as_ref().unwrap();
        let mut qs = Vec::new();
        fn walk(e: &SExpr, out: &mut Vec<u32>) {
            if let SExprKind::Question(n) = e.kind {
                out.push(n);
            }
            for c in e.children() {
                walk(c, out);
            }
        }
        walk(w, &mut qs);
        assert_eq!(qs, vec![1, 2]);
    }

    #[test]
    fn insert_and_delete_parse() {
        let s = parse_ok("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
        let Statement::Insert(i) = &s else { panic!() };
        assert_eq!(i.rows.len(), 2);
        assert_eq!(i.columns.len(), 2);
        let s = parse_ok("DELETE FROM t WHERE a < 0");
        assert!(matches!(s, Statement::Delete(_)));
        assert_eq!(parse_ok(&s.to_sql()).to_sql(), s.to_sql());
    }

    #[test]
    fn union_all_parses() {
        let s = parse_ok("SELECT a FROM t UNION ALL SELECT a FROM u ORDER BY a LIMIT 3");
        let Statement::Select(sel) = &s else { panic!() };
        assert_eq!(sel.arms.len(), 2);
        assert_eq!(sel.limit, Some(3));
    }

    #[test]
    fn extract_and_substring_sugar() {
        let s = parse_ok(
            "SELECT extract(year from d), substring(s from 1 for 2), substr(s, 3, 4) FROM t",
        );
        let text = s.to_sql();
        assert!(text.contains("year(d)"), "{text}");
        assert!(text.contains("substr(s, 1, 2)"), "{text}");
    }

    #[test]
    fn errors_point_at_tokens() {
        let e = parse("SELECT FROM t").unwrap_err();
        assert!(e.message.contains("expected an expression"), "{e}");
        let e = parse("SELECT a b c FROM t").unwrap_err();
        assert!(e.message.contains("expected"), "{e}");
        let e = parse("SELECT a, FROM t").unwrap_err();
        assert!(e.message.contains("expected an expression"), "{e}");
        let e = parse("SELECT a FROM t WHERE a >").unwrap_err();
        assert!(e.message.contains("end of input"), "{e}");
        let e = parse("SELECT a FROM t LIMIT x").unwrap_err();
        assert!(e.message.contains("LIMIT"), "{e}");
        let e = parse("SELECT sum(*) FROM t").unwrap_err();
        assert!(e.message.contains("count(*)"), "{e}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let e = parse("SELECT a FROM t garbage roll").unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
        // A trailing semicolon is fine.
        parse_ok("SELECT a FROM t;");
    }
}
