//! SQL frontend errors: byte spans, structured kinds, caret rendering.

use std::fmt;

use rdb_plan::{PlanError, PlanErrorKind};

/// A half-open byte range into the original SQL text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// First byte of the region.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// Construct a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both.
    pub fn union(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Structured classification of binder failures. Error *consumers* (the
/// wire protocol's SQLSTATE mapping, tooling) dispatch on this, never on
/// the message text — messages are free to change without breaking them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindErrorKind {
    /// A column name resolved to nothing in scope.
    UnknownColumn,
    /// A table name or alias resolved to nothing in scope.
    UnknownTable,
    /// A column name matched more than one relation in scope.
    AmbiguousColumn,
    /// An aggregate function name the engine does not implement.
    UnknownAggregate,
    /// Any other name-resolution or lowering failure (misplaced
    /// aggregate, unsupported construct, malformed INSERT, ...).
    Other,
}

/// What phase rejected the statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlErrorKind {
    /// Tokenization failure (bad character, unterminated string).
    Lex,
    /// The token stream does not match the grammar.
    Parse,
    /// Name resolution / lowering failure, with a structured
    /// classification of what went wrong.
    Bind(BindErrorKind),
    /// A structured plan-layer error, wrapped with the span of the SQL
    /// fragment that produced it.
    Plan(PlanErrorKind),
}

/// An error anywhere between SQL text and a bound plan. Carries the byte
/// span of the offending fragment; [`SqlError::render`] produces the
/// caret-annotated report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Which phase failed, with structure where available.
    pub kind: SqlErrorKind,
    /// Offending region of the input text.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl SqlError {
    /// Lexer error at `span`.
    pub fn lex(span: Span, message: impl Into<String>) -> SqlError {
        SqlError {
            kind: SqlErrorKind::Lex,
            span,
            message: message.into(),
        }
    }

    /// Parser error at `span`.
    pub fn parse(span: Span, message: impl Into<String>) -> SqlError {
        SqlError {
            kind: SqlErrorKind::Parse,
            span,
            message: message.into(),
        }
    }

    /// Binder error at `span`, classified as [`BindErrorKind::Other`].
    pub fn bind(span: Span, message: impl Into<String>) -> SqlError {
        SqlError::bind_as(span, BindErrorKind::Other, message)
    }

    /// Binder error at `span` with an explicit structured classification.
    pub fn bind_as(span: Span, kind: BindErrorKind, message: impl Into<String>) -> SqlError {
        SqlError {
            kind: SqlErrorKind::Bind(kind),
            span,
            message: message.into(),
        }
    }

    /// Wrap a structured plan error, attaching the span of the SQL
    /// fragment it arose from. The plan error's kind is preserved — no
    /// message re-parsing.
    pub fn from_plan(span: Span, err: PlanError) -> SqlError {
        let message = err.to_string();
        SqlError {
            kind: SqlErrorKind::Plan(err.kind),
            span,
            message,
        }
    }

    /// Render the error against the SQL text it came from: the message,
    /// the offending line, and a caret underline.
    ///
    /// ```text
    /// error: unknown column 'l_shipdat' in scan of 'lineitem'
    ///   |
    /// 1 | SELECT l_shipdat FROM lineitem
    ///   |        ^^^^^^^^^
    /// ```
    pub fn render(&self, sql: &str) -> String {
        let start = self.span.start.min(sql.len());
        let end = self.span.end.clamp(start, sql.len());
        // Locate the line containing the span start.
        let line_start = sql[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = sql[start..]
            .find('\n')
            .map(|i| start + i)
            .unwrap_or(sql.len());
        let line_no = sql[..start].bytes().filter(|&b| b == b'\n').count() + 1;
        let line = &sql[line_start..line_end];
        // Caret positions are *character* columns, not byte offsets —
        // multi-byte UTF-8 before or inside the span must not shift or
        // stretch the underline.
        let col = sql[line_start..start].chars().count();
        let width = sql[start..end.min(line_end)].chars().count().max(1);
        let gutter = line_no.to_string();
        let pad = " ".repeat(gutter.len());
        format!(
            "error: {msg}\n{pad} |\n{gutter} | {line}\n{pad} | {caret_pad}{carets}",
            msg = self.message,
            caret_pad = " ".repeat(col),
            carets = "^".repeat(width),
        )
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match &self.kind {
            SqlErrorKind::Lex => "lex",
            SqlErrorKind::Parse => "parse",
            SqlErrorKind::Bind(_) => "bind",
            SqlErrorKind::Plan(_) => "plan",
        };
        write!(
            f,
            "{phase} error at byte {}..{}: {}",
            self.span.start, self.span.end, self.message
        )
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_fragment() {
        let sql = "SELECT nope FROM t";
        let err = SqlError::bind(Span::new(7, 11), "unknown column 'nope'");
        let r = err.render(sql);
        assert!(r.contains("unknown column 'nope'"), "{r}");
        assert!(r.contains("SELECT nope FROM t"), "{r}");
        let caret_line = r.lines().last().unwrap();
        assert_eq!(caret_line.trim_end(), "  |        ^^^^");
    }

    #[test]
    fn render_counts_characters_not_bytes() {
        // 'déjà' holds two 2-byte characters before the error token; the
        // caret column must not drift right because of them.
        let sql = "SELECT 'déjà', nope FROM t";
        let start = sql.find("nope").unwrap();
        let err = SqlError::bind(Span::new(start, start + 4), "unknown column 'nope'");
        let r = err.render(sql);
        let line = r.lines().nth(2).unwrap(); // "1 | SELECT 'déjà', nope FROM t"
        let carets = r.lines().nth(3).unwrap();
        let line_col = line.chars().position(|c| c == 'n').unwrap();
        let caret_col = carets.chars().position(|c| c == '^').unwrap();
        assert_eq!(line_col, caret_col, "caret misaligned:\n{r}");
        assert_eq!(carets.matches('^').count(), 4, "{r}");
    }

    #[test]
    fn render_survives_out_of_range_spans() {
        let err = SqlError::parse(Span::new(100, 200), "truncated");
        let r = err.render("short");
        assert!(r.contains("truncated"));
    }

    #[test]
    fn render_multiline_input() {
        let sql = "SELECT a\nFROM missing_table\nWHERE a > 1";
        let err = SqlError::bind(Span::new(14, 27), "unknown table 'missing_table'");
        let r = err.render(sql);
        assert!(r.contains("2 | FROM missing_table"), "{r}");
        assert!(r.lines().last().unwrap().contains("^^^^^^^^^^^^^"), "{r}");
    }

    #[test]
    fn plan_kind_preserved() {
        let perr = rdb_plan::PlanError::unknown_table("ghost");
        let err = SqlError::from_plan(Span::new(0, 5), perr);
        match &err.kind {
            SqlErrorKind::Plan(PlanErrorKind::UnknownTable { table }) => {
                assert_eq!(table, "ghost")
            }
            other => panic!("kind not preserved: {other:?}"),
        }
    }
}
