//! Hand-written SQL lexer with byte spans.
//!
//! Produces a flat token vector (the grammar needs one token of
//! lookahead, but materializing the stream keeps the parser trivial and
//! the corpus small). Identifiers keep their original spelling; keyword
//! recognition is case-insensitive and happens in the parser.

use crate::error::{Span, SqlError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    /// Numeric literal (original spelling; parsed during lowering).
    Number(String),
    /// String literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Named placeholder `$name`.
    Param(String),
    /// Positional placeholder `?`.
    Question,
    /// Punctuation / operator.
    Sym(&'static str),
}

/// A token plus its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Byte range in the input.
    pub span: Span,
}

/// Tokenize `sql`. Line comments (`-- …`) and whitespace are skipped.
pub fn lex(sql: &str) -> Result<Vec<Token>, SqlError> {
    let b = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == b'-' && b.get(i + 1) == Some(&b'-') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == b'_' {
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push(Token {
                tok: Tok::Ident(sql[start..i].to_string()),
                span: Span::new(start, i),
            });
            continue;
        }
        // Number: digits, optional fraction, optional exponent.
        if c.is_ascii_digit() || (c == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit)) {
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            if i < b.len() && b[i] == b'.' {
                i += 1;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                let mut j = i + 1;
                if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                    j += 1;
                }
                if j < b.len() && b[j].is_ascii_digit() {
                    i = j;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            out.push(Token {
                tok: Tok::Number(sql[start..i].to_string()),
                span: Span::new(start, i),
            });
            continue;
        }
        // String literal with '' escaping.
        if c == b'\'' {
            let mut text = String::new();
            i += 1;
            loop {
                match b.get(i) {
                    None => {
                        return Err(SqlError::lex(
                            Span::new(start, b.len()),
                            "unterminated string literal",
                        ))
                    }
                    Some(b'\'') if b.get(i + 1) == Some(&b'\'') => {
                        text.push('\'');
                        i += 2;
                    }
                    Some(b'\'') => {
                        i += 1;
                        break;
                    }
                    Some(_) => {
                        // Advance one whole UTF-8 scalar.
                        let ch = sql[i..].chars().next().unwrap();
                        text.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            out.push(Token {
                tok: Tok::Str(text),
                span: Span::new(start, i),
            });
            continue;
        }
        // Named placeholder `$name`.
        if c == b'$' {
            i += 1;
            let name_start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            if i == name_start {
                return Err(SqlError::lex(
                    Span::new(start, i),
                    "expected a parameter name after '$'",
                ));
            }
            out.push(Token {
                tok: Tok::Param(sql[name_start..i].to_string()),
                span: Span::new(start, i),
            });
            continue;
        }
        if c == b'?' {
            out.push(Token {
                tok: Tok::Question,
                span: Span::new(start, start + 1),
            });
            i += 1;
            continue;
        }
        // Multi-byte operators first.
        let two = sql.get(i..i + 2).unwrap_or("");
        let sym: Option<&'static str> = match two {
            "<>" => Some("<>"),
            "<=" => Some("<="),
            ">=" => Some(">="),
            "!=" => Some("<>"), // alias
            _ => None,
        };
        if let Some(s) = sym {
            out.push(Token {
                tok: Tok::Sym(s),
                span: Span::new(start, start + 2),
            });
            i += 2;
            continue;
        }
        let one: Option<&'static str> = match c {
            b'(' => Some("("),
            b')' => Some(")"),
            b',' => Some(","),
            b'.' => Some("."),
            b'*' => Some("*"),
            b'=' => Some("="),
            b'<' => Some("<"),
            b'>' => Some(">"),
            b'+' => Some("+"),
            b'-' => Some("-"),
            b'/' => Some("/"),
            b';' => Some(";"),
            _ => None,
        };
        match one {
            Some(s) => {
                out.push(Token {
                    tok: Tok::Sym(s),
                    span: Span::new(start, start + 1),
                });
                i += 1;
            }
            None => {
                let ch = sql[i..].chars().next().unwrap();
                return Err(SqlError::lex(
                    Span::new(start, start + ch.len_utf8()),
                    format!("unexpected character {ch:?}"),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Tok> {
        lex(s).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("SELECT a, 1.5 FROM t WHERE x <= $p"),
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("a".into()),
                Tok::Sym(","),
                Tok::Number("1.5".into()),
                Tok::Ident("FROM".into()),
                Tok::Ident("t".into()),
                Tok::Ident("WHERE".into()),
                Tok::Ident("x".into()),
                Tok::Sym("<="),
                Tok::Param("p".into()),
            ]
        );
    }

    #[test]
    fn strings_escape_and_span() {
        let ts = lex("select 'it''s'").unwrap();
        assert_eq!(ts[1].tok, Tok::Str("it's".into()));
        assert_eq!(ts[1].span, Span::new(7, 14));
    }

    #[test]
    fn comments_and_not_equal_alias() {
        assert_eq!(
            toks("a != b -- trailing\n<> ?"),
            vec![
                Tok::Ident("a".into()),
                Tok::Sym("<>"),
                Tok::Ident("b".into()),
                Tok::Sym("<>"),
                Tok::Question,
            ]
        );
    }

    #[test]
    fn errors_have_spans() {
        let e = lex("select 'oops").unwrap_err();
        assert_eq!(e.span.start, 7);
        let e = lex("a # b").unwrap_err();
        assert_eq!(e.span, Span::new(2, 3));
        let e = lex("x = $").unwrap_err();
        assert!(e.message.contains("parameter name"));
    }

    #[test]
    fn exponent_numbers() {
        assert_eq!(
            toks("1e3 2.5E-2 .5"),
            vec![
                Tok::Number("1e3".into()),
                Tok::Number("2.5E-2".into()),
                Tok::Number(".5".into()),
            ]
        );
    }
}
