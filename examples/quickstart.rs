//! Quickstart: open a session, prepare a parameterized query template once,
//! execute it repeatedly with bound parameters, and stream results
//! batch-at-a-time — watching the recycler turn recomputation into cache
//! hits.
//!
//! Run with `cargo run --release --example quickstart`.

use std::sync::Arc;

use recycler_db::engine::Engine;
use recycler_db::expr::{AggFunc, Expr, Params};
use recycler_db::plan::scan;
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::{DataType, Schema, Value};

fn main() {
    // ---- 1. Load a toy fact table -------------------------------------
    let mut catalog = Catalog::new();
    let schema = Schema::from_pairs([
        ("region", DataType::Str),
        ("product", DataType::Int),
        ("amount", DataType::Float),
    ]);
    let mut t = TableBuilder::new("sales", schema, 400_000);
    for i in 0..400_000i64 {
        t.push_row(vec![
            Value::str(["north", "south", "east", "west"][(i % 4) as usize]),
            Value::Int(i % 100),
            Value::Float((i % 997) as f64 * 0.25),
        ]);
    }
    catalog.register(t.finish()).expect("register table");

    // ---- 2. Engine with recycling on (speculation mode) ----------------
    let engine = Engine::builder(Arc::new(catalog)).build();
    let session = engine.session();

    // ---- 3. Prepare a dashboard-style template once --------------------
    // The `:region` parameter is a placeholder; binding and fingerprinting
    // happen here, a single time, not per execution.
    let template = scan("sales", &["region", "product", "amount"])
        .select(Expr::name("region").eq(Expr::param("region")))
        .aggregate(
            vec![(Expr::name("product"), "product")],
            vec![
                (AggFunc::Sum(Expr::name("amount")), "total"),
                (AggFunc::CountStar, "orders"),
            ],
        );
    let prepared = session.prepare(&template).expect("template binds");
    println!(
        "prepared template (fingerprint {:016x}), parameters {:?}\n",
        prepared.fingerprint(),
        prepared.param_names()
    );

    // ---- 4. Execute with bound parameters, streaming batches -----------
    println!("run   region   wall(ms)   reused   batches   rows");
    for (run, region) in ["north", "north", "south", "north", "south"]
        .iter()
        .enumerate()
    {
        let params = Params::new().set("region", *region);
        let mut handle = prepared.execute(&params).expect("execution starts");
        let reused = handle.reused(); // known before the first batch
        let start = std::time::Instant::now();
        // Pull results vector-at-a-time: the consumer side stays pipelined.
        let mut batches = 0usize;
        let mut rows = 0usize;
        for batch in &mut handle {
            batches += 1;
            rows += batch.rows();
        }
        println!(
            "{:>3} {:>8} {:>10.3} {:>8} {:>9} {:>6}",
            run + 1,
            region,
            start.elapsed().as_secs_f64() * 1e3,
            reused,
            batches,
            rows
        );
    }

    // ---- 5. Session statistics + recycler state ------------------------
    let stats = session.stats();
    println!(
        "\nsession: {} prepared, {} executed, {} reused, {} rows streamed",
        stats.prepared, stats.executed, stats.reused, stats.rows
    );
    let recycler = engine.recycler().expect("recycling enabled");
    println!(
        "recycler graph: {} nodes; cache: {} results, {} KiB",
        recycler.graph_len(),
        recycler.cache_len(),
        recycler.cache_used() / 1024
    );
    assert!(stats.reused >= 2, "repeat executions must hit the cache");
}
