//! Quickstart: load a table, run the same analytical query repeatedly, and
//! watch the recycler turn recomputation into cache hits.
//!
//! Run with `cargo run --release --example quickstart`.

use std::sync::Arc;

use recycler_db::engine::{Engine, EngineConfig};
use recycler_db::expr::{AggFunc, Expr};
use recycler_db::plan::scan;
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::{DataType, Schema, Value};

fn main() {
    // ---- 1. Load a toy fact table -------------------------------------
    let mut catalog = Catalog::new();
    let schema = Schema::from_pairs([
        ("region", DataType::Str),
        ("product", DataType::Int),
        ("amount", DataType::Float),
    ]);
    let mut t = TableBuilder::new("sales", schema, 400_000);
    for i in 0..400_000i64 {
        t.push_row(vec![
            Value::str(["north", "south", "east", "west"][(i % 4) as usize]),
            Value::Int(i % 100),
            Value::Float((i % 997) as f64 * 0.25),
        ]);
    }
    catalog.register(t.finish());

    // ---- 2. Engine with recycling on (speculation mode) ----------------
    let engine = Engine::new(Arc::new(catalog), EngineConfig::default());

    // ---- 3. A dashboard-style aggregation ------------------------------
    let query = scan("sales", &["region", "product", "amount"])
        .select(Expr::name("region").eq(Expr::lit("north")))
        .aggregate(
            vec![(Expr::name("product"), "product")],
            vec![
                (AggFunc::Sum(Expr::name("amount")), "total"),
                (AggFunc::CountStar, "orders"),
            ],
        );

    println!("run   wall(ms)   reused   materialized   rows");
    for run in 1..=4 {
        let out = engine.run(&query).expect("query runs");
        println!(
            "{:>3} {:>10.3} {:>8} {:>14} {:>6}",
            run,
            out.wall.as_secs_f64() * 1e3,
            out.reused(),
            out.materialized(),
            out.batch.rows()
        );
    }

    let recycler = engine.recycler().expect("recycling enabled");
    println!(
        "\nrecycler graph: {} nodes; cache: {} results, {} KiB",
        recycler.graph_len(),
        recycler.cache_len(),
        recycler.cache_used() / 1024
    );
    println!(
        "reuses: {}, materializations: {}",
        recycler
            .stats
            .reuses
            .load(std::sync::atomic::Ordering::Relaxed),
        recycler
            .stats
            .materializations
            .load(std::sync::atomic::Ordering::Relaxed)
    );
}
