//! Durability walkthrough: an engine backed by a data directory survives
//! a "crash" (process drop) with every acknowledged write intact and its
//! recycler cache warm, and degrades to read-only — reads still serving —
//! when the log device fails.
//!
//! Run with `cargo run --release --example durability`.

use std::sync::Arc;

use recycler_db::engine::{DurabilityConfig, Engine, FsyncPolicy, ScriptedFault};
use recycler_db::expr::{AggFunc, Expr};
use recycler_db::plan::scan;
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::{DataType, Schema, Value};

/// Schemas are code, data is log: every boot starts from the same seed
/// catalog and recovery replays checkpoint + WAL on top of it.
fn seed_catalog() -> Arc<Catalog> {
    let mut catalog = Catalog::new();
    let schema = Schema::from_pairs([("id", DataType::Int), ("amount", DataType::Float)]);
    let mut t = TableBuilder::new("orders", schema, 50_000);
    for i in 0..50_000i64 {
        t.push_row(vec![Value::Int(i), Value::Float((i % 977) as f64 * 0.5)]);
    }
    catalog.register(t.finish()).expect("register table");
    Arc::new(catalog)
}

fn config() -> DurabilityConfig {
    DurabilityConfig {
        fsync: FsyncPolicy::Always, // sync before every ack: zero lost writes
        auto_checkpoint: false,     // checkpoint explicitly below
        ..DurabilityConfig::default()
    }
}

fn total_plan() -> recycler_db::plan::Plan {
    scan("orders", &["id", "amount"])
        .select(Expr::name("id").lt(Expr::lit(40_000i64)))
        .aggregate(vec![], vec![(AggFunc::Sum(Expr::name("amount")), "total")])
}

fn main() {
    let dir = std::env::temp_dir().join(format!("rdb-example-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- 1. First life: write, query, checkpoint, "crash" --------------
    {
        let engine = Engine::builder(seed_catalog())
            .data_dir(&dir)
            .durability(config())
            .try_build()
            .expect("first boot");
        let session = engine.session();
        session
            .append(
                "orders",
                &[
                    vec![Value::Int(100_000), Value::Float(12.5)],
                    vec![Value::Int(100_001), Value::Float(20.0)],
                ],
            )
            .expect("append is logged before it is visible");
        session
            .delete("orders", &Expr::name("id").eq(Expr::lit(0i64)))
            .expect("delete is logged too");

        // Run the dashboard query twice: the second hits the recycler.
        let plan = total_plan();
        session.query(&plan).unwrap().into_outcome();
        let again = session.query(&plan).unwrap().into_outcome();
        println!("first life : query cached = {}", again.reused());

        // Checkpoint persists the tables *and* the top-K lineage entries.
        engine.checkpoint().expect("checkpoint");
        let stats = engine.durability_stats();
        println!(
            "first life : wal_bytes = {}, checkpoint epoch = {}",
            stats.wal_bytes, stats.last_checkpoint_epoch
        );
        // Dropping the engine here is the "crash": no shutdown handshake.
    }

    // ---- 2. Second life: recover and serve warm -------------------------
    let engine = Engine::builder(seed_catalog())
        .data_dir(&dir)
        .durability(config())
        .try_build()
        .expect("recovery");
    let stats = engine.durability_stats();
    println!(
        "second life: recovered, {} lineage entries re-warmed",
        stats.recovery_warm_hits
    );
    let session = engine.session();
    let out = session.query(&total_plan()).unwrap().into_outcome();
    println!(
        "second life: first query after restart reused = {} (warm cache)",
        out.reused()
    );
    assert!(out.reused(), "lineage warming should make this a cache hit");
    drop(session);
    drop(engine);

    // ---- 3. Third life: the log device dies mid-flight ------------------
    let engine = Engine::builder(seed_catalog())
        .data_dir(&dir)
        .durability(config())
        .io_fault(Arc::new(ScriptedFault::disk_full_at(1)))
        .try_build()
        .expect("third boot");
    let session = engine.session();
    session
        .append("orders", &[vec![Value::Int(100_002), Value::Float(1.0)]])
        .expect("one write fits before the injected disk-full");
    let err = session
        .append("orders", &[vec![Value::Int(100_003), Value::Float(2.0)]])
        .expect_err("the next write hits the fault");
    println!("third life : write failed structurally: {err}");
    println!(
        "third life : engine read-only = {}, reads still serve:",
        engine.is_read_only()
    );
    let out = session.query(&total_plan()).unwrap().into_outcome();
    println!(
        "third life : query ran fine, {} result rows",
        out.batch.rows()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
