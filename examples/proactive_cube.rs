//! Proactive recycling (paper §IV-B): cube caching with selections and
//! with binning, demonstrated on Q1-style and Q19-style patterns.
//!
//! A sequence of queries that differ only in their selection parameter
//! cannot share results directly — every parameter change produces a new
//! plan. The proactive rewrites pull the selection above an aggregation
//! extended with the selection columns; the *parameter-free* inner cube is
//! then cached once and every subsequent query answers from it.
//!
//! Run with `cargo run --release --example proactive_cube`.

use std::sync::Arc;

use recycler_db::engine::Engine;
use recycler_db::expr::{AggFunc, Expr};
use recycler_db::plan::{scan, Plan};
use recycler_db::recycler::proactive::{cube_with_binning, cube_with_selections};
use recycler_db::recycler::RecyclerConfig;
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::types::date_from_ymd;
use recycler_db::vector::{DataType, Schema, Value};

fn catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new();
    let schema = Schema::from_pairs([
        ("flag", DataType::Str),
        ("mode", DataType::Str),
        ("qty", DataType::Float),
        ("ship", DataType::Date),
    ]);
    let mut t = TableBuilder::new("items", schema, 600_000);
    for i in 0..600_000i64 {
        t.push_row(vec![
            Value::str(["A", "N", "R"][(i % 3) as usize]),
            Value::str(["AIR", "RAIL", "SHIP", "TRUCK", "MAIL"][(i % 5) as usize]),
            Value::Float((i % 50) as f64 + 1.0),
            Value::Date(date_from_ymd(
                1993 + (i % 5) as i32,
                1 + (i % 12) as u32,
                15,
            )),
        ]);
    }
    cat.register(t.finish()).expect("register table");
    Arc::new(cat)
}

/// Q1-style: aggregate under a sliding date bound.
fn date_query(day: i32) -> Plan {
    scan("items", &["flag", "qty", "ship"])
        .select(Expr::name("ship").le(Expr::lit(Value::Date(day))))
        .aggregate(
            vec![(Expr::name("flag"), "flag")],
            vec![
                (AggFunc::Sum(Expr::name("qty")), "sum_qty"),
                (AggFunc::Avg(Expr::name("qty")), "avg_qty"),
                (AggFunc::CountStar, "n"),
            ],
        )
}

/// Q19-style: aggregate under a categorical selection.
fn mode_query(mode: &str) -> Plan {
    scan("items", &["flag", "mode", "qty"])
        .select(Expr::name("mode").eq(Expr::lit(mode)))
        .aggregate(
            vec![(Expr::name("flag"), "flag")],
            vec![(AggFunc::Sum(Expr::name("qty")), "sum_qty")],
        )
}

fn run_series(engine: &Arc<Engine>, plans: &[Plan], label: &str) {
    let session = engine.session();
    let t0 = std::time::Instant::now();
    let mut reused = 0;
    for p in plans {
        if session.query(p).expect("runs").into_outcome().reused() {
            reused += 1;
        }
    }
    println!(
        "{label:<28} {:>8.1} ms, {reused}/{} reused",
        t0.elapsed().as_secs_f64() * 1e3,
        plans.len()
    );
}

fn main() {
    let cat = catalog();
    let mk_engine = || {
        let mut c = RecyclerConfig::speculative(128 * 1024 * 1024);
        c.spec_min_progress = 0.0;
        Engine::builder(cat.clone()).recycler(c).build()
    };

    // Eight parameter variants per pattern — no two identical.
    let dates: Vec<Plan> = (0..8)
        .map(|i| {
            date_query(date_from_ymd(1994 + i % 4, 3 + (i as u32 % 6), 1))
                .bind(&cat)
                .unwrap()
        })
        .collect();
    let modes: Vec<Plan> = [
        "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "AIR", "RAIL", "SHIP",
    ]
    .iter()
    .map(|m| mode_query(m).bind(&cat).unwrap())
    .collect();

    println!("-- date-bounded aggregation (Q1 shape) --");
    run_series(&mk_engine(), &dates, "plain plans");
    let proactive: Vec<Plan> = dates
        .iter()
        .map(|p| cube_with_binning(p).expect("binning applies"))
        .collect();
    run_series(&mk_engine(), &proactive, "cube caching w/ binning");

    println!("\n-- categorical selection (Q19 shape) --");
    run_series(&mk_engine(), &modes, "plain plans");
    let proactive: Vec<Plan> = modes
        .iter()
        .map(|p| cube_with_selections(p).expect("cube applies"))
        .collect();
    run_series(&mk_engine(), &proactive, "cube caching w/ selections");

    println!(
        "\nThe proactive variants pay once to build the parameter-free cube,\n\
         then answer every later parameter variant from the cache (paper\n\
         §IV-B / Fig. 5)."
    );
}
