//! A minimal interactive SQL REPL over a session.
//!
//! Run with `cargo run --release --example sql_repl`. The engine loads a
//! small TPC-H catalog (scale it with `RDB_SF`); type SQL statements at
//! the prompt — `SELECT` streams rows, `INSERT` / `DELETE` commit through
//! the DML path and report what the recycler invalidated. Meta-commands:
//!
//! ```text
//! \explain <sql>   show the normalized plan with per-node fingerprints
//!                  and recycler state (cached / in-flight / cold)
//! \stats           session + recycler counters
//! \tables          catalog contents
//! \quit            exit (EOF works too)
//! ```

use std::io::{self, BufRead, Write};

use recycler_db::engine::{Engine, SqlOutcome};
use recycler_db::expr::Params;
use recycler_db::tpch::{generate, TpchConfig};

const MAX_PRINT_ROWS: usize = 20;

fn main() {
    let scale = std::env::var("RDB_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    eprintln!("loading TPC-H catalog at SF {scale} …");
    let catalog = generate(&TpchConfig { scale, seed: 42 });
    let engine = Engine::builder(catalog).build();
    let session = engine.session();
    eprintln!("ready. \\quit exits, \\explain <sql> shows recycler state.");

    let stdin = io::stdin();
    let mut out = io::stdout();
    loop {
        print!("sql> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\quit" || line == "\\q" {
            break;
        }
        if line == "\\stats" {
            let s = session.stats();
            println!(
                "prepared {}  executed {}  reused {}  rows {}  writes {}  wall {:?}",
                s.prepared, s.executed, s.reused, s.rows, s.writes, s.wall
            );
            if let Some(r) = engine.recycler() {
                println!(
                    "recycler: {} graph nodes, {} cached results, {} bytes",
                    r.graph_len(),
                    r.cache_len(),
                    r.cache_used()
                );
            }
            continue;
        }
        if line == "\\tables" {
            let mut names = engine.catalog().table_names();
            names.sort();
            for n in names {
                println!(
                    "{n}  ({} rows)  {}",
                    engine.catalog().get(n).map(|t| t.rows()).unwrap_or(0),
                    engine
                        .catalog()
                        .schema_of(n)
                        .map(|s| s.to_string())
                        .unwrap_or_default(),
                );
            }
            continue;
        }
        if let Some(sql) = line.strip_prefix("\\explain ") {
            match session.prepare_sql(sql) {
                Ok(prepared) => print!("{}", prepared.explain()),
                Err(e) => println!("{}", e.render(sql)),
            }
            continue;
        }
        match session.sql(line, &Params::none()) {
            Err(e) => println!("{}", e.render(line)),
            Ok(SqlOutcome::Write(w)) => {
                println!(
                    "ok: {} rows affected in '{}' (epoch {}, {} cache entries invalidated)",
                    w.rows_affected,
                    w.table,
                    w.epoch,
                    w.invalidated.len()
                );
            }
            Ok(SqlOutcome::Rows(handle)) => {
                let names: Vec<String> = handle
                    .schema()
                    .names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                println!("{}", names.join(" | "));
                let reused_upfront = handle.reused();
                let mut printed = 0usize;
                let mut total = 0usize;
                for batch in handle {
                    for row in batch.to_rows() {
                        total += 1;
                        if printed < MAX_PRINT_ROWS {
                            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                            println!("{}", cells.join(" | "));
                            printed += 1;
                        }
                    }
                }
                if total > printed {
                    println!("… {} more rows", total - printed);
                }
                println!(
                    "({total} rows{})",
                    if reused_upfront { ", recycled" } else { "" }
                );
            }
        }
    }
}
