//! TPC-H throughput runs in the paper's four modes (OFF / HIST / SPEC /
//! PA) — a small-scale version of Figure 7.
//!
//! Run with `cargo run --release --example tpch_throughput`.

use recycler_db::engine::Engine;
use recycler_db::recycler::{RecyclerConfig, RecyclerMode};
use recycler_db::tpch::{generate, make_streams, StreamOptions, TpchConfig};

fn main() {
    let sf = 0.01;
    let streams = 8;
    let catalog = generate(&TpchConfig {
        scale: sf,
        seed: 2013,
    });
    println!(
        "TPC-H SF {sf}: lineitem {} rows, {streams} streams x 22 queries",
        catalog.get("lineitem").unwrap().rows()
    );
    println!(
        "\n{:>6} {:>14} {:>12} {:>10} {:>8}",
        "mode", "avg ms/stream", "vs OFF", "reuses", "stores"
    );

    let mut off_time = 0.0;
    for mode in ["OFF", "HIST", "SPEC", "PA"] {
        let opts = if mode == "PA" {
            StreamOptions::new(streams, sf).proactive()
        } else {
            StreamOptions::new(streams, sf)
        };
        let workload = make_streams(&catalog, &opts);
        let builder = Engine::builder(catalog.clone());
        let engine = match mode {
            "OFF" => builder.no_recycler(),
            other => {
                let mut c = RecyclerConfig::speculative(256 * 1024 * 1024);
                c.spec_min_progress = 0.0;
                if other == "HIST" {
                    c.mode = RecyclerMode::History;
                }
                builder.recycler(c)
            }
        }
        .build();
        let report = engine.run_streams(&workload);
        let avg = report.avg_stream_time().as_secs_f64() * 1e3;
        if mode == "OFF" {
            off_time = avg;
        }
        let (reuses, stores) = engine
            .recycler()
            .map(|r| {
                (
                    r.stats.reuses.load(std::sync::atomic::Ordering::Relaxed),
                    r.stats
                        .materializations
                        .load(std::sync::atomic::Ordering::Relaxed),
                )
            })
            .unwrap_or((0, 0));
        println!(
            "{:>6} {:>14.1} {:>11.1}% {:>10} {:>8}",
            mode,
            avg,
            100.0 * (1.0 - avg / off_time),
            reuses,
            stores
        );
    }
    println!("\n(The improvement grows with the stream count; see the fig7 bench.)");
}
