//! SkyServer-style session: an interactive astronomy workload whose
//! queries share one expensive cone search (`fGetNearbyObjEq`), as in the
//! paper's real-world experiment (Fig. 6).
//!
//! Run with `cargo run --release --example skyserver_session`.

use recycler_db::engine::{Engine, EngineConfig, MaterializingEngine};
use recycler_db::recycler::RecyclerConfig;
use recycler_db::skyserver::{functions, generate, make_session, SessionOptions, SkyConfig};

fn main() {
    let config = SkyConfig { objects: 30_000, seed: 1 };
    let session = make_session(&SessionOptions::default());
    println!(
        "synthetic sky catalog: {} objects; session: {} queries",
        config.objects,
        session.len()
    );

    // Pipelined engine, no recycling.
    let cat = generate(&config);
    let engine = Engine::with_functions(cat.clone(), functions(&cat), EngineConfig::off());
    let t0 = std::time::Instant::now();
    for q in &session {
        engine.run(&q.plan).expect("query runs");
    }
    let naive = t0.elapsed();

    // Pipelined engine with the recycler.
    let cat = generate(&config);
    let mut rc = RecyclerConfig::speculative(64 * 1024 * 1024);
    rc.spec_min_progress = 0.0;
    let engine = Engine::with_functions(cat.clone(), functions(&cat), EngineConfig::with_recycler(rc));
    let t0 = std::time::Instant::now();
    let mut reused = 0;
    for q in &session {
        if engine.run(&q.plan).expect("query runs").reused() {
            reused += 1;
        }
    }
    let recycled = t0.elapsed();

    // MonetDB-style engine with keep-everything recycling.
    let cat = generate(&config);
    let mat = MaterializingEngine::recycling(cat.clone(), None).with_functions(functions(&cat));
    let t0 = std::time::Instant::now();
    for q in &session {
        mat.run(&q.plan).expect("query runs");
    }
    let mat_time = t0.elapsed();

    println!("\npipelined naive:      {:>8.1} ms", naive.as_secs_f64() * 1e3);
    println!(
        "pipelined recycler:   {:>8.1} ms ({:.1}% of naive, {reused}/{} queries reused)",
        recycled.as_secs_f64() * 1e3,
        100.0 * recycled.as_secs_f64() / naive.as_secs_f64(),
        session.len()
    );
    println!(
        "monetdb-style w/ rec: {:>8.1} ms (cache holds {} intermediates, {} KiB)",
        mat_time.as_secs_f64() * 1e3,
        mat.cache_len(),
        mat.cache_used() / 1024
    );
    let r = engine.recycler().unwrap();
    println!(
        "\npipelined recycler cache: {} results, {} KiB — the paper's point:\n\
         selective materialization needs orders of magnitude less memory\n\
         than keeping every intermediate.",
        r.cache_len(),
        r.cache_used() / 1024
    );
}
