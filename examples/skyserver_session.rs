//! SkyServer-style session: an interactive astronomy workload whose
//! queries share one expensive cone search (`fGetNearbyObjEq`), as in the
//! paper's real-world experiment (Fig. 6) — run through the prepared-
//! statement session API: the two query templates are prepared once, every
//! log entry binds cone parameters and executes.
//!
//! Run with `cargo run --release --example skyserver_session`.

use recycler_db::engine::{Engine, MaterializingEngine, Prepared};
use recycler_db::recycler::RecyclerConfig;
use recycler_db::skyserver::{
    functions, generate, make_prepared_session, make_session, session_templates, SessionOptions,
    SessionTemplate, SkyConfig,
};

fn main() {
    let config = SkyConfig {
        objects: 30_000,
        seed: 1,
    };
    let log = make_prepared_session(&SessionOptions::default());
    println!(
        "synthetic sky catalog: {} objects; session: {} queries over 2 prepared templates",
        config.objects,
        log.len()
    );

    let run_prepared = |recycling: Option<RecyclerConfig>| {
        let cat = generate(&config);
        let builder = Engine::builder(cat.clone()).functions(functions(&cat));
        let engine = match recycling {
            Some(rc) => builder.recycler(rc),
            None => builder.no_recycler(),
        }
        .build();
        let session = engine.session();
        let (wide, narrow) = session_templates();
        let wide = session.prepare(&wide).expect("wide template");
        let narrow = session.prepare(&narrow).expect("narrow template");
        let pick = |t: SessionTemplate| -> &Prepared {
            match t {
                SessionTemplate::Wide => &wide,
                SessionTemplate::Narrow => &narrow,
            }
        };
        let t0 = std::time::Instant::now();
        for q in &log {
            pick(q.template)
                .execute(&q.params)
                .expect("query runs")
                .into_outcome();
        }
        (t0.elapsed(), session.stats(), engine)
    };

    // Pipelined engine, no recycling.
    let (naive, _, _) = run_prepared(None);

    // Pipelined engine with the recycler.
    let mut rc = RecyclerConfig::speculative(64 * 1024 * 1024);
    rc.spec_min_progress = 0.0;
    let (recycled, stats, engine) = run_prepared(Some(rc));

    // MonetDB-style engine with keep-everything recycling (consumes the
    // same log with parameters substituted).
    let session = make_session(&SessionOptions::default());
    let cat = generate(&config);
    let mat = MaterializingEngine::recycling(cat.clone(), None).with_functions(functions(&cat));
    let t0 = std::time::Instant::now();
    for q in &session {
        mat.run(&q.plan).expect("query runs");
    }
    let mat_time = t0.elapsed();

    println!(
        "\npipelined naive:      {:>8.1} ms",
        naive.as_secs_f64() * 1e3
    );
    println!(
        "pipelined recycler:   {:>8.1} ms ({:.1}% of naive, {}/{} queries reused)",
        recycled.as_secs_f64() * 1e3,
        100.0 * recycled.as_secs_f64() / naive.as_secs_f64(),
        stats.reused,
        stats.executed
    );
    println!(
        "monetdb-style w/ rec: {:>8.1} ms (cache holds {} intermediates, {} KiB)",
        mat_time.as_secs_f64() * 1e3,
        mat.cache_len(),
        mat.cache_used() / 1024
    );
    let r = engine.recycler().unwrap();
    println!(
        "\npipelined recycler cache: {} results, {} KiB — the paper's point:\n\
         selective materialization needs orders of magnitude less memory\n\
         than keeping every intermediate.",
        r.cache_len(),
        r.cache_used() / 1024
    );
}
