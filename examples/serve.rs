//! Serve a TPC-H catalog over the Postgres wire protocol.
//!
//! Run with `cargo run --release --example serve [addr]` (default
//! `127.0.0.1:5433`; scale the catalog with `RDB_SF`). Any pgwire client
//! in cleartext text mode can then connect, e.g.:
//!
//! ```text
//! psql "host=127.0.0.1 port=5433 sslmode=disable" \
//!     -c "SELECT count(*) FROM lineitem"
//! psql ... -c "SELECT * FROM rdb_stats()"
//! ```
//!
//! The server runs until stdin reaches EOF (Ctrl-D, or the parent
//! closing the pipe), then drains gracefully: in-flight statements
//! finish, idle connections get a `57P01` goodbye.

use std::io::Read;
use std::time::Duration;

use recycler_db::server::ServerBuilder;
use recycler_db::tpch::{generate, TpchConfig};

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:5433".to_string());
    let scale = std::env::var("RDB_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    eprintln!("loading TPC-H catalog at SF {scale} …");
    let catalog = generate(&TpchConfig { scale, seed: 42 });

    let mut server = ServerBuilder::new(catalog)
        .addr(addr)
        .parallelism(std::thread::available_parallelism().map_or(1, |n| n.get()))
        .serve()
        .expect("bind listener");
    // Printed on stdout so scripts can scrape the port.
    println!("listening on {}", server.local_addr());
    eprintln!("recycling is on; try SELECT * FROM rdb_stats(). Ctrl-D stops.");

    // Park until stdin closes.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);

    eprintln!("draining …");
    server.shutdown(Duration::from_secs(10));
    let stats = server.stats();
    eprintln!(
        "served {} statements over {} connections, recycler hit rate {:.1}%",
        stats.statements,
        stats.connections_total,
        stats.hit_rate() * 100.0
    );
}
