//! End-to-end integration tests spanning the whole workspace: engine +
//! recycler + executor + workloads.

use std::sync::Arc;

use recycler_db::engine::{Engine, MaterializingEngine, QueryOutcome, WorkloadQuery};
use recycler_db::expr::{AggFunc, Expr};
use recycler_db::plan::{scan, Plan, SortKeyExpr};
use recycler_db::recycler::proactive::{cube_with_binning, cube_with_selections, widen_top_n};
use recycler_db::recycler::{RecyclerConfig, RecyclerMode};
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::types::date_from_ymd;
use recycler_db::vector::{DataType, Schema, Value};

fn catalog(rows: i64) -> Arc<Catalog> {
    let mut cat = Catalog::new();
    let schema = Schema::from_pairs([
        ("k", DataType::Int),
        ("v", DataType::Float),
        ("d", DataType::Date),
        ("tag", DataType::Str),
    ]);
    let mut b = TableBuilder::new("facts", schema, rows as usize);
    for i in 0..rows {
        b.push_row(vec![
            Value::Int(i % 40),
            Value::Float((i % 211) as f64 * 0.5),
            Value::Date(date_from_ymd(1993 + (i % 5) as i32, 1 + (i % 12) as u32, 7)),
            Value::str(["x", "y", "z"][(i % 3) as usize]),
        ]);
    }
    cat.register(b.finish()).expect("register table");
    Arc::new(cat)
}

fn det_engine(cat: Arc<Catalog>, cache: u64) -> Arc<Engine> {
    let mut c = RecyclerConfig::deterministic(cache);
    c.spec_min_progress = 0.0;
    Engine::builder(cat).recycler(c).build()
}

/// Execute a plan to completion through the session API.
fn run(engine: &Arc<Engine>, plan: &Plan) -> QueryOutcome {
    engine
        .session()
        .query(plan)
        .expect("query runs")
        .into_outcome()
}

fn agg(limit: i64) -> Plan {
    scan("facts", &["k", "v"])
        .select(Expr::name("k").lt(Expr::lit(limit)))
        .aggregate(
            vec![(Expr::name("k"), "k")],
            vec![
                (AggFunc::Sum(Expr::name("v")), "sv"),
                (AggFunc::CountStar, "n"),
            ],
        )
}

#[test]
fn recycled_results_are_bit_identical_to_fresh_ones() {
    let cat = catalog(50_000);
    let off = Engine::builder(cat.clone()).no_recycler().build();
    let on = det_engine(cat, 1 << 24);
    for limit in [5, 10, 20, 10, 5, 20, 10] {
        let q = agg(limit);
        let a = run(&off, &q);
        let b = run(&on, &q);
        let mut ra = a.batch.to_rows();
        let mut rb = b.batch.to_rows();
        ra.sort_by(|x, y| x[0].cmp(&y[0]));
        rb.sort_by(|x, y| x[0].cmp(&y[0]));
        assert_eq!(ra, rb, "recycled answer differs for limit {limit}");
    }
}

#[test]
fn subsumption_reuses_wider_selection() {
    let cat = catalog(50_000);
    let engine = det_engine(cat.clone(), 1 << 24);
    // Wide selection first (cached by speculation: it feeds an aggregate;
    // materialize its child too by asking for the select subtree result
    // through an aggregate root).
    let wide = scan("facts", &["k", "v"])
        .select(Expr::name("k").lt(Expr::lit(30)))
        .aggregate(vec![], vec![(AggFunc::CountStar, "n")]);
    run(&engine, &wide);
    run(&engine, &wide); // second run: select node seen before
    run(&engine, &wide); // history materializes the select subtree
                         // A strictly narrower selection with a *different* aggregate: the
                         // select node has no exact cached result, but k<10 ⇒ k<30.
    let narrow = scan("facts", &["k", "v"])
        .select(Expr::name("k").lt(Expr::lit(10)))
        .aggregate(vec![], vec![(AggFunc::Sum(Expr::name("v")), "s")]);
    let out = run(&engine, &narrow);
    let expected = run(&Engine::builder(cat).no_recycler().build(), &narrow);
    assert_eq!(out.batch.to_rows(), expected.batch.to_rows());
    // Either the wide select was reused via subsumption, or (if the cache
    // chose different nodes) the narrow query at least ran correctly.
    let subs = engine
        .recycler()
        .unwrap()
        .stats
        .subsumption_reuses
        .load(std::sync::atomic::Ordering::Relaxed);
    let reuses = engine
        .recycler()
        .unwrap()
        .stats
        .reuses
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(subs + reuses > 0, "some reuse must have happened");
}

#[test]
fn topn_widening_end_to_end() {
    let cat = catalog(50_000);
    let engine = det_engine(cat.clone(), 1 << 24);
    let base = || scan("facts", &["k", "v"]).top_n(vec![SortKeyExpr::desc(Expr::name("v"))], 10);
    // Proactively widened first query caches the 1000-row top-N.
    let bound = base().bind(&cat).unwrap();
    let widened = widen_top_n(&bound, 1000).unwrap();
    run(&engine, &widened);
    // A later page request (top-50, same ordering) has no exact match but
    // is subsumed by the cached wide top-N.
    let page = scan("facts", &["k", "v"])
        .top_n(vec![SortKeyExpr::desc(Expr::name("v"))], 50)
        .bind(&cat)
        .unwrap();
    let out = run(&engine, &page);
    let expected = run(&Engine::builder(cat).no_recycler().build(), &page);
    assert_eq!(out.batch.rows(), 50);
    assert_eq!(
        out.batch.column(1).as_floats(),
        expected.batch.column(1).as_floats()
    );
    assert!(out.reused(), "page should reuse the widened top-N");
}

#[test]
fn proactive_rewrites_preserve_results_under_recycling() {
    let cat = catalog(80_000);
    let off = Engine::builder(cat.clone()).no_recycler().build();
    let engine = det_engine(cat.clone(), 1 << 26);
    for (i, day) in [(0, 1), (1, 6), (2, 3)] {
        let q = scan("facts", &["tag", "v", "d"])
            .select(Expr::name("d").le(Expr::lit(Value::Date(date_from_ymd(1994 + i, day, 15)))))
            .aggregate(
                vec![(Expr::name("tag"), "tag")],
                vec![
                    (AggFunc::Sum(Expr::name("v")), "sv"),
                    (AggFunc::Avg(Expr::name("v")), "av"),
                ],
            )
            .bind(&cat)
            .unwrap();
        let rewritten = cube_with_binning(&q).expect("binning applies");
        let a = run(&off, &q);
        let b = run(&engine, &rewritten);
        let mut ra = a.batch.to_rows();
        let mut rb = b.batch.to_rows();
        ra.sort_by(|x, y| x[0].cmp(&y[0]));
        rb.sort_by(|x, y| x[0].cmp(&y[0]));
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x[0], y[0]);
            for c in 1..x.len() {
                let (fx, fy) = (x[c].as_float().unwrap(), y[c].as_float().unwrap());
                assert!((fx - fy).abs() < 1e-6, "{fx} vs {fy}");
            }
        }
    }
    // The shared year-cube should be in the cache after the first query.
    assert!(engine.recycler().unwrap().cache_len() >= 1);

    // Same check for cube-with-selections.
    for tag in ["x", "y", "x"] {
        let q = scan("facts", &["tag", "v"])
            .select(Expr::name("tag").eq(Expr::lit(tag)))
            .aggregate(vec![], vec![(AggFunc::Sum(Expr::name("v")), "sv")])
            .bind(&cat)
            .unwrap();
        let rewritten = cube_with_selections(&q).expect("cube applies");
        let a = run(&off, &q);
        let b = run(&engine, &rewritten);
        let fa = a.batch.row(0)[0].as_float().unwrap();
        let fb = b.batch.row(0)[0].as_float().unwrap();
        assert!((fa - fb).abs() < 1e-6);
    }
}

#[test]
fn cache_pressure_evicts_but_stays_correct() {
    let cat = catalog(60_000);
    // A cache too small for everything: ~8 KiB.
    let engine = det_engine(cat.clone(), 8 * 1024);
    let off = Engine::builder(cat).no_recycler().build();
    for round in 0..3 {
        for limit in [5, 10, 15, 20, 25, 30] {
            let q = agg(limit);
            let a = run(&engine, &q);
            let b = run(&off, &q);
            let mut ra = a.batch.to_rows();
            let mut rb = b.batch.to_rows();
            ra.sort_by(|x, y| x[0].cmp(&y[0]));
            rb.sort_by(|x, y| x[0].cmp(&y[0]));
            assert_eq!(ra, rb, "round {round} limit {limit}");
        }
    }
    let r = engine.recycler().unwrap();
    assert!(r.cache_used() <= 8 * 1024, "cache respects its budget");
}

#[test]
fn concurrent_streams_with_stalls_produce_correct_results() {
    let cat = catalog(120_000);
    let engine = det_engine(cat.clone(), 1 << 26);
    let q = agg(12);
    let expected = run(&Engine::builder(cat).no_recycler().build(), &q)
        .batch
        .to_rows();
    let streams: Vec<Vec<WorkloadQuery>> = (0..8)
        .map(|_| vec![WorkloadQuery::new("A", q.clone()); 2])
        .collect();
    let report = engine.run_streams(&streams);
    assert_eq!(report.records.len(), 16);
    // Every query got the same answer (verified via one representative).
    let out = run(&engine, &q);
    let mut got = out.batch.to_rows();
    let mut exp = expected;
    got.sort_by(|x, y| x[0].cmp(&y[0]));
    exp.sort_by(|x, y| x[0].cmp(&y[0]));
    assert_eq!(got, exp);
    // Sharing happened: at least half the queries reused.
    let reused = report.records.iter().filter(|r| r.reused).count();
    assert!(reused >= 8, "expected extensive reuse, got {reused}");
}

#[test]
fn history_mode_never_speculates() {
    let cat = catalog(30_000);
    let mut c = RecyclerConfig::deterministic(1 << 24);
    c.mode = RecyclerMode::History;
    let engine = Engine::builder(cat).recycler(c).build();
    let out = run(&engine, &agg(7));
    assert!(!out.materialized());
    assert!(out.events.iter().all(|e| !matches!(
        e,
        recycler_db::recycler::RecyclerEvent::StoreInjected { .. }
    )));
}

#[test]
fn pipelined_and_materializing_engines_agree() {
    let cat = catalog(40_000);
    let pipe = Engine::builder(cat.clone()).no_recycler().build();
    let mat = MaterializingEngine::recycling(cat, None);
    for limit in [3, 9, 27] {
        let q = agg(limit);
        let a = run(&pipe, &q).batch.to_rows();
        let b = mat.run(&q).unwrap().batch.to_rows();
        let mut a = a;
        let mut b = b;
        a.sort_by(|x, y| x[0].cmp(&y[0]));
        b.sort_by(|x, y| x[0].cmp(&y[0]));
        assert_eq!(a, b);
    }
}

#[test]
fn flush_between_batches_mirrors_updates() {
    let cat = catalog(30_000);
    let engine = det_engine(cat, 1 << 24);
    let q = agg(11);
    run(&engine, &q);
    let warm = run(&engine, &q);
    assert!(warm.reused());
    engine.flush_cache();
    let cold = run(&engine, &q);
    assert!(!cold.reused(), "flush invalidates all cached results");
    let warm_again = run(&engine, &q);
    assert!(warm_again.reused(), "recycling resumes after the flush");
}

#[test]
fn tpch_smoke_with_recycling_matches_off() {
    use recycler_db::tpch::{generate, make_streams, StreamOptions, TpchConfig};
    let catalog = generate(&TpchConfig {
        scale: 0.002,
        seed: 5,
    });
    let streams = make_streams(&catalog, &StreamOptions::new(2, 0.002));
    let off = Engine::builder(catalog.clone()).no_recycler().build();
    let mut c = RecyclerConfig::speculative(1 << 26);
    c.spec_min_progress = 0.0;
    let on = Engine::builder(catalog).recycler(c).build();
    for q in streams.iter().flatten() {
        let a = run(&off, &q.plan);
        let b = run(&on, &q.plan);
        assert_eq!(
            a.batch.rows(),
            b.batch.rows(),
            "{} row count differs",
            q.label
        );
    }
}
