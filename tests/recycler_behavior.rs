//! Behavioural scenario tests for the recycler: workload adaptation,
//! starvation resistance, store-decision discipline, and event reporting.

use std::sync::Arc;

use recycler_db::engine::{Engine, QueryOutcome};
use recycler_db::expr::{AggFunc, Expr};
use recycler_db::plan::{scan, Plan};
use recycler_db::recycler::{RecyclerConfig, RecyclerEvent};
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::{DataType, Schema, Value};

fn catalog(rows: i64) -> Arc<Catalog> {
    let mut cat = Catalog::new();
    let schema = Schema::from_pairs([("k", DataType::Int), ("v", DataType::Float)]);
    let mut b = TableBuilder::new("facts", schema, rows as usize);
    for i in 0..rows {
        b.push_row(vec![Value::Int(i % 64), Value::Float((i % 171) as f64)]);
    }
    cat.register(b.finish()).expect("register table");
    Arc::new(cat)
}

fn engine(cat: Arc<Catalog>, cache: u64, alpha: f64) -> Arc<Engine> {
    let mut c = RecyclerConfig::deterministic(cache);
    c.spec_min_progress = 0.0;
    c.aging_alpha = alpha;
    // The displacement scenarios below run with caches of a few dozen
    // bytes; a single result may occupy all of it.
    c.max_result_fraction = 1.0;
    Engine::builder(cat).recycler(c).build()
}

/// Execute a plan to completion through the session API.
fn run(engine: &Arc<Engine>, plan: &Plan) -> QueryOutcome {
    engine
        .session()
        .query(plan)
        .expect("query runs")
        .into_outcome()
}

/// Size of `q`'s cached root result, measured with an effectively unbounded
/// cache.
fn result_size(cat: &Arc<Catalog>, q: &Plan) -> u64 {
    let e = engine(cat.clone(), 1 << 24, 1.0);
    run(&e, q);
    e.recycler().unwrap().cache_used()
}

fn q(limit: i64) -> Plan {
    scan("facts", &["k", "v"])
        .select(Expr::name("k").lt(Expr::lit(limit)))
        .aggregate(
            vec![(Expr::name("k"), "k")],
            vec![(AggFunc::Sum(Expr::name("v")), "sv")],
        )
}

/// Aging lets the recycler adapt to a workload shift (paper Eq. 5): after
/// phase A's pattern stops appearing, phase B's pattern must be able to
/// displace it even though A accumulated many references historically.
#[test]
fn aging_adapts_to_workload_shift() {
    let cat = catalog(40_000);
    // Tiny cache: fits the incoming pattern's result, but not both
    // patterns' results at once — phase B can only be cached by displacing
    // phase A's incumbent.
    let probe_size = result_size(&cat, &q(2));
    let e = engine(cat, probe_size + probe_size / 4, 0.5);
    // Phase A: q(1) runs many times, builds a large reference count.
    for _ in 0..6 {
        run(&e, &q(1));
    }
    // Phase B: the workload shifts entirely to q(2).
    let mut reused_late = false;
    for i in 0..12 {
        let out = run(&e, &q(2));
        if i >= 6 {
            reused_late |= out.reused();
        }
    }
    assert!(
        reused_late,
        "after the shift, the new pattern must eventually be cached and reused"
    );
}

/// New results are not starved by incumbents: the paper criticises systems
/// that "only manage reference statistics for already materialized
/// results, which may lead to starvation". Here a newcomer with a higher
/// benefit must displace a low-benefit incumbent even when the cache is
/// full.
#[test]
fn no_starvation_of_new_results() {
    let cat = catalog(60_000);
    // Cache fits roughly one result of the newcomer's size.
    let probe = result_size(&cat, &q(3));
    let e = engine(cat, probe + probe / 4, 1.0);
    run(&e, &q(1)); // incumbent cached (speculation)
                    // A different, similarly-sized result referenced repeatedly: its
                    // history benefit grows with each occurrence until it wins the
                    // replacement comparison.
    let mut reused = false;
    for _ in 0..8 {
        reused |= run(&e, &q(3)).reused();
    }
    assert!(
        reused,
        "repeatedly-referenced newcomer must displace the incumbent"
    );
}

/// Store operators are never injected under a reused (cached) subtree, and
/// a query reusing its own root result performs no materialization.
#[test]
fn no_store_under_reuse() {
    let cat = catalog(30_000);
    let e = engine(cat, 1 << 24, 1.0);
    let query = q(5);
    run(&e, &query);
    let out = run(&e, &query);
    assert!(out.reused());
    let stores = out
        .events
        .iter()
        .filter(|ev| matches!(ev, RecyclerEvent::StoreInjected { .. }))
        .count();
    assert_eq!(stores, 0, "a fully reused query must not inject stores");
}

/// Event streams are consistent: every admitted materialization event has
/// a matching store injection in the same query.
#[test]
fn event_stream_consistency() {
    let cat = catalog(30_000);
    let e = engine(cat, 1 << 24, 1.0);
    let out = run(&e, &q(9));
    let injected: Vec<_> = out
        .events
        .iter()
        .filter_map(|ev| match ev {
            RecyclerEvent::StoreInjected { node, .. } => Some(*node),
            _ => None,
        })
        .collect();
    for ev in &out.events {
        if let RecyclerEvent::Materialized { node, .. } = ev {
            assert!(
                injected.contains(node),
                "materialized {node:?} without a store injection"
            );
        }
    }
    assert!(!injected.is_empty(), "first run should speculate");
}

/// The recycler graph deduplicates shared subtrees across *different*
/// queries of one session (the paper's memory-footprint argument for the
/// AND-DAG).
#[test]
fn graph_shares_common_subtrees() {
    let cat = catalog(10_000);
    let e = engine(cat, 1 << 24, 1.0);
    run(&e, &q(7));
    let after_first = e.recycler().unwrap().graph_len();
    // Same scan+select, different aggregate: only one new node.
    let variant = scan("facts", &["k", "v"])
        .select(Expr::name("k").lt(Expr::lit(7)))
        .aggregate(
            vec![(Expr::name("k"), "k")],
            vec![(AggFunc::CountStar, "n")],
        );
    run(&e, &variant);
    let after_second = e.recycler().unwrap().graph_len();
    assert_eq!(
        after_second,
        after_first + 1,
        "shared prefix must be unified in the graph"
    );
}

/// An intra-query shared subtree (the same subplan appearing twice in one
/// query) matches to a single graph node.
#[test]
fn intra_query_sharing_is_detected() {
    let cat = catalog(10_000);
    let e = engine(cat, 1 << 24, 1.0);
    let sub = scan("facts", &["k", "v"]).select(Expr::name("k").lt(Expr::lit(4)));
    let per_k = sub.clone().aggregate(
        vec![(Expr::name("k"), "k")],
        vec![(AggFunc::Sum(Expr::name("v")), "s")],
    );
    let total = sub.aggregate(vec![], vec![(AggFunc::Sum(Expr::name("v")), "t")]);
    let query = per_k
        .single_join(total)
        .select(Expr::name("s").gt(Expr::name("t").mul(Expr::lit(0.01))));
    let out = run(&e, &query);
    assert!(out.batch.rows() > 0);
    // The shared select subtree occupies one node: scan + select +
    // 2 aggregates + join + outer select = 6, not 8.
    assert_eq!(e.recycler().unwrap().graph_len(), 6);
}

/// Results too large for the configured cache fraction are never admitted,
/// but execution stays correct.
#[test]
fn oversized_results_are_refused() {
    let cat = catalog(50_000);
    let mut c = RecyclerConfig::deterministic(4096);
    c.spec_min_progress = 0.0;
    c.max_result_fraction = 0.25; // max 1 KiB per result
    let e = Engine::builder(cat.clone()).recycler(c).build();
    // A selection result of ~tens of KiB cannot be cached.
    let big = scan("facts", &["k", "v"]).select(Expr::name("k").ge(Expr::lit(0)));
    let wrapped = big.aggregate(
        vec![(Expr::name("k"), "k")],
        vec![(AggFunc::CountStar, "n")],
    );
    for _ in 0..3 {
        let out = run(&e, &wrapped);
        assert_eq!(out.batch.rows(), 64);
    }
    assert!(
        e.recycler().unwrap().cache_used() <= 4096,
        "cache budget must hold even under oversized offers"
    );
}
