//! End-to-end tests of the session-based query API: prepared statements,
//! parameter binding, streaming batch results, and the `Engine::run`
//! compatibility shim.

use std::sync::Arc;

use recycler_db::engine::{Engine, QueryOutcome};
use recycler_db::expr::{AggFunc, Expr, Params};
use recycler_db::plan::{scan, Plan};
use recycler_db::recycler::RecyclerConfig;
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::{DataType, Schema, Value, BATCH_CAPACITY};

fn catalog(rows: i64) -> Arc<Catalog> {
    let mut cat = Catalog::new();
    let schema = Schema::from_pairs([
        ("k", DataType::Int),
        ("v", DataType::Float),
        ("tag", DataType::Str),
    ]);
    let mut b = TableBuilder::new("facts", schema, rows as usize);
    for i in 0..rows {
        b.push_row(vec![
            Value::Int(i % 64),
            Value::Float((i % 211) as f64 * 0.5),
            Value::str(["x", "y", "z"][(i % 3) as usize]),
        ]);
    }
    cat.register(b.finish()).expect("register table");
    Arc::new(cat)
}

fn det_engine(rows: i64) -> Arc<Engine> {
    let mut c = RecyclerConfig::deterministic(1 << 24);
    c.spec_min_progress = 0.0;
    Engine::builder(catalog(rows)).recycler(c).build()
}

fn template() -> Plan {
    scan("facts", &["k", "v"])
        .select(Expr::name("k").lt(Expr::param("limit")))
        .aggregate(
            vec![(Expr::name("k"), "k")],
            vec![
                (AggFunc::Sum(Expr::name("v")), "sv"),
                (AggFunc::CountStar, "n"),
            ],
        )
}

#[test]
fn identical_params_hit_the_recycler_cache() {
    let engine = det_engine(30_000);
    let session = engine.session();
    let prepared = session.prepare(&template()).unwrap();
    let p = Params::new().set("limit", 12i64);
    let first = prepared.execute(&p).unwrap().into_outcome();
    assert!(!first.reused());
    assert_eq!(first.batch.rows(), 12);
    for _ in 0..3 {
        let again = prepared.execute(&p).unwrap().into_outcome();
        assert!(again.reused(), "identical params must reuse");
        assert_eq!(again.batch.to_rows(), first.batch.to_rows());
    }
    assert_eq!(session.stats().reused, 3);
}

#[test]
fn different_params_do_not_share_results() {
    let engine = det_engine(30_000);
    let session = engine.session();
    let prepared = session.prepare(&template()).unwrap();
    let a = prepared
        .execute(&Params::new().set("limit", 10i64))
        .unwrap()
        .into_outcome();
    let b = prepared
        .execute(&Params::new().set("limit", 20i64))
        .unwrap()
        .into_outcome();
    assert_eq!(a.batch.rows(), 10);
    assert_eq!(b.batch.rows(), 20);
    assert!(!b.reused(), "a different parameter draw must compute fresh");
    // Each parameterization is cached independently.
    let a2 = prepared
        .execute(&Params::new().set("limit", 10i64))
        .unwrap()
        .into_outcome();
    let b2 = prepared
        .execute(&Params::new().set("limit", 20i64))
        .unwrap()
        .into_outcome();
    assert!(a2.reused() && b2.reused());
    assert_eq!(a2.batch.to_rows(), a.batch.to_rows());
    assert_eq!(b2.batch.to_rows(), b.batch.to_rows());
}

#[test]
fn streaming_pulls_batch_at_a_time() {
    let engine = Engine::builder(catalog(BATCH_CAPACITY as i64 * 3 + 7))
        .no_recycler()
        .build();
    let session = engine.session();
    let plan = scan("facts", &["k", "v"]);
    let mut handle = session.query(&plan).unwrap();
    assert_eq!(handle.schema().names(), vec!["k", "v"]);
    let mut batches = 0;
    let mut rows = 0;
    for b in &mut handle {
        batches += 1;
        rows += b.rows();
        assert!(b.rows() <= BATCH_CAPACITY);
    }
    assert_eq!(batches, 4);
    assert_eq!(rows, BATCH_CAPACITY * 3 + 7);
}

#[test]
fn dropped_stream_does_not_poison_cache_or_leak_slot() {
    let mut c = RecyclerConfig::deterministic(1 << 24);
    c.spec_min_progress = 0.0;
    let engine = Engine::builder(catalog(60_000))
        .recycler(c)
        .max_concurrent_queries(1)
        .build();
    let session = engine.session();
    let prepared = session.prepare(&template()).unwrap();
    let p = Params::new().set("limit", 40i64);
    {
        let mut handle = prepared.execute(&p).unwrap();
        let _ = handle.next();
        // Dropped here, half-way through, while holding the only slot.
    }
    assert_eq!(session.stats().aborted, 1);
    // Slot released: with max_concurrent_queries(1) the next execution
    // would block forever on a leaked slot.
    let out = prepared.execute(&p).unwrap().into_outcome();
    assert!(!out.reused(), "the aborted run must not have published");
    assert_eq!(out.batch.rows(), 40);
    // Cache unpoisoned: the completed run's result is reused and correct.
    let again = prepared.execute(&p).unwrap().into_outcome();
    assert!(again.reused());
    assert_eq!(again.batch.to_rows(), out.batch.to_rows());
}

#[test]
fn run_shim_stays_behaviourally_identical() {
    // The deprecated Engine::run must behave exactly like the old API:
    // named plans accepted, full materialization, recycler events intact.
    let engine = det_engine(20_000);
    let concrete = scan("facts", &["k", "v"])
        .select(Expr::name("k").lt(Expr::lit(10)))
        .aggregate(
            vec![(Expr::name("k"), "k")],
            vec![(AggFunc::Sum(Expr::name("v")), "sv")],
        );
    #[allow(deprecated)]
    let first: QueryOutcome = engine.run(&concrete).unwrap();
    assert!(!first.reused());
    assert!(first.materialized(), "speculation caches the aggregate");
    assert_eq!(first.batch.rows(), 10);
    #[allow(deprecated)]
    let second = engine.run(&concrete).unwrap();
    assert!(second.reused(), "second run hits the cache");
    assert_eq!(first.batch.to_rows(), second.batch.to_rows());
    // And the shim shares one cache with the session path.
    let via_session = engine.session().query(&concrete).unwrap().into_outcome();
    assert!(via_session.reused());
}

#[test]
fn prepare_rejects_unknown_columns_and_execute_validates_params() {
    let engine = det_engine(1_000);
    let session = engine.session();
    assert!(session.prepare(&scan("facts", &["nope"])).is_err());
    let prepared = session.prepare(&template()).unwrap();
    assert!(
        prepared.execute(&Params::none()).is_err(),
        "missing binding"
    );
    assert!(
        prepared
            .execute(&Params::new().set("limit", 5i64).set("extra", 1i64))
            .is_err(),
        "unknown binding"
    );
}

#[test]
fn collect_batch_is_the_explicit_materialization_point() {
    let engine = det_engine(5_000);
    let session = engine.session();
    let prepared = session.prepare(&template()).unwrap();
    let batch = prepared
        .execute(&Params::new().set("limit", 8i64))
        .unwrap()
        .collect_batch();
    assert_eq!(batch.rows(), 8);
}
