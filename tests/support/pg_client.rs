//! A minimal blocking Postgres-wire-protocol v3 client for tests and
//! benches: startup, simple query, the extended cycle, and CancelRequest.
//! Text format only, `std::net` only — deliberately independent of the
//! server's own encoder/decoder so the tests exercise the wire bytes, not
//! a shared implementation.

#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One backend message: tag byte plus body (length prefix stripped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backend {
    pub tag: u8,
    pub body: Vec<u8>,
}

impl Backend {
    /// Fields of an ErrorResponse body: `(code char, value)` pairs.
    pub fn error_fields(&self) -> Vec<(u8, String)> {
        assert_eq!(self.tag, b'E', "not an ErrorResponse: {:?}", self);
        let mut out = Vec::new();
        let mut at = 0;
        while at < self.body.len() && self.body[at] != 0 {
            let code = self.body[at];
            at += 1;
            let nul = self.body[at..].iter().position(|&b| b == 0).unwrap();
            out.push((
                code,
                String::from_utf8_lossy(&self.body[at..at + nul]).into_owned(),
            ));
            at += nul + 1;
        }
        out
    }

    /// The SQLSTATE of an ErrorResponse.
    pub fn sqlstate(&self) -> String {
        self.error_fields()
            .into_iter()
            .find(|(c, _)| *c == b'C')
            .map(|(_, v)| v)
            .expect("ErrorResponse carries a SQLSTATE")
    }

    /// The primary message of an ErrorResponse.
    pub fn error_message(&self) -> String {
        self.error_fields()
            .into_iter()
            .find(|(c, _)| *c == b'M')
            .map(|(_, v)| v)
            .expect("ErrorResponse carries a message")
    }

    /// Decode a DataRow body into text cells (`None` = NULL).
    pub fn data_row(&self) -> Vec<Option<String>> {
        assert_eq!(self.tag, b'D', "not a DataRow: {:?}", self);
        let mut at = 0usize;
        let n = i16::from_be_bytes(self.body[at..at + 2].try_into().unwrap());
        at += 2;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let len = i32::from_be_bytes(self.body[at..at + 4].try_into().unwrap());
            at += 4;
            if len < 0 {
                out.push(None);
            } else {
                let len = len as usize;
                out.push(Some(
                    String::from_utf8_lossy(&self.body[at..at + len]).into_owned(),
                ));
                at += len;
            }
        }
        out
    }

    /// Column names of a RowDescription body.
    pub fn column_names(&self) -> Vec<String> {
        assert_eq!(self.tag, b'T', "not a RowDescription: {:?}", self);
        let mut at = 0usize;
        let n = i16::from_be_bytes(self.body[at..at + 2].try_into().unwrap());
        at += 2;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let nul = self.body[at..].iter().position(|&b| b == 0).unwrap();
            out.push(String::from_utf8_lossy(&self.body[at..at + nul]).into_owned());
            // name NUL + table oid(4) + attnum(2) + type oid(4) + len(2)
            // + typmod(4) + format(2)
            at += nul + 1 + 18;
        }
        out
    }

    /// The tag string of a CommandComplete body.
    pub fn command_tag(&self) -> String {
        assert_eq!(self.tag, b'C', "not a CommandComplete: {:?}", self);
        let nul = self.body.iter().position(|&b| b == 0).unwrap();
        String::from_utf8_lossy(&self.body[..nul]).into_owned()
    }
}

/// Everything the backend sent for one query cycle, up to ReadyForQuery.
#[derive(Debug, Default)]
pub struct Cycle {
    pub messages: Vec<Backend>,
}

impl Cycle {
    pub fn rows(&self) -> Vec<Vec<Option<String>>> {
        self.messages
            .iter()
            .filter(|m| m.tag == b'D')
            .map(Backend::data_row)
            .collect()
    }

    pub fn row_description(&self) -> Option<&Backend> {
        self.messages.iter().find(|m| m.tag == b'T')
    }

    pub fn command_tags(&self) -> Vec<String> {
        self.messages
            .iter()
            .filter(|m| m.tag == b'C')
            .map(Backend::command_tag)
            .collect()
    }

    pub fn errors(&self) -> Vec<&Backend> {
        self.messages.iter().filter(|m| m.tag == b'E').collect()
    }

    pub fn first_error(&self) -> &Backend {
        self.errors().first().expect("expected an ErrorResponse")
    }
}

/// A connected, authenticated pgwire client.
pub struct PgClient {
    stream: TcpStream,
    pub pid: i32,
    pub secret: i32,
    server: SocketAddr,
}

impl PgClient {
    /// Connect and run the startup handshake through ReadyForQuery.
    pub fn connect(addr: SocketAddr) -> std::io::Result<PgClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut body = Vec::new();
        body.extend_from_slice(&196608i32.to_be_bytes());
        for (k, v) in [("user", "test"), ("database", "rdb")] {
            body.extend_from_slice(k.as_bytes());
            body.push(0);
            body.extend_from_slice(v.as_bytes());
            body.push(0);
        }
        body.push(0);
        let mut pkt = ((body.len() + 4) as i32).to_be_bytes().to_vec();
        pkt.extend_from_slice(&body);
        stream.write_all(&pkt)?;
        let mut client = PgClient {
            stream,
            pid: 0,
            secret: 0,
            server: addr,
        };
        loop {
            let m = client.read_message()?;
            match m.tag {
                b'K' => {
                    client.pid = i32::from_be_bytes(m.body[0..4].try_into().unwrap());
                    client.secret = i32::from_be_bytes(m.body[4..8].try_into().unwrap());
                }
                b'Z' => return Ok(client),
                b'E' => {
                    return Err(std::io::Error::other(format!(
                        "startup refused: {}",
                        m.error_message()
                    )))
                }
                _ => {}
            }
        }
    }

    /// Raw bytes straight onto the socket (fuzzing, hand-built frames).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Send one tagged frontend message.
    pub fn send(&mut self, tag: u8, body: &[u8]) -> std::io::Result<()> {
        let mut pkt = vec![tag];
        pkt.extend_from_slice(&((body.len() + 4) as i32).to_be_bytes());
        pkt.extend_from_slice(body);
        self.stream.write_all(&pkt)
    }

    /// Read one backend message (blocking).
    pub fn read_message(&mut self) -> std::io::Result<Backend> {
        let mut head = [0u8; 5];
        self.stream.read_exact(&mut head)?;
        let tag = head[0];
        let len = i32::from_be_bytes(head[1..5].try_into().unwrap()) as usize;
        let mut body = vec![0u8; len - 4];
        self.stream.read_exact(&mut body)?;
        Ok(Backend { tag, body })
    }

    /// Read messages until ReadyForQuery (exclusive of it).
    pub fn read_cycle(&mut self) -> std::io::Result<Cycle> {
        let mut cycle = Cycle::default();
        loop {
            let m = self.read_message()?;
            if m.tag == b'Z' {
                return Ok(cycle);
            }
            cycle.messages.push(m);
        }
    }

    /// Simple query: send `Q`, collect the whole cycle.
    pub fn query(&mut self, sql: &str) -> std::io::Result<Cycle> {
        let mut body = sql.as_bytes().to_vec();
        body.push(0);
        self.send(b'Q', &body)?;
        self.read_cycle()
    }

    /// Extended cycle: Parse + Bind + Describe(portal) + Execute + Sync,
    /// with text parameters (`None` = NULL), collected through
    /// ReadyForQuery.
    pub fn extended(&mut self, sql: &str, params: &[Option<&str>]) -> std::io::Result<Cycle> {
        self.send_parse("", sql, &[])?;
        self.send_bind("", "", params)?;
        self.send_describe(b'P', "")?;
        self.send_execute("", 0)?;
        self.send_sync()?;
        self.read_cycle()
    }

    pub fn send_parse(&mut self, name: &str, sql: &str, oids: &[i32]) -> std::io::Result<()> {
        let mut body = Vec::new();
        body.extend_from_slice(name.as_bytes());
        body.push(0);
        body.extend_from_slice(sql.as_bytes());
        body.push(0);
        body.extend_from_slice(&(oids.len() as i16).to_be_bytes());
        for oid in oids {
            body.extend_from_slice(&oid.to_be_bytes());
        }
        self.send(b'P', &body)
    }

    pub fn send_bind(
        &mut self,
        portal: &str,
        statement: &str,
        params: &[Option<&str>],
    ) -> std::io::Result<()> {
        let mut body = Vec::new();
        body.extend_from_slice(portal.as_bytes());
        body.push(0);
        body.extend_from_slice(statement.as_bytes());
        body.push(0);
        body.extend_from_slice(&0i16.to_be_bytes()); // all-text param formats
        body.extend_from_slice(&(params.len() as i16).to_be_bytes());
        for p in params {
            match p {
                None => body.extend_from_slice(&(-1i32).to_be_bytes()),
                Some(text) => {
                    body.extend_from_slice(&(text.len() as i32).to_be_bytes());
                    body.extend_from_slice(text.as_bytes());
                }
            }
        }
        body.extend_from_slice(&0i16.to_be_bytes()); // all-text result formats
        self.send(b'B', &body)
    }

    pub fn send_describe(&mut self, kind: u8, name: &str) -> std::io::Result<()> {
        let mut body = vec![kind];
        body.extend_from_slice(name.as_bytes());
        body.push(0);
        self.send(b'D', &body)
    }

    pub fn send_execute(&mut self, portal: &str, max_rows: i32) -> std::io::Result<()> {
        let mut body = Vec::new();
        body.extend_from_slice(portal.as_bytes());
        body.push(0);
        body.extend_from_slice(&max_rows.to_be_bytes());
        self.send(b'E', &body)
    }

    pub fn send_sync(&mut self) -> std::io::Result<()> {
        self.send(b'S', &[])
    }

    /// Fire a CancelRequest at this client's backend over a fresh
    /// connection (the protocol's out-of-band cancel path).
    pub fn cancel(&self) -> std::io::Result<()> {
        let mut s = TcpStream::connect(self.server)?;
        let mut pkt = Vec::new();
        pkt.extend_from_slice(&16i32.to_be_bytes());
        pkt.extend_from_slice(&80877102i32.to_be_bytes());
        pkt.extend_from_slice(&self.pid.to_be_bytes());
        pkt.extend_from_slice(&self.secret.to_be_bytes());
        s.write_all(&pkt)?;
        Ok(())
    }

    /// Orderly disconnect.
    pub fn terminate(mut self) {
        let _ = self.send(b'X', &[]);
    }

    pub fn set_read_timeout(&self, d: Option<Duration>) {
        let _ = self.stream.set_read_timeout(d);
    }
}
