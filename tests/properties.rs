//! Property-style tests over the core data structures and invariants.
//!
//! Sampled deterministically with a seeded RNG (the build environment has
//! no proptest): each property draws a few hundred random cases and checks
//! the invariant on every one, printing the failing case on violation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use recycler_db::expr::{like::like_match, CmpOp, Expr};
use recycler_db::plan::{scan, structural_eq, structural_hash};
use recycler_db::recycler::{NodeId, RecyclerGraph};
use recycler_db::vector::types::{date_from_ymd, ymd_from_date};
use recycler_db::vector::{Column, DataType, Schema, Value};

fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

// ---- calendar dates -------------------------------------------------------

#[test]
fn date_roundtrip() {
    let mut rng = rng(1);
    for _ in 0..2_000 {
        let days = rng.gen_range(-200_000i32..200_000);
        let (y, m, d) = ymd_from_date(days);
        assert_eq!(date_from_ymd(y, m, d), days);
        assert!((1..=12).contains(&m), "month {m} for {days}");
        assert!((1..=31).contains(&d), "day {d} for {days}");
    }
}

#[test]
fn date_order_preserved() {
    let mut rng = rng(2);
    for _ in 0..2_000 {
        let a = rng.gen_range(-100_000i32..100_000);
        let b = rng.gen_range(-100_000i32..100_000);
        let (ya, ma, da) = ymd_from_date(a);
        let (yb, mb, db) = ymd_from_date(b);
        assert_eq!(a.cmp(&b), (ya, ma, da).cmp(&(yb, mb, db)));
    }
}

// ---- LIKE matching vs. a naive reference ----------------------------------

/// Exponential-time but obviously-correct reference matcher.
fn like_ref(text: &[u8], pat: &[u8]) -> bool {
    match (pat.first(), text.first()) {
        (None, None) => true,
        (None, Some(_)) => false,
        (Some(b'%'), _) => {
            like_ref(text, &pat[1..]) || (!text.is_empty() && like_ref(&text[1..], pat))
        }
        (Some(b'_'), Some(_)) => like_ref(&text[1..], &pat[1..]),
        (Some(c), Some(t)) if c == t => like_ref(&text[1..], &pat[1..]),
        _ => false,
    }
}

fn sample_string(rng: &mut SmallRng, alphabet: &[u8], max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())] as char)
        .collect()
}

#[test]
fn like_matches_reference() {
    let mut rng = rng(3);
    for _ in 0..3_000 {
        let text = sample_string(&mut rng, b"abc", 12);
        let pat = sample_string(&mut rng, b"abc%_", 8);
        assert_eq!(
            like_match(&text, &pat),
            like_ref(text.as_bytes(), pat.as_bytes()),
            "text={text:?} pat={pat:?}"
        );
    }
}

// ---- predicate implication soundness ---------------------------------------

#[test]
fn implication_is_sound() {
    let mut rng = rng(4);
    for _ in 0..3_000 {
        let (lo1, hi1) = (rng.gen_range(-50i64..50), rng.gen_range(-50i64..50));
        let (lo2, hi2) = (rng.gen_range(-50i64..50), rng.gen_range(-50i64..50));
        let probe = rng.gen_range(-60i64..60);
        let p = Expr::col(0)
            .ge(Expr::lit(lo1))
            .and(Expr::col(0).le(Expr::lit(hi1)));
        let q = Expr::col(0)
            .ge(Expr::lit(lo2))
            .and(Expr::col(0).le(Expr::lit(hi2)));
        if recycler_db::expr::implies(&p, &q) {
            let sat = |lo: i64, hi: i64| probe >= lo && probe <= hi;
            if sat(lo1, hi1) {
                assert!(
                    sat(lo2, hi2),
                    "p=[{lo1},{hi1}] q=[{lo2},{hi2}] probe={probe}"
                );
            }
        }
    }
}

#[test]
fn implication_handles_strictness() {
    let mut rng = rng(5);
    for _ in 0..500 {
        let bound = rng.gen_range(-50i64..50);
        let strict = Expr::Cmp(
            CmpOp::Gt,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(bound)),
        );
        let loose = Expr::Cmp(
            CmpOp::Ge,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(bound)),
        );
        assert!(recycler_db::expr::implies(&strict, &loose));
    }
}

// ---- column/batch invariants ------------------------------------------------

#[test]
fn take_then_concat_roundtrip() {
    let mut rng = rng(6);
    for _ in 0..300 {
        let n = rng.gen_range(1..100usize);
        let vals: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000i64..1000)).collect();
        let col = Column::from_ints(vals.clone());
        let split = n / 2;
        let left: Vec<u32> = (0..split as u32).collect();
        let right: Vec<u32> = (split as u32..n as u32).collect();
        let a = col.take(&left);
        let b = col.take(&right);
        let joined = Column::concat(&[&a, &b]);
        assert_eq!(joined.as_ints(), &vals[..]);
    }
}

#[test]
fn filter_never_grows() {
    let mut rng = rng(7);
    for _ in 0..300 {
        let n = rng.gen_range(0..80usize);
        let vals: Vec<i64> = (0..n).map(|_| rng.gen_range(-100i64..100)).collect();
        let pivot = rng.gen_range(-100i64..100);
        let col = Column::from_ints(vals.clone());
        let mask: Vec<bool> = vals.iter().map(|&v| v < pivot).collect();
        let filtered = col.filter(&mask);
        assert!(filtered.len() <= col.len());
        assert_eq!(filtered.len(), mask.iter().filter(|&&b| b).count());
        assert!(filtered
            .to_values()
            .iter()
            .all(|v| v.as_int().unwrap() < pivot));
    }
}

// ---- recycler graph invariants ----------------------------------------------

fn arbitrary_plan(sel: i64, wide: bool, agg_on_k: bool) -> recycler_db::plan::Plan {
    let cols: &[&str] = if wide { &["k", "v"] } else { &["k"] };
    let p = scan("t", cols).select(Expr::col(0).lt(Expr::lit(sel)));
    if agg_on_k {
        p.aggregate(
            vec![(Expr::col(0), "k")],
            vec![(recycler_db::expr::AggFunc::CountStar, "n")],
        )
    } else {
        p
    }
}

fn schema_of(_p: &recycler_db::plan::Plan) -> Schema {
    Schema::from_pairs([("k", DataType::Int)])
}

/// Matching is idempotent: re-inserting any already-inserted plan adds no
/// nodes and matches the same ids.
#[test]
fn match_or_insert_idempotent() {
    let mut rng = rng(8);
    for _ in 0..50 {
        let count = rng.gen_range(1..20usize);
        let plans: Vec<(i64, bool, bool)> = (0..count)
            .map(|_| (rng.gen_range(0i64..5), rng.gen_bool(0.5), rng.gen_bool(0.5)))
            .collect();
        let mut g = RecyclerGraph::new();
        let mut ids = Vec::new();
        for (s, w, a) in &plans {
            let p = arbitrary_plan(*s, *w, *a);
            let m = g.match_or_insert(&p, &schema_of);
            ids.push(m.id);
        }
        let size = g.len();
        for ((s, w, a), expect) in plans.iter().zip(&ids) {
            let p = arbitrary_plan(*s, *w, *a);
            let m = g.match_or_insert(&p, &schema_of);
            assert_eq!(m.id, *expect, "re-match must find the same node");
            assert_eq!(m.inserted_count(), 0);
        }
        assert_eq!(g.len(), size, "idempotent re-insertions");
    }
}

/// Structural hash is consistent with structural equality.
#[test]
fn structural_hash_consistent() {
    let mut rng = rng(9);
    for _ in 0..2_000 {
        let p1 = arbitrary_plan(rng.gen_range(0i64..4), rng.gen_bool(0.5), rng.gen_bool(0.5));
        let p2 = arbitrary_plan(rng.gen_range(0i64..4), rng.gen_bool(0.5), rng.gen_bool(0.5));
        if structural_eq(&p1, &p2) {
            assert_eq!(structural_hash(&p1), structural_hash(&p2));
        }
        assert!(structural_eq(&p1, &p1));
    }
}

/// Materialize/evict round-trips restore hR exactly (no aging).
///
/// References are generated the way real queries produce them: a query that
/// could reuse a node could also have reused each of its descendants, so
/// bumping node `i` also bumps everything below it (the paper's invariant
/// `h_descendant >= h_ancestor`; Eq. 3/4 are only exact inverses under it).
#[test]
fn materialize_evict_restores_h() {
    let mut rng = rng(10);
    for _ in 0..100 {
        let bump_count = rng.gen_range(1..30usize);
        let bumps: Vec<usize> = (0..bump_count).map(|_| rng.gen_range(0..3usize)).collect();
        let mut g = RecyclerGraph::new();
        let p = arbitrary_plan(1, true, true);
        let m = g.match_or_insert(&p, &schema_of);
        let nodes = [m.id, m.children[0].id, m.children[0].children[0].id];
        for &b in &bumps {
            for &n in &nodes[b..] {
                g.bump_h(n, 1.0);
            }
        }
        let before: Vec<f64> = nodes.iter().map(|&n| g.decayed_h(n, 1.0)).collect();
        g.on_materialized(nodes[0], 1.0);
        g.on_evicted(nodes[0], 1.0);
        let after: Vec<f64> = nodes.iter().map(|&n| g.decayed_h(n, 1.0)).collect();
        for (x, y) in before.iter().zip(&after) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
        let _ = NodeId(0);
    }
}

// ---- cache invariants ---------------------------------------------------------

/// The cache never exceeds its capacity, whatever the insertion sequence.
#[test]
fn cache_respects_capacity() {
    use recycler_db::exec::MaterializedResult;
    use recycler_db::recycler::RecyclerCache;
    use recycler_db::vector::Batch;
    use std::sync::Arc;

    let mut rng = rng(11);
    for _ in 0..50 {
        let count = rng.gen_range(1..40usize);
        let mut cache = RecyclerCache::new(2_000);
        for i in 0..count {
            let s = rng.gen_range(1..200usize);
            let b = rng.gen_range(0.0f64..10.0);
            let col = Column::from_ints(vec![0; s]);
            let r = Arc::new(MaterializedResult::from_batches(
                Schema::from_pairs([("x", DataType::Int)]),
                &[Batch::new(vec![col])],
            ));
            let _ = cache.insert(NodeId(i as u32), r, b, vec![]);
            assert!(cache.used() <= 2_000, "over budget: {}", cache.used());
        }
        // Flush empties completely.
        cache.flush();
        assert_eq!(cache.used(), 0);
        assert_eq!(cache.len(), 0);
    }
}

// ---- value total order ----------------------------------------------------------

#[test]
fn value_ordering_is_total_and_antisymmetric() {
    let mut rng = rng(12);
    for _ in 0..2_000 {
        let a = rng.gen_range(-1000i64..1000);
        let b = rng.gen_range(-1000.0f64..1000.0);
        let va = Value::Int(a);
        let vb = Value::Float(b);
        let ab = va.cmp(&vb);
        let ba = vb.cmp(&va);
        assert_eq!(ab, ba.reverse());
    }
}
