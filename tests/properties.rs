//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use recycler_db::expr::{like::like_match, CmpOp, Expr};
use recycler_db::plan::{scan, structural_eq, structural_hash};
use recycler_db::recycler::{NodeId, RecyclerGraph};
use recycler_db::vector::types::{date_from_ymd, ymd_from_date};
use recycler_db::vector::{Column, DataType, Schema, Value};

// ---- calendar dates -------------------------------------------------------

proptest! {
    #[test]
    fn date_roundtrip(days in -200_000i32..200_000) {
        let (y, m, d) = ymd_from_date(days);
        prop_assert_eq!(date_from_ymd(y, m, d), days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }

    #[test]
    fn date_order_preserved(a in -100_000i32..100_000, b in -100_000i32..100_000) {
        let (ya, ma, da) = ymd_from_date(a);
        let (yb, mb, db) = ymd_from_date(b);
        prop_assert_eq!(a.cmp(&b), (ya, ma, da).cmp(&(yb, mb, db)));
    }
}

// ---- LIKE matching vs. a naive reference ----------------------------------

/// Exponential-time but obviously-correct reference matcher.
fn like_ref(text: &[u8], pat: &[u8]) -> bool {
    match (pat.first(), text.first()) {
        (None, None) => true,
        (None, Some(_)) => false,
        (Some(b'%'), _) => {
            like_ref(text, &pat[1..])
                || (!text.is_empty() && like_ref(&text[1..], pat))
        }
        (Some(b'_'), Some(_)) => like_ref(&text[1..], &pat[1..]),
        (Some(c), Some(t)) if c == t => like_ref(&text[1..], &pat[1..]),
        _ => false,
    }
}

proptest! {
    #[test]
    fn like_matches_reference(
        text in "[abc]{0,12}",
        pat in "[abc%_]{0,8}",
    ) {
        prop_assert_eq!(
            like_match(&text, &pat),
            like_ref(text.as_bytes(), pat.as_bytes()),
            "text={:?} pat={:?}", text, pat
        );
    }
}

// ---- predicate implication soundness ---------------------------------------

proptest! {
    /// If `implies(p, q)` holds, then for every sampled value, `p(v)` must
    /// entail `q(v)`.
    #[test]
    fn implication_is_sound(
        lo1 in -50i64..50, hi1 in -50i64..50,
        lo2 in -50i64..50, hi2 in -50i64..50,
        probe in -60i64..60,
    ) {
        let p = Expr::col(0).ge(Expr::lit(lo1)).and(Expr::col(0).le(Expr::lit(hi1)));
        let q = Expr::col(0).ge(Expr::lit(lo2)).and(Expr::col(0).le(Expr::lit(hi2)));
        if recycler_db::expr::implies(&p, &q) {
            let sat = |lo: i64, hi: i64| probe >= lo && probe <= hi;
            if sat(lo1, hi1) {
                prop_assert!(sat(lo2, hi2),
                    "p=[{},{}] q=[{},{}] probe={}", lo1, hi1, lo2, hi2, probe);
            }
        }
    }

    #[test]
    fn implication_handles_strictness(bound in -50i64..50, probe in -60i64..60) {
        let strict = Expr::Cmp(CmpOp::Gt, Box::new(Expr::col(0)), Box::new(Expr::lit(bound)));
        let loose = Expr::Cmp(CmpOp::Ge, Box::new(Expr::col(0)), Box::new(Expr::lit(bound)));
        prop_assert!(recycler_db::expr::implies(&strict, &loose));
        if probe > bound {
            prop_assert!(probe >= bound);
        }
    }
}

// ---- column/batch invariants ------------------------------------------------

proptest! {
    #[test]
    fn take_then_concat_roundtrip(vals in prop::collection::vec(-1000i64..1000, 1..100)) {
        let col = Column::from_ints(vals.clone());
        let n = vals.len();
        let split = n / 2;
        let left: Vec<u32> = (0..split as u32).collect();
        let right: Vec<u32> = (split as u32..n as u32).collect();
        let a = col.take(&left);
        let b = col.take(&right);
        let joined = Column::concat(&[&a, &b]);
        prop_assert_eq!(joined.as_ints(), &vals[..]);
    }

    #[test]
    fn filter_never_grows(vals in prop::collection::vec(-100i64..100, 0..80), pivot in -100i64..100) {
        let col = Column::from_ints(vals.clone());
        let mask: Vec<bool> = vals.iter().map(|&v| v < pivot).collect();
        let filtered = col.filter(&mask);
        prop_assert!(filtered.len() <= col.len());
        prop_assert_eq!(filtered.len(), mask.iter().filter(|&&b| b).count());
        prop_assert!(filtered.to_values().iter().all(|v| v.as_int().unwrap() < pivot));
    }
}

// ---- recycler graph invariants ----------------------------------------------

fn arbitrary_plan(sel: i64, wide: bool, agg_on_k: bool) -> recycler_db::plan::Plan {
    let cols: &[&str] = if wide { &["k", "v"] } else { &["k"] };
    let p = scan("t", cols).select(Expr::col(0).lt(Expr::lit(sel)));
    if agg_on_k {
        p.aggregate(
            vec![(Expr::col(0), "k")],
            vec![(recycler_db::expr::AggFunc::CountStar, "n")],
        )
    } else {
        p
    }
}

fn schema_of(_p: &recycler_db::plan::Plan) -> Schema {
    Schema::from_pairs([("k", DataType::Int)])
}

proptest! {
    /// Matching is idempotent: re-inserting any already-inserted plan adds
    /// no nodes and matches the same ids.
    #[test]
    fn match_or_insert_idempotent(
        plans in prop::collection::vec((0i64..5, any::<bool>(), any::<bool>()), 1..20)
    ) {
        let mut g = RecyclerGraph::new();
        let mut ids = Vec::new();
        for (s, w, a) in &plans {
            let p = arbitrary_plan(*s, *w, *a);
            let m = g.match_or_insert(&p, &schema_of);
            ids.push(m.id);
        }
        let size = g.len();
        for ((s, w, a), expect) in plans.iter().zip(&ids) {
            let p = arbitrary_plan(*s, *w, *a);
            let m = g.match_or_insert(&p, &schema_of);
            prop_assert_eq!(m.id, *expect, "re-match must find the same node");
            prop_assert_eq!(m.inserted_count(), 0);
        }
        prop_assert_eq!(g.len(), size, "idempotent re-insertions");
    }

    /// Structural hash is consistent with structural equality.
    #[test]
    fn structural_hash_consistent(
        s1 in 0i64..4, w1 in any::<bool>(), a1 in any::<bool>(),
        s2 in 0i64..4, w2 in any::<bool>(), a2 in any::<bool>(),
    ) {
        let p1 = arbitrary_plan(s1, w1, a1);
        let p2 = arbitrary_plan(s2, w2, a2);
        if structural_eq(&p1, &p2) {
            prop_assert_eq!(structural_hash(&p1), structural_hash(&p2));
        }
        prop_assert!(structural_eq(&p1, &p1));
    }

    /// Materialize/evict round-trips restore hR exactly (no aging).
    ///
    /// References are generated the way real queries produce them: a query
    /// that could reuse a node could also have reused each of its
    /// descendants, so bumping node `i` also bumps everything below it
    /// (the paper's invariant `h_descendant >= h_ancestor`; Eq. 3/4 are
    /// only exact inverses under it).
    #[test]
    fn materialize_evict_restores_h(bumps in prop::collection::vec(0usize..3, 1..30)) {
        let mut g = RecyclerGraph::new();
        let p = arbitrary_plan(1, true, true);
        let m = g.match_or_insert(&p, &schema_of);
        let nodes = [m.id, m.children[0].id, m.children[0].children[0].id];
        for &b in &bumps {
            for &n in &nodes[b..] {
                g.bump_h(n, 1.0);
            }
        }
        let before: Vec<f64> = nodes.iter().map(|&n| g.decayed_h(n, 1.0)).collect();
        g.on_materialized(nodes[0], 1.0);
        g.on_evicted(nodes[0], 1.0);
        let after: Vec<f64> = nodes.iter().map(|&n| g.decayed_h(n, 1.0)).collect();
        for (x, y) in before.iter().zip(&after) {
            prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
        let _ = NodeId(0);
    }
}

// ---- cache invariants ---------------------------------------------------------

proptest! {
    /// The cache never exceeds its capacity, whatever the insertion
    /// sequence.
    #[test]
    fn cache_respects_capacity(
        sizes in prop::collection::vec(1usize..200, 1..40),
        benefits in prop::collection::vec(0.0f64..10.0, 40),
    ) {
        use recycler_db::recycler::RecyclerCache;
        use recycler_db::exec::MaterializedResult;
        use recycler_db::vector::Batch;
        use std::sync::Arc;

        let mut cache = RecyclerCache::new(2_000);
        for (i, (&s, &b)) in sizes.iter().zip(&benefits).enumerate() {
            let col = Column::from_ints(vec![0; s]);
            let r = Arc::new(MaterializedResult::from_batches(
                Schema::from_pairs([("x", DataType::Int)]),
                &[Batch::new(vec![col])],
            ));
            let _ = cache.insert(NodeId(i as u32), r, b);
            prop_assert!(cache.used() <= 2_000, "over budget: {}", cache.used());
        }
        // Flush empties completely.
        cache.flush();
        prop_assert_eq!(cache.used(), 0);
        prop_assert_eq!(cache.len(), 0);
    }
}

// ---- value total order ----------------------------------------------------------

proptest! {
    #[test]
    fn value_ordering_is_total_and_antisymmetric(
        a in -1000i64..1000,
        b in -1000.0f64..1000.0,
    ) {
        let va = Value::Int(a);
        let vb = Value::Float(b);
        let ab = va.cmp(&vb);
        let ba = vb.cmp(&va);
        prop_assert_eq!(ab, ba.reverse());
    }
}
