//! End-to-end tests of the SQL text frontend: `Session::prepare_sql` /
//! `Session::sql`, normalization convergence across textual variants,
//! recycler cache sharing between SQL and builder plans, DML lowering,
//! EXPLAIN annotations, and span-carrying errors.

use std::sync::Arc;

use recycler_db::engine::{Engine, SqlOutcome};
use recycler_db::expr::{AggFunc, Expr, Params};
use recycler_db::plan::scan;
use recycler_db::recycler::RecyclerConfig;
use recycler_db::sql::SqlErrorKind;
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::{DataType, Schema, Value};

fn catalog(rows: i64) -> Arc<Catalog> {
    let mut cat = Catalog::new();
    let schema = Schema::from_pairs([
        ("k", DataType::Int),
        ("v", DataType::Float),
        ("tag", DataType::Str),
        ("d", DataType::Date),
    ]);
    let mut b = TableBuilder::new("facts", schema, rows as usize);
    for i in 0..rows {
        b.push_row(vec![
            Value::Int(i % 64),
            Value::Float((i % 211) as f64 * 0.5),
            Value::str(["x", "y", "z"][(i % 3) as usize]),
            Value::Date((i % 400) as i32),
        ]);
    }
    cat.register(b.finish()).expect("register facts");
    let schema = Schema::from_pairs([("id", DataType::Int), ("name", DataType::Str)]);
    let mut b = TableBuilder::new("dim", schema, 64);
    for i in 0..64 {
        b.push_row(vec![Value::Int(i), Value::str(format!("n{i}"))]);
    }
    cat.register(b.finish()).expect("register dim");
    Arc::new(cat)
}

fn det_engine(rows: i64) -> Arc<Engine> {
    let mut c = RecyclerConfig::deterministic(1 << 24);
    c.spec_min_progress = 0.0;
    Engine::builder(catalog(rows)).recycler(c).build()
}

#[test]
fn textual_variants_share_fingerprints_and_cache() {
    // The acceptance property: reordered conjuncts and flipped
    // comparisons are the same statement to the recycler.
    let engine = det_engine(20_000);
    let session = engine.session();
    let v1 = "SELECT k, sum(v) AS sv FROM facts \
              WHERE k < 32 AND v > 1.5 GROUP BY k";
    let v2 = "SELECT k, sum(v) AS sv FROM facts \
              WHERE 1.5 < v AND 32 > k GROUP BY k";
    let p1 = session.prepare_sql(v1).unwrap();
    let p2 = session.prepare_sql(v2).unwrap();
    assert_eq!(
        p1.fingerprint(),
        p2.fingerprint(),
        "textual variants must fingerprint identically:\n{}\nvs\n{}",
        p1.template(),
        p2.template()
    );
    let a = p1.execute(&Params::none()).unwrap().into_outcome();
    assert!(!a.reused(), "first execution computes");
    let b = p2.execute(&Params::none()).unwrap().into_outcome();
    assert!(b.reused(), "the variant must hit the recycler cache");
    assert_eq!(a.batch.to_rows(), b.batch.to_rows());
}

#[test]
fn sql_and_builder_plans_share_cache_entries() {
    let engine = det_engine(20_000);
    let session = engine.session();
    let sql = "SELECT k, sum(v) AS sv FROM facts WHERE k < $limit GROUP BY k";
    let builder = scan("facts", &["k", "v"])
        .select(Expr::name("k").lt(Expr::param("limit")))
        .aggregate(
            vec![(Expr::name("k"), "k")],
            vec![(AggFunc::Sum(Expr::name("v")), "sv")],
        );
    let from_sql = session.prepare_sql(sql).unwrap();
    let from_builder = session.prepare(&builder).unwrap();
    assert_eq!(from_sql.fingerprint(), from_builder.fingerprint());
    let params = Params::new().set("limit", 10i64);
    let a = from_sql.execute(&params).unwrap().into_outcome();
    let b = from_builder.execute(&params).unwrap().into_outcome();
    assert!(b.reused(), "builder plan must reuse the SQL plan's result");
    assert_eq!(a.batch.to_rows(), b.batch.to_rows());
}

#[test]
fn where_above_join_converges_with_prefiltered_join() {
    // Filter placement is normalized: WHERE over the join vs a
    // pre-filtered derived table fingerprint identically.
    let engine = det_engine(5_000);
    let session = engine.session();
    let above = "SELECT k, name FROM facts INNER JOIN dim ON k = id WHERE v > 50.0";
    let p_above = session.prepare_sql(above).unwrap();
    let builder_below = scan("facts", &["k", "v"])
        .select(Expr::name("v").gt(Expr::lit(50.0)))
        .inner_join(
            scan("dim", &["id", "name"]),
            vec![Expr::name("k")],
            vec![Expr::name("id")],
        )
        .project(vec![(Expr::col(0), "k"), (Expr::col(3), "name")]);
    let p_below = session.prepare(&builder_below).unwrap();
    assert_eq!(
        p_above.fingerprint(),
        p_below.fingerprint(),
        "pushdown must converge:\n{}\nvs\n{}",
        p_above.template(),
        p_below.template()
    );
    let a = p_above.execute(&Params::none()).unwrap().into_outcome();
    let b = p_below.execute(&Params::none()).unwrap().into_outcome();
    assert!(b.reused());
    assert_eq!(a.batch.to_rows(), b.batch.to_rows());
}

#[test]
fn comma_join_equals_explicit_join() {
    let engine = det_engine(5_000);
    let session = engine.session();
    let explicit = "SELECT k, name FROM facts INNER JOIN dim ON k = id";
    let comma = "SELECT k, name FROM facts, dim WHERE k = id";
    let p1 = session.prepare_sql(explicit).unwrap();
    let p2 = session.prepare_sql(comma).unwrap();
    assert_eq!(p1.fingerprint(), p2.fingerprint());
    let a = p1.execute(&Params::none()).unwrap().collect_batch();
    let b = p2.execute(&Params::none()).unwrap().collect_batch();
    assert_eq!(a.to_rows(), b.to_rows());
}

#[test]
fn aliases_and_qualified_names() {
    let engine = det_engine(2_000);
    let session = engine.session();
    let sql = "SELECT f.k AS key, d.name FROM facts AS f INNER JOIN dim d \
               ON f.k = d.id WHERE f.v >= 0.0 ORDER BY key LIMIT 7";
    let handle = session
        .prepare_sql(sql)
        .unwrap()
        .execute(&Params::none())
        .unwrap();
    assert_eq!(handle.schema().names(), vec!["key", "name"]);
    let batch = handle.collect_batch();
    assert_eq!(batch.rows(), 7);
    let keys = batch.column(0).as_ints();
    assert!(keys.windows(2).all(|w| w[0] <= w[1]), "sorted by key");
}

#[test]
fn group_having_union_and_placeholders() {
    let engine = det_engine(5_000);
    let session = engine.session();
    // HAVING with an aggregate not in the select list; positional
    // placeholders numbered left to right.
    let sql = "SELECT tag, count(*) AS n FROM facts WHERE k < ? \
               GROUP BY tag HAVING sum(v) > ? \
               UNION ALL SELECT tag, count(*) AS n FROM facts WHERE k >= 60 GROUP BY tag";
    let prepared = session.prepare_sql(sql).unwrap();
    // Normalization orders conjuncts canonically, so slot order is not
    // textual order — but both positional slots are collected.
    let mut names = prepared.param_names().to_vec();
    names.sort();
    assert_eq!(names, &["1", "2"]);
    let params = Params::new().set("1", 8i64).set("2", 10.0);
    let batch = prepared.execute(&params).unwrap().collect_batch();
    assert!(batch.rows() >= 3, "both union arms contribute");
    // Equivalent single-arm check against a builder plan.
    let arm = scan("facts", &["k", "v", "tag"])
        .select(Expr::name("k").lt(Expr::lit(8)))
        .aggregate(
            vec![(Expr::name("tag"), "tag")],
            vec![
                (AggFunc::CountStar, "n"),
                (AggFunc::Sum(Expr::name("v")), "sv"),
            ],
        )
        .select(Expr::name("sv").gt(Expr::lit(10.0)))
        .project(vec![(Expr::col(0), "tag"), (Expr::col(1), "n")]);
    let rows_sql: usize = session
        .prepare_sql(
            "SELECT tag, count(*) AS n FROM facts WHERE k < 8 GROUP BY tag HAVING sum(v) > 10.0",
        )
        .unwrap()
        .execute(&Params::none())
        .unwrap()
        .collect_batch()
        .rows();
    let rows_builder = session.query(&arm).unwrap().collect_batch().rows();
    assert_eq!(rows_sql, rows_builder);
}

#[test]
fn semi_and_anti_joins() {
    let engine = det_engine(2_000);
    let session = engine.session();
    let semi = session
        .prepare_sql("SELECT k FROM facts SEMI JOIN dim ON k = id WHERE k < 10")
        .unwrap()
        .execute(&Params::none())
        .unwrap()
        .collect_batch();
    assert!(semi.rows() > 0);
    assert!(semi.column(0).as_ints().iter().all(|&k| k < 10));
    let anti = session
        .prepare_sql("SELECT k FROM facts ANTI JOIN dim ON k = id")
        .unwrap()
        .execute(&Params::none())
        .unwrap()
        .collect_batch();
    // dim covers ids 0..64 and facts has k in 0..64: every row matches.
    assert_eq!(anti.rows(), 0);
}

#[test]
fn scalar_functions_and_literals() {
    let engine = det_engine(3_000);
    let session = engine.session();
    let sql = "SELECT k, year(d) AS y, month(d) AS m, substr(tag, 1, 1) AS t0 \
               FROM facts WHERE d >= DATE '1970-06-01' AND tag LIKE 'x%' \
               AND k IN (1, 2, 3) AND v IS NOT NULL LIMIT 20";
    let batch = session
        .prepare_sql(sql)
        .unwrap()
        .execute(&Params::none())
        .unwrap()
        .collect_batch();
    assert!(batch.rows() > 0);
    assert!(batch
        .column(1)
        .as_ints()
        .iter()
        .all(|&y| y == 1970 || y == 1971));
}

#[test]
fn sql_dml_roundtrip_with_invalidation() {
    let engine = det_engine(5_000);
    let session = engine.session();
    let count_sql = "SELECT count(*) AS n FROM facts WHERE k = 63";
    let n0 = {
        let out = session.sql(count_sql, &Params::none()).unwrap();
        out.expect_rows().collect_batch().column(0).as_ints()[0]
    };
    // INSERT through SQL commits an epoch and invalidates the count.
    let out = session
        .sql(
            "INSERT INTO facts (k, v, tag, d) VALUES (63, 1.0, 'x', DATE '1970-01-05'), \
             (63, $v, 'y', DATE '1970-01-06')",
            &Params::new().set("v", 2.5),
        )
        .unwrap();
    let write = out.into_write().expect("INSERT is a write");
    assert_eq!(write.rows_affected, 2);
    let n1 = {
        let out = session.sql(count_sql, &Params::none()).unwrap();
        out.expect_rows().collect_batch().column(0).as_ints()[0]
    };
    assert_eq!(n1, n0 + 2, "inserted rows are visible");
    // DELETE them again (parameterized predicate).
    let out = session
        .sql(
            // No pre-existing k=63 row has d in the 1970-01-05..06 window
            // (impossible residues mod 64/400), so exactly the two
            // inserted rows match.
            "DELETE FROM facts WHERE k = 63 AND d >= $cut AND d <= DATE '1970-01-06'",
            &Params::new().set("cut", Value::Date(4)),
        )
        .unwrap();
    let write = out.into_write().expect("DELETE is a write");
    assert_eq!(write.rows_affected, 2);
    let n2 = {
        let out = session.sql(count_sql, &Params::none()).unwrap();
        out.expect_rows().collect_batch().column(0).as_ints()[0]
    };
    assert_eq!(n2, n0);
    assert_eq!(session.stats().writes, 2);
}

#[test]
fn prepare_sql_rejects_dml() {
    let engine = det_engine(100);
    let session = engine.session();
    let err = session
        .prepare_sql("INSERT INTO facts (k, v, tag, d) VALUES (1, 1.0, 'x', DATE '1970-01-01')")
        .unwrap_err();
    assert!(err.message.contains("Session::sql"), "{err}");
}

#[test]
fn explain_reports_fingerprints_and_cache_states() {
    let engine = det_engine(10_000);
    let session = engine.session();
    let sql = "SELECT k, sum(v) AS sv FROM facts WHERE k < 12 GROUP BY k";
    let prepared = session.prepare_sql(sql).unwrap();
    let cold = prepared.explain();
    assert!(cold.contains("[fp "), "fingerprints annotated: {cold}");
    assert!(cold.contains("scan facts"), "{cold}");
    assert!(
        cold.contains("[cold]"),
        "never-executed plan is cold: {cold}"
    );
    assert!(!cold.contains("[cached]"), "{cold}");
    // Execute; the aggregate result materializes, and EXPLAIN shows it.
    let out = prepared.execute(&Params::none()).unwrap().into_outcome();
    assert!(out.materialized(), "deterministic config caches this");
    let warm = prepared.explain();
    assert!(
        warm.contains("[cached]"),
        "after execution some node must be cached:\n{warm}"
    );
    // The no-recycler engine renders without state annotations.
    let plain_engine = Engine::builder(catalog(100)).no_recycler().build();
    let plain = plain_engine.session().prepare_sql(sql).unwrap().explain();
    assert!(!plain.contains("[cold]"), "{plain}");
    assert!(plain.contains("[fp "), "{plain}");
}

#[test]
fn errors_carry_spans_and_kinds() {
    let engine = det_engine(100);
    let session = engine.session();
    // Unknown column: span points at the token.
    let sql = "SELECT bogus FROM facts";
    let err = session.prepare_sql(sql).unwrap_err();
    assert_eq!(&sql[err.span.start..err.span.end], "bogus");
    let rendered = err.render(sql);
    assert!(rendered.contains("^^^^^"), "{rendered}");
    // Unknown table: structured plan kind preserved.
    let err = session.prepare_sql("SELECT x FROM ghost").unwrap_err();
    assert!(
        matches!(
            &err.kind,
            SqlErrorKind::Plan(recycler_db::plan::PlanErrorKind::UnknownTable { table })
                if table == "ghost"
        ),
        "{:?}",
        err.kind
    );
    // Ambiguous column.
    let err = session
        .prepare_sql("SELECT k FROM facts f, facts g WHERE f.k = g.k")
        .unwrap_err();
    assert!(err.message.contains("ambiguous"), "{err}");
    // Aggregates misplaced.
    let err = session
        .prepare_sql("SELECT k FROM facts WHERE sum(v) > 1.0")
        .unwrap_err();
    assert!(err.message.contains("aggregate"), "{err}");
    // Ungrouped column in an aggregate query.
    let err = session
        .prepare_sql("SELECT k, sum(v) AS s FROM facts GROUP BY tag")
        .unwrap_err();
    assert!(err.message.contains("GROUP BY"), "{err}");
    // Lex error.
    let err = session.prepare_sql("SELECT 'open FROM facts").unwrap_err();
    assert!(matches!(err.kind, SqlErrorKind::Lex), "{err}");
}

#[test]
fn select_star_and_bare_table() {
    let engine = det_engine(500);
    let session = engine.session();
    let batch = session
        .prepare_sql("SELECT * FROM dim ORDER BY id DESC LIMIT 3")
        .unwrap()
        .execute(&Params::none())
        .unwrap()
        .collect_batch();
    assert_eq!(batch.width(), 2);
    assert_eq!(batch.column(0).as_ints(), &[63, 62, 61]);
    // A query touching no columns still scans something for row counts.
    let n = session
        .prepare_sql("SELECT count(*) AS n FROM dim")
        .unwrap()
        .execute(&Params::none())
        .unwrap()
        .collect_batch();
    assert_eq!(n.column(0).as_ints(), &[64]);
}

#[test]
fn sql_runs_against_no_recycler_engine() {
    let engine = Engine::builder(catalog(1_000)).no_recycler().build();
    let session = engine.session();
    let out = session
        .sql(
            "SELECT k, v FROM facts WHERE k = $k ORDER BY v DESC LIMIT 5",
            &Params::new().set("k", 3i64),
        )
        .unwrap();
    let batch = match out {
        SqlOutcome::Rows(h) => h.collect_batch(),
        SqlOutcome::Write(_) => panic!("query returned a write outcome"),
    };
    assert!(batch.rows() <= 5);
    assert!(batch.column(0).as_ints().iter().all(|&k| k == 3));
}
