//! Parallel-equivalence property suite.
//!
//! Morsel-driven parallel execution claims to be *observationally
//! identical* to serial execution — not just row-set-equal but, for
//! every plan the builder parallelizes, byte-identical in row order
//! (deterministic gathers, key-sorted aggregate breakers, position
//! tie-broken top-N). This suite holds it to that claim:
//!
//! * TPC-H Q1/Q6/Q14 and the SkyServer cone template, at DOP ∈ {1, 2, 4,
//!   8} (plus `RDB_TEST_DOP` from the CI matrix), must produce rows
//!   **identical in order** to the DOP=1 run and row-set-identical to the
//!   operator-at-a-time materializing engine;
//! * seeded random plans (filters / projections / joins of every kind /
//!   aggregates / top-N / sort) over NULL-bearing random tables get the
//!   same checks, including selection-vector edge cases (all-true,
//!   all-false, sparse-compacted filters);
//! * the hash-aggregate breaker's output order is regression-pinned:
//!   sorted by group key, independent of DOP and of input arrival order.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use recycler_db::engine::{Engine, MaterializingEngine};
use recycler_db::exec::FnRegistry;
use recycler_db::expr::{AggFunc, Expr};
use recycler_db::plan::{scan, JoinKind, Plan, SortKeyExpr};
use recycler_db::recycler::RecyclerConfig;
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::{DataType, Schema, Value};

/// This suite asserts exact DOPs up to 8 regardless of host width, so it
/// opts out of the engine's available-core clamp (`effective_dop`) — the
/// equivalence contract is precisely that oversubscribed execution still
/// produces serial bytes.
fn allow_oversubscribe() {
    std::env::set_var("RDB_ALLOW_OVERSUBSCRIBE", "1");
}

/// DOPs every check runs at; `RDB_TEST_DOP` (the CI matrix) adds one.
fn dop_matrix() -> Vec<usize> {
    let mut dops = vec![1, 2, 4, 8];
    if let Some(extra) = std::env::var("RDB_TEST_DOP")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if !dops.contains(&extra) {
            dops.push(extra);
        }
    }
    dops
}

/// Execute `plan` at `dop` on a fresh recycling engine; returns the
/// computed rows and the cache-replayed rows (order preserved).
fn run_at_dop(
    cat: &Arc<Catalog>,
    functions: Option<&Arc<FnRegistry>>,
    plan: &Plan,
    dop: usize,
) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let mut config = RecyclerConfig::deterministic(256 << 20);
    config.spec_min_progress = 0.0;
    let mut builder = Engine::builder(cat.clone())
        .recycler(config)
        .parallelism(dop);
    if let Some(f) = functions {
        builder = builder.functions(f.clone());
    }
    let engine = builder.build();
    let session = engine.session();
    let computed = session.query(plan).unwrap().into_outcome();
    assert_eq!(computed.dop, dop);
    let replayed = session.query(plan).unwrap().into_outcome();
    (computed.batch.to_rows(), replayed.batch.to_rows())
}

/// The full equivalence check for one plan: every DOP must reproduce the
/// serial row *order*, replay from cache identically, and agree with the
/// materializing oracle on the row set.
fn check_plan(cat: &Arc<Catalog>, functions: Option<&Arc<FnRegistry>>, plan: &Plan, label: &str) {
    let (serial, serial_replay) = run_at_dop(cat, functions, plan, 1);
    assert_eq!(
        serial, serial_replay,
        "{label}: serial replay diverges from serial compute"
    );
    let mut materializing = MaterializingEngine::naive(cat.clone());
    if let Some(f) = functions {
        materializing = materializing.with_functions(f.clone());
    }
    let oracle = materializing.run(plan).unwrap();
    let sorted = |mut rows: Vec<Vec<Value>>| {
        rows.sort();
        rows
    };
    assert_eq!(
        sorted(serial.clone()),
        sorted(oracle.batch.to_rows()),
        "{label}: serial row set diverges from the materializing oracle"
    );
    for dop in dop_matrix() {
        if dop == 1 {
            continue;
        }
        let (parallel, replayed) = run_at_dop(cat, functions, plan, dop);
        assert_eq!(
            serial, parallel,
            "{label}: DOP={dop} rows (or their order) diverge from serial"
        );
        assert_eq!(
            parallel, replayed,
            "{label}: DOP={dop} cache replay diverges from its compute"
        );
    }
}

// ---- paper workloads -------------------------------------------------------

#[test]
fn tpch_q1_q6_q14_identical_at_every_dop() {
    allow_oversubscribe();
    use recycler_db::tpch::{build_query, generate, TpchConfig};
    let cat = generate(&TpchConfig {
        scale: 0.02,
        seed: 3,
    });
    for &q in &[1usize, 6, 14] {
        for seed in 0..2u64 {
            let mut rng = SmallRng::seed_from_u64(500 + seed);
            let plan = build_query(q, &mut rng, 0.02, false);
            check_plan(&cat, None, &plan, &format!("Q{q} seed {seed}"));
        }
    }
}

#[test]
fn skyserver_cones_identical_at_every_dop() {
    allow_oversubscribe();
    use recycler_db::skyserver::{functions, generate, nearby_query, SkyConfig};
    let cat = generate(&SkyConfig {
        objects: 8_000,
        seed: 9,
    });
    let fns = functions(&cat);
    for (i, (ra, dec, radius)) in [(150.0, -5.0, 2.0), (180.0, -1.0, 1.5), (150.0, -5.0, 4.0)]
        .into_iter()
        .enumerate()
    {
        let plan = nearby_query(
            ra,
            dec,
            radius,
            &["p_objid", "p_ra", "p_dec", "p_psfmag_r"],
            50,
        );
        check_plan(&cat, Some(&fns), &plan, &format!("cone {i}"));
    }
}

// ---- random plans over NULL-bearing data -----------------------------------

/// A random table: int key (clustered), nullable int, nullable float,
/// low-cardinality string.
fn random_catalog(rng: &mut SmallRng, rows: usize) -> Arc<Catalog> {
    let schema = Schema::from_pairs([
        ("k", DataType::Int),
        ("a", DataType::Int),
        ("b", DataType::Float),
        ("tag", DataType::Str),
    ]);
    let mut tb = TableBuilder::new("t", schema, rows);
    for i in 0..rows {
        tb.push_row(vec![
            Value::Int(i as i64 % 97),
            if rng.gen_bool(0.15) {
                Value::Null
            } else {
                Value::Int(rng.gen_range(-50..50))
            },
            if rng.gen_bool(0.15) {
                Value::Null
            } else {
                Value::Float(rng.gen_range(-8.0..8.0))
            },
            Value::str(["red", "green", "blue", "cyan"][rng.gen_range(0..4)]),
        ]);
    }
    // A small dimension table for joins (with a NULL key row).
    let dim_schema = Schema::from_pairs([("dk", DataType::Int), ("w", DataType::Float)]);
    let mut db = TableBuilder::new("dim", dim_schema, 40);
    for i in 0..40i64 {
        db.push_row(vec![
            if i == 13 {
                Value::Null
            } else {
                Value::Int(i * 3 % 97)
            },
            Value::Float(i as f64 * 0.5),
        ]);
    }
    let mut cat = Catalog::new();
    cat.register(tb.finish()).unwrap();
    cat.register(db.finish()).unwrap();
    Arc::new(cat)
}

/// A random scan-rooted pipeline, optionally joined and topped by a
/// breaker — shapes the builder actually parallelizes.
fn random_plan(rng: &mut SmallRng) -> Plan {
    let mut plan = scan("t", &["k", "a", "b", "tag"]);
    // 0-2 filters, from a menu covering all-true, all-false, sparse, NULLs.
    for _ in 0..rng.gen_range(0..=2) {
        let pred = match rng.gen_range(0..6) {
            0 => Expr::name("a").gt(Expr::lit(rng.gen_range(-60i64..60))),
            1 => Expr::name("b").le(Expr::lit(rng.gen_range(-9.0f64..9.0))),
            2 => Expr::name("tag").eq(Expr::lit("green")),
            3 => Expr::name("k").lt(Expr::lit(rng.gen_range(0i64..97))),
            4 => Expr::name("a").ge(Expr::lit(100i64)), // all-false
            _ => Expr::name("k").ge(Expr::lit(0i64)),   // all-true
        };
        plan = plan.select(pred);
    }
    if rng.gen_bool(0.4) {
        let dim = scan("dim", &["dk", "w"]);
        let kind = match rng.gen_range(0..4) {
            0 => JoinKind::Inner,
            1 => JoinKind::LeftOuter,
            2 => JoinKind::Semi,
            _ => JoinKind::Anti,
        };
        plan = plan.join(dim, kind, vec![Expr::name("k")], vec![Expr::name("dk")]);
    }
    match rng.gen_range(0..5) {
        // Exact accumulators only: the builder partitions this aggregate
        // across workers (arbitrary merge order, still bit-identical).
        0 => plan.aggregate(
            vec![(Expr::name("tag"), "tag")],
            vec![
                (AggFunc::Sum(Expr::name("a")), "sa"),
                (AggFunc::CountStar, "n"),
                (AggFunc::Min(Expr::name("b")), "mn"),
                (AggFunc::Max(Expr::name("b")), "mx"),
                (AggFunc::CountDistinct(Expr::name("k")), "dk"),
            ],
        ),
        // Inexact (float) accumulators: the builder must keep serial fold
        // order (gathered input) to stay bit-identical.
        4 => plan.aggregate(
            vec![(Expr::name("tag"), "tag")],
            vec![
                (AggFunc::Avg(Expr::name("b")), "avg"),
                (AggFunc::Sum(Expr::name("b")), "sb"),
                (AggFunc::CountStar, "n"),
            ],
        ),
        1 => plan.top_n(
            vec![
                SortKeyExpr::desc(Expr::name("a")),
                SortKeyExpr::asc(Expr::name("k")),
            ],
            rng.gen_range(1..40),
        ),
        2 => plan.sort(vec![
            SortKeyExpr::asc(Expr::name("tag")),
            SortKeyExpr::desc(Expr::name("b")),
        ]),
        _ => plan.project(vec![
            (Expr::name("k").add(Expr::name("a")), "ka"),
            (Expr::name("b"), "b"),
        ]),
    }
}

#[test]
fn random_plans_identical_at_every_dop() {
    allow_oversubscribe();
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(7_000 + seed);
        let rows = rng.gen_range(1..9_000);
        let cat = random_catalog(&mut rng, rows);
        let plan = random_plan(&mut rng);
        check_plan(
            &cat,
            None,
            &plan,
            &format!("random plan seed {seed} ({rows} rows)"),
        );
    }
}

// ---- deterministic aggregate order (regression) ----------------------------

#[test]
fn hash_agg_output_is_sorted_by_group_key_at_every_dop() {
    allow_oversubscribe();
    // Keys are inserted in descending scan order; the breaker must emit
    // ascending regardless of DOP or worker merge order. This pins the
    // determinism contract stable cache replay (and fig6/fig7 run-to-run
    // comparability) depends on.
    let schema = Schema::from_pairs([("g", DataType::Int), ("v", DataType::Int)]);
    let rows = 6_000;
    let mut tb = TableBuilder::new("t", schema, rows);
    for i in 0..rows as i64 {
        tb.push_row(vec![Value::Int(500 - (i % 500)), Value::Int(i)]);
    }
    let mut cat = Catalog::new();
    cat.register(tb.finish()).unwrap();
    let cat = Arc::new(cat);
    let plan = scan("t", &["g", "v"]).aggregate(
        vec![(Expr::name("g"), "g")],
        vec![(AggFunc::Sum(Expr::name("v")), "sv")],
    );
    for dop in dop_matrix() {
        let engine = Engine::builder(cat.clone())
            .no_recycler()
            .parallelism(dop)
            .build();
        let out = engine.session().query(&plan).unwrap().into_outcome();
        let keys: Vec<i64> = out.batch.column(0).as_ints().to_vec();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(
            keys, sorted,
            "DOP={dop}: aggregate emission must be ascending by group key"
        );
        assert_eq!(keys.len(), 500);
        // Twice in a row: identical bytes (not just identical sets).
        let again = engine.session().query(&plan).unwrap().into_outcome();
        assert_eq!(out.batch.to_rows(), again.batch.to_rows(), "DOP={dop}");
    }
}

#[test]
fn session_override_beats_engine_default_and_is_recorded() {
    allow_oversubscribe();
    let mut rng = SmallRng::seed_from_u64(42);
    let cat = random_catalog(&mut rng, 5_000);
    let engine = Engine::builder(cat).no_recycler().parallelism(2).build();
    let session = engine.session();
    assert_eq!(session.parallelism(), 2);
    let plan = scan("t", &["k", "a"]).select(Expr::name("k").lt(Expr::lit(50)));
    let h = session.query(&plan).unwrap();
    assert_eq!(h.dop(), 2);
    drop(h);
    session.set_parallelism(8);
    assert_eq!(session.parallelism(), 8);
    let out = session.query(&plan).unwrap().into_outcome();
    assert_eq!(out.dop, 8);
    session.clear_parallelism();
    assert_eq!(session.parallelism(), 2);
    assert_eq!(session.stats().parallel, 2, "both executions ran DOP > 1");
}
