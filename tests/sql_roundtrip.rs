//! Parser quality gates: a seeded roundtrip property test (print →
//! reparse → identical canonical text, identical plan fingerprint) and a
//! corpus of malformed inputs asserting span-accurate errors and no
//! panics.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use recycler_db::engine::Engine;
use recycler_db::sql::{parse, Statement};
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::{DataType, Schema, Value};

fn catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new();
    let schema = Schema::from_pairs([
        ("a", DataType::Int),
        ("b", DataType::Float),
        ("c", DataType::Str),
        ("d", DataType::Date),
    ]);
    let mut t = TableBuilder::new("t", schema, 100);
    for i in 0..100i64 {
        t.push_row(vec![
            Value::Int(i % 10),
            Value::Float(i as f64 * 0.25),
            Value::str(["p", "q", "r"][(i % 3) as usize]),
            Value::Date((i % 50) as i32),
        ]);
    }
    cat.register(t.finish()).unwrap();
    let schema = Schema::from_pairs([("id", DataType::Int), ("w", DataType::Float)]);
    let mut u = TableBuilder::new("u", schema, 10);
    for i in 0..10i64 {
        u.push_row(vec![Value::Int(i), Value::Float(i as f64)]);
    }
    cat.register(u.finish()).unwrap();
    Arc::new(cat)
}

// ---- seeded query generator ----------------------------------------------

struct Gen {
    rng: SmallRng,
}

impl Gen {
    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[self.rng.gen_range(0..options.len())]
    }

    fn comparison(&mut self) -> String {
        // Types kept compatible: ints/floats against a/b, strings
        // against c, dates against d.
        match self.rng.gen_range(0..5) {
            0 => format!(
                "a {} {}",
                self.pick(&["=", "<>", "<", "<=", ">", ">="]),
                self.rng.gen_range(-5..15)
            ),
            1 => format!(
                "b {} {:.1}",
                self.pick(&["<", ">", "<=", ">="]),
                self.rng.gen_range(0..200) as f64 * 0.1
            ),
            2 => format!(
                "c {} '{}'",
                self.pick(&["=", "<>"]),
                self.pick(&["p", "q", "r"])
            ),
            3 => format!("d >= DATE '1970-01-{:02}'", self.rng.gen_range(1..29)),
            _ => format!("{} < a", self.rng.gen_range(-5..10)),
        }
    }

    fn predicate(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.gen_bool(0.4) {
            let base = self.comparison();
            match self.rng.gen_range(0..5) {
                0 => format!("NOT {base}"),
                1 => format!("a IN (1, 2, {})", self.rng.gen_range(3..9)),
                2 => "c IS NOT NULL".to_string(),
                3 => format!(
                    "a BETWEEN {} AND {}",
                    self.rng.gen_range(0..4),
                    self.rng.gen_range(4..12)
                ),
                _ => base,
            }
        } else {
            let op = self.pick(&["AND", "OR"]);
            format!(
                "({} {op} {})",
                self.predicate(depth - 1),
                self.predicate(depth - 1)
            )
        }
    }

    fn scalar(&mut self) -> String {
        match self.rng.gen_range(0..6) {
            0 => "a".to_string(),
            1 => "b".to_string(),
            2 => format!("a + {}", self.rng.gen_range(1..9)),
            3 => format!("b * {:.1}", self.rng.gen_range(1..30) as f64 * 0.1),
            4 => "year(d)".to_string(),
            _ => format!("CASE WHEN {} THEN 1.0 ELSE 0.0 END", self.comparison()),
        }
    }

    fn query(&mut self) -> String {
        let grouped = self.rng.gen_bool(0.4);
        let joined = self.rng.gen_bool(0.3);
        let from = if joined {
            "t INNER JOIN u ON a = id"
        } else {
            "t"
        };
        let mut sql = if grouped {
            let agg = self.pick(&[
                "sum(b)",
                "count(*)",
                "min(b)",
                "max(a)",
                "avg(b)",
                "count(distinct a)",
            ]);
            format!("SELECT c, {agg} AS agg0 FROM {from}")
        } else {
            let mut items = vec![format!("{} AS s0", self.scalar())];
            for i in 1..self.rng.gen_range(1..4) {
                items.push(format!("{} AS s{i}", self.scalar()));
            }
            format!("SELECT {} FROM {from}", items.join(", "))
        };
        if self.rng.gen_bool(0.8) {
            sql.push_str(&format!(" WHERE {}", self.predicate(2)));
        }
        if grouped {
            sql.push_str(" GROUP BY c");
            if self.rng.gen_bool(0.3) {
                sql.push_str(" HAVING count(*) > 1");
            }
            if self.rng.gen_bool(0.5) {
                sql.push_str(" ORDER BY c");
            }
        } else if self.rng.gen_bool(0.4) {
            sql.push_str(" ORDER BY s0");
        }
        if self.rng.gen_bool(0.4) {
            sql.push_str(&format!(" LIMIT {}", self.rng.gen_range(1..40)));
        }
        sql
    }
}

#[test]
fn roundtrip_print_reparse_fixpoint() {
    // print(parse(q)) must be a fixpoint of parse∘print, and the lowered
    // plans of q and its canonical print must fingerprint identically.
    let engine = Engine::builder(catalog()).build();
    let session = engine.session();
    let mut g = Gen {
        rng: SmallRng::seed_from_u64(0xD5),
    };
    for i in 0..300 {
        let sql = g.query();
        let ast = parse(&sql).unwrap_or_else(|e| panic!("case {i}: {}\n{}", sql, e.render(&sql)));
        let printed = ast.to_sql();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("case {i} reprint: {}\n{}", printed, e.render(&printed)));
        assert_eq!(
            printed,
            reparsed.to_sql(),
            "case {i}: print∘parse not a fixpoint for\n{sql}"
        );
        // Both texts must prepare to the same fingerprint (and execute).
        let p1 = session
            .prepare_sql(&sql)
            .unwrap_or_else(|e| panic!("case {i}: {}\n{}", sql, e.render(&sql)));
        let p2 = session
            .prepare_sql(&printed)
            .unwrap_or_else(|e| panic!("case {i}: {}\n{}", printed, e.render(&printed)));
        assert_eq!(
            p1.fingerprint(),
            p2.fingerprint(),
            "case {i}: fingerprints diverge between\n{sql}\nand\n{printed}"
        );
        let a = p1
            .execute(&recycler_db::expr::Params::none())
            .unwrap()
            .collect_batch();
        let b = p2
            .execute(&recycler_db::expr::Params::none())
            .unwrap()
            .collect_batch();
        assert_eq!(a.to_rows(), b.to_rows(), "case {i}: results diverge");
    }
}

#[test]
fn dml_roundtrip_fixpoint() {
    let cases = [
        "INSERT INTO u (id, w) VALUES (1, 2.0), (3, 4.5)",
        "INSERT INTO u VALUES (9, 1.5)",
        "DELETE FROM u WHERE id > 5 AND w < 3.0",
        "DELETE FROM u",
    ];
    for sql in cases {
        let ast = parse(sql).unwrap();
        let printed = ast.to_sql();
        let again = parse(&printed).unwrap();
        assert_eq!(printed, again.to_sql(), "{sql}");
        assert!(matches!(again, Statement::Insert(_) | Statement::Delete(_)));
    }
}

// ---- malformed corpus -----------------------------------------------------

#[test]
fn malformed_inputs_error_with_spans_and_never_panic() {
    // (sql, expected substring of the offending fragment or message)
    let corpus: &[(&str, &str)] = &[
        ("", "end of input"),
        ("SELECT", "expected an expression"),
        ("SELECT a", "expected FROM"),
        ("SELECT a FROM", "expected a table name"),
        ("SELECT a FROM t WHERE", "expected an expression"),
        ("SELECT a FROM t WHERE a >", "end of input"),
        ("SELECT a FROM t WHERE a > 1 AND", "expected an expression"),
        ("SELECT a FROM t GROUP", "expected BY"),
        ("SELECT a FROM t ORDER a", "expected BY"),
        ("SELECT a FROM t LIMIT", "expected a row count"),
        ("SELECT a FROM t LIMIT -3", "expected a row count"),
        ("SELECT a FROM t UNION SELECT a FROM t", "expected ALL"),
        ("SELECT a, FROM t", "expected an expression"),
        ("SELECT a FROM t JOIN u", "expected ON"),
        ("SELECT count(* FROM t", "expected ')'"),
        ("SELECT a FROM t WHERE a IN ()", "expected an expression"),
        ("SELECT a FROM t WHERE a LIKE b", "pattern string"),
        ("SELECT a FROM t WHERE a IS b", "expected NULL"),
        ("SELECT 'unterminated FROM t", "unterminated string"),
        ("SELECT a FROM t WHERE x # 1", "unexpected character"),
        ("SELECT $ FROM t", "parameter name"),
        ("SELECT CASE a WHEN 1 THEN 2 END FROM t", "expected WHEN"),
        ("SELECT extract(day from d) FROM t", "YEAR and MONTH"),
        ("SELECT sum(distinct b) FROM t", "DISTINCT"),
        ("INSERT INTO", "expected a table name"),
        ("INSERT INTO t VALUES", "expected '('"),
        ("INSERT INTO t VALUES (1,)", "expected an expression"),
        ("DELETE t", "expected FROM"),
        ("SELECT a FROM t; SELECT b FROM t", "trailing"),
        (
            "SELECT a FROM t WHERE NOT BETWEEN 1 AND 2",
            "expected an expression",
        ),
        ("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 2", "NOT BETWEEN"),
    ];
    for (sql, expect) in corpus {
        let err = match parse(sql) {
            Err(e) => e,
            Ok(stmt) => panic!("malformed input parsed: {sql:?} -> {}", stmt.to_sql()),
        };
        assert!(
            err.message.contains(expect),
            "{sql:?}: message {:?} missing {expect:?}",
            err.message
        );
        // Spans stay inside the input (rendering must never panic).
        assert!(err.span.start <= sql.len(), "{sql:?}: span out of range");
        assert!(err.span.end <= sql.len().max(err.span.start), "{sql:?}");
        let _ = err.render(sql);
    }
}

#[test]
fn binder_errors_point_at_fragments() {
    let engine = Engine::builder(catalog()).build();
    let session = engine.session();
    let cases: &[(&str, &str)] = &[
        ("SELECT zz FROM t", "zz"),
        ("SELECT t.zz FROM t", "t.zz"),
        ("SELECT x.a FROM t", "x.a"),
        ("SELECT a FROM t INNER JOIN u ON a < id", "a < id"),
        ("SELECT a, sum(b) AS s FROM t GROUP BY c", "a"),
        ("SELECT substr(c, a, 2) FROM t", "a"),
    ];
    for (sql, fragment) in cases {
        let err = session
            .prepare_sql(sql)
            .err()
            .unwrap_or_else(|| panic!("{sql:?} must fail"));
        let got = &sql[err.span.start..err.span.end];
        assert_eq!(
            got,
            *fragment,
            "{sql:?}: span points at {got:?}\n{}",
            err.render(sql)
        );
    }
}
