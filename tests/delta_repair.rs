//! Property suite for delta repair (`rdb_delta`): random interleavings of
//! appends, deletes, and queries — NULL-bearing data, count-gated aggregate
//! shapes, DOP 1 and 4 — where cached results are *repaired* in place on
//! every commit and each answer must be byte-identical to a fresh
//! materializing run over the snapshot the query read. Mirrors
//! `tests/update_property.rs`, which pins the evict-on-write baseline.
//!
//! Also covers the no-op fast path (a delta-free commit must not invoke the
//! repair walk) and the live-subscription surface built on top of repair.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use recycler_db::engine::{DeltaEvent, Engine, MaterializingEngine};
use recycler_db::expr::{AggFunc, Expr, Params};
use recycler_db::plan::{scan, Plan};
use recycler_db::recycler::RecyclerConfig;
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::{Batch, DataType, Schema, Value};

fn nullable_row(rng: &mut SmallRng) -> Vec<Value> {
    vec![
        if rng.gen_bool(0.15) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(-20..40))
        },
        if rng.gen_bool(0.15) {
            Value::Null
        } else {
            Value::Float(rng.gen_range(-100.0..100.0))
        },
    ]
}

fn engine(seed: u64, rows: usize, dop: usize) -> Arc<Engine> {
    let schema = Schema::from_pairs([("k", DataType::Int), ("v", DataType::Float)]);
    let mut b = TableBuilder::new("t", schema, rows);
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..rows {
        b.push_row(nullable_row(&mut rng));
    }
    let mut cat = Catalog::new();
    cat.register(b.finish()).unwrap();
    let mut config = RecyclerConfig::deterministic(64 << 20);
    config.spec_min_progress = 0.0;
    Engine::builder(Arc::new(cat))
        .recycler(config)
        .parallelism(dop)
        .build()
}

/// Query pool over a shared `k >= cut` family. Shapes 0–1 match the
/// baseline suite; 2 is float-order-sensitive (global SUM/MIN, resumable
/// on append only); 3 is count-gated (CountStar + Count(expr)), the one
/// class where *deletes* are repaired by group retraction.
fn query(shape: usize, cut: i64) -> Plan {
    let base = scan("t", &["k", "v"]).select(Expr::name("k").ge(Expr::lit(cut)));
    match shape {
        0 => base,
        1 => base.aggregate(
            vec![(Expr::name("k"), "k")],
            vec![
                (AggFunc::Sum(Expr::name("v")), "sv"),
                (AggFunc::CountStar, "n"),
            ],
        ),
        2 => base.aggregate(
            vec![],
            vec![
                (AggFunc::Sum(Expr::name("v")), "sv"),
                (AggFunc::Min(Expr::name("v")), "mn"),
            ],
        ),
        _ => base.aggregate(
            vec![(Expr::name("k"), "k")],
            vec![
                (AggFunc::CountStar, "n"),
                (AggFunc::Count(Expr::name("v")), "nv"),
            ],
        ),
    }
}

fn sorted_rows(b: &Batch) -> Vec<Vec<Value>> {
    let mut rows = b.to_rows();
    rows.sort();
    rows
}

#[test]
fn random_repairs_are_byte_identical_to_recompute() {
    for dop in [1usize, 4] {
        let mut repaired_total = 0u64;
        let mut delete_repairs = 0u64;
        for seed in 0..4u64 {
            let engine = engine(3000 + seed, 800, dop);
            let session = engine.session();
            let mut rng = SmallRng::seed_from_u64(seed);
            let cuts: Vec<i64> = (0..4).map(|_| rng.gen_range(-25..25)).collect();
            let stats = &engine.recycler().unwrap().stats;
            for step in 0..120 {
                match rng.gen_range(0..10) {
                    // 20%: append a small NULL-bearing batch.
                    0 | 1 => {
                        let rows: Vec<Vec<Value>> = (0..rng.gen_range(1..8))
                            .map(|_| nullable_row(&mut rng))
                            .collect();
                        session.append("t", &rows).unwrap();
                    }
                    // 10%: delete by a random predicate (NULL → kept).
                    2 => {
                        let before = stats.repaired.load(Ordering::Relaxed);
                        let pred = if rng.gen_bool(0.5) {
                            Expr::name("k").eq(Expr::lit(rng.gen_range(-20i64..40)))
                        } else {
                            Expr::name("v").gt(Expr::lit(rng.gen_range(60.0..100.0)))
                        };
                        session.delete("t", &pred).unwrap();
                        delete_repairs += stats.repaired.load(Ordering::Relaxed) - before;
                    }
                    // 70%: query, checked against the snapshot it read.
                    _ => {
                        let shape = rng.gen_range(0..4);
                        let cut = cuts[rng.gen_range(0..cuts.len())];
                        let plan = query(shape, cut);
                        let handle = session.query(&plan).unwrap();
                        let snapshot = handle.snapshot().clone();
                        let out = handle.into_outcome();
                        let baseline = MaterializingEngine::naive(Arc::new(snapshot.to_catalog()))
                            .run(&plan)
                            .unwrap();
                        // `Value` compares floats exactly, so this is a
                        // byte-identity check: repaired SUMs must carry the
                        // very bits a serial recompute would produce.
                        assert_eq!(
                            sorted_rows(&out.batch),
                            sorted_rows(&baseline.batch),
                            "dop {dop} seed {seed} step {step}: shape {shape} cut {cut} \
                             diverged (epochs {:?})",
                            snapshot.epochs()
                        );
                    }
                }
            }
            repaired_total += stats.repaired.load(Ordering::Relaxed);
        }
        // The mix must actually exercise repair, not collapse to eviction.
        assert!(
            repaired_total > 0,
            "dop {dop}: appends against a warm cache must repair entries"
        );
        assert!(
            delete_repairs > 0,
            "dop {dop}: count-gated aggregates must survive deletes via retraction"
        );
    }
}

#[test]
fn noop_dml_skips_the_repair_walk() {
    // Satellite: the no-op fast path. A delete matching nothing commits no
    // epoch and carries no delta — the repair walk must not run at all
    // (counted by `deltas_applied`, one bump per routed delta).
    let engine = engine(7, 400, 1);
    let session = engine.session();
    let plan = query(1, -25);
    session.query(&plan).unwrap().into_outcome();
    let stats = &engine.recycler().unwrap().stats;
    assert_eq!(stats.deltas_applied.load(Ordering::Relaxed), 0);

    session
        .delete("t", &Expr::name("k").gt(Expr::lit(10_000i64)))
        .unwrap();
    assert_eq!(
        stats.deltas_applied.load(Ordering::Relaxed),
        0,
        "a no-op delete must not invoke repair"
    );
    assert_eq!(stats.repaired.load(Ordering::Relaxed), 0);
    assert_eq!(stats.repair_fallbacks.load(Ordering::Relaxed), 0);
    assert!(
        session.query(&plan).unwrap().into_outcome().reused(),
        "the cache stays hot across a no-op commit"
    );

    // One real append → exactly one repair invocation, however many
    // entries it patched.
    session
        .append("t", &[vec![Value::Int(0), Value::Float(1.0)]])
        .unwrap();
    assert_eq!(
        stats.deltas_applied.load(Ordering::Relaxed),
        1,
        "one routed delta per non-empty commit"
    );
    let snap = session.stats();
    assert_eq!(snap.deltas_applied, 1);
    assert!(snap.repaired_hits + snap.repair_fallbacks >= 1);
}

#[test]
fn subscriptions_stream_initial_deltas_and_refreshes() {
    let engine = engine(11, 200, 1);
    let session = engine.session();
    let sub = session
        .subscribe_sql("SELECT k, v FROM t WHERE k >= 30", &Params::new())
        .unwrap();
    assert_eq!(engine.subscriptions_active(), 1);
    assert_eq!(session.stats().subscriptions_active, 1);

    let initial = match sub.try_next() {
        Some(DeltaEvent::Initial(b)) => b,
        other => panic!("want Initial first, got {other:?}"),
    };
    let oracle = |cat: Arc<Catalog>| {
        MaterializingEngine::naive(cat)
            .run(&scan("t", &["k", "v"]).select(Expr::name("k").ge(Expr::lit(30))))
            .unwrap()
            .batch
    };
    let before = oracle(Arc::new(engine.catalog().snapshot().to_catalog()));
    assert_eq!(sorted_rows(&initial), sorted_rows(&before));

    // A select-class append streams exactly the rows it adds.
    session
        .append(
            "t",
            &[
                vec![Value::Int(35), Value::Float(1.5)],
                vec![Value::Int(-5), Value::Float(2.5)],
            ],
        )
        .unwrap();
    match sub.try_next() {
        Some(DeltaEvent::Delta {
            appended,
            table,
            epoch,
        }) => {
            assert_eq!(table, "t");
            assert!(epoch > 0);
            assert_eq!(
                appended.to_rows(),
                vec![vec![Value::Int(35), Value::Float(1.5)]],
                "only rows passing the subscription's filter are delivered"
            );
        }
        other => panic!("want Delta after append, got {other:?}"),
    }

    // An append that contributes nothing produces no event at all.
    session
        .append("t", &[vec![Value::Int(-9), Value::Float(0.0)]])
        .unwrap();
    assert!(sub.try_next().is_none(), "filtered-out appends stay silent");

    // A delete can't be expressed as appended rows → full refresh, equal
    // to a recompute over the post-commit catalog.
    session
        .delete("t", &Expr::name("k").eq(Expr::lit(35i64)))
        .unwrap();
    match sub.try_next() {
        Some(DeltaEvent::Refresh(b)) => {
            let now = oracle(Arc::new(engine.catalog().snapshot().to_catalog()));
            assert_eq!(sorted_rows(&b), sorted_rows(&now));
        }
        other => panic!("want Refresh after delete, got {other:?}"),
    }

    // Dropping the handle unregisters it; later writes fan out to no one.
    drop(sub);
    assert_eq!(engine.subscriptions_active(), 0);
    assert_eq!(session.stats().subscriptions_active, 0);
    session
        .append("t", &[vec![Value::Int(31), Value::Float(0.0)]])
        .unwrap();
}

#[test]
fn shutdown_closes_subscriptions_after_draining() {
    let engine = engine(13, 100, 1);
    let session = engine.session();
    let sub = session
        .subscribe_sql("SELECT k FROM t WHERE k >= 0", &Params::new())
        .unwrap();
    session
        .append("t", &[vec![Value::Int(1), Value::Float(0.0)]])
        .unwrap();
    engine.shutdown();
    assert!(sub.is_closed());
    // The blocking iterator drains what was queued before the close, then
    // ends instead of hanging.
    let events: Vec<DeltaEvent> = sub.collect();
    assert_eq!(events.len(), 2, "Initial + one Delta, then end: {events:?}");
    assert!(matches!(events[0], DeltaEvent::Initial(_)));
    assert!(matches!(events[1], DeltaEvent::Delta { .. }));
}
