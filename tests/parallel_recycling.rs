//! Recycler × parallelism interaction tests.
//!
//! The recycler caches by plan fingerprint and replays byte-for-byte, so
//! parallel execution must not introduce *any* observable difference in
//! what gets published:
//!
//! * a cache entry produced at DOP=8 must be byte-identical to the entry
//!   the same plan produces at DOP=1, and replays must be zero-copy
//!   (`Arc::ptr_eq`-verified shared column storage);
//! * two sessions racing on the same cold fingerprint must produce
//!   exactly one materialization — the in-flight marker makes the loser
//!   stall (or directly reuse), never duplicate the work — asserted
//!   through `RecyclerEvent`s and the recycler's aggregate counters.

use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Barrier, Mutex};

use recycler_db::engine::Engine;
use recycler_db::exec::{FnRegistry, TableFunction};
use recycler_db::expr::{AggFunc, Expr};
use recycler_db::plan::{fn_scan_exprs, scan, Plan};
use recycler_db::recycler::{RecyclerConfig, RecyclerEvent};
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::{Batch, Column, DataType, Schema, Value};

fn catalog(rows: i64) -> Arc<Catalog> {
    let mut cat = Catalog::new();
    let schema = Schema::from_pairs([
        ("k", DataType::Int),
        ("v", DataType::Int),
        ("f", DataType::Float),
    ]);
    let mut b = TableBuilder::new("t", schema, rows as usize);
    for i in 0..rows {
        b.push_row(vec![
            Value::Int(i % 200),
            Value::Int(i * 3),
            Value::Float(i as f64 * 0.125),
        ]);
    }
    cat.register(b.finish()).expect("register table");
    Arc::new(cat)
}

fn engine_at(cat: &Arc<Catalog>, dop: usize) -> Arc<Engine> {
    let mut c = RecyclerConfig::deterministic(256 << 20);
    c.spec_min_progress = 0.0;
    Engine::builder(cat.clone())
        .recycler(c)
        .parallelism(dop)
        .build()
}

/// Exact-accumulator aggregate: the builder partitions this across
/// workers at DOP > 1.
fn exact_agg_plan() -> Plan {
    scan("t", &["k", "v"])
        .select(Expr::name("v").gt(Expr::lit(100)))
        .aggregate(
            vec![(Expr::name("k"), "k")],
            vec![
                (AggFunc::Sum(Expr::name("v")), "sv"),
                (AggFunc::CountStar, "n"),
            ],
        )
}

/// Float aggregate: the builder keeps serial fold order over a gathered
/// parallel input.
fn float_agg_plan() -> Plan {
    scan("t", &["k", "f"])
        .select(Expr::name("k").lt(Expr::lit(150)))
        .aggregate(
            vec![(Expr::name("k"), "k")],
            vec![(AggFunc::Sum(Expr::name("f")), "sf")],
        )
}

#[test]
fn dop8_cache_entries_match_dop1_and_replay_zero_copy() {
    // Asserts an exact DOP=8 regardless of host width: opt out of the
    // engine's available-core clamp (byte-identity must hold even
    // oversubscribed).
    std::env::set_var("RDB_ALLOW_OVERSUBSCRIBE", "1");
    let cat = catalog(40_000);
    for (label, plan) in [
        ("exact agg", exact_agg_plan()),
        ("float agg", float_agg_plan()),
        // Selective enough that the cached result fits one batch — the
        // `collect_batch` edge then stays zero-copy; wider results pay one
        // gather at concat exactly like serial execution does.
        (
            "scan-filter",
            scan("t", &["k", "v", "f"]).select(Expr::name("k").ge(Expr::lit(195))),
        ),
    ] {
        let serial = engine_at(&cat, 1);
        let s1 = serial.session();
        let computed_1 = s1.query(&plan).unwrap().into_outcome();
        let replayed_1 = s1.query(&plan).unwrap().into_outcome();
        assert!(replayed_1.reused(), "{label}: DOP=1 second run must replay");

        let parallel = engine_at(&cat, 8);
        let s8 = parallel.session();
        let computed_8 = s8.query(&plan).unwrap().into_outcome();
        assert_eq!(computed_8.dop, 8);
        let replay_a = s8.query(&plan).unwrap().into_outcome();
        let replay_b = s8.query(&plan).unwrap().into_outcome();
        assert!(replay_a.reused() && replay_b.reused());

        // The DOP=8 entry is byte-identical to the DOP=1 entry: same rows,
        // same order (both engines replay what their store tee published).
        assert_eq!(
            computed_1.batch.to_rows(),
            computed_8.batch.to_rows(),
            "{label}: DOP=8 compute diverges from DOP=1"
        );
        assert_eq!(
            replayed_1.batch.to_rows(),
            replay_a.batch.to_rows(),
            "{label}: DOP=8 cached entry diverges from DOP=1 cached entry"
        );
        // Replays are zero-copy out of one shared cache allocation.
        for i in 0..replay_a.batch.width() {
            assert!(
                replay_a
                    .batch
                    .column(i)
                    .shares_storage(replay_b.batch.column(i)),
                "{label}: two DOP=8 replays must share the cached column {i} storage"
            );
        }
    }
}

#[test]
fn racing_cold_fingerprint_materializes_exactly_once() {
    // Two sessions, one barrier, one cold fingerprint, DOP=8 producers:
    // whatever the interleaving, the in-flight marker admits exactly one
    // materialization; the other execution reuses (stalling first if it
    // arrived mid-flight).
    for round in 0..5u64 {
        let cat = catalog(30_000 + round as i64 * 1000);
        let engine = engine_at(&cat, 8);
        let plan = exact_agg_plan();
        let barrier = Arc::new(Barrier::new(2));
        type RunRecord = (Vec<Vec<Value>>, Vec<RecyclerEvent>);
        let results: Arc<Mutex<Vec<RunRecord>>> = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let engine = Arc::clone(&engine);
                let barrier = Arc::clone(&barrier);
                let results = Arc::clone(&results);
                let plan = plan.clone();
                scope.spawn(move || {
                    let session = engine.session();
                    barrier.wait();
                    let out = session.query(&plan).unwrap().into_outcome();
                    results
                        .lock()
                        .unwrap()
                        .push((out.batch.to_rows(), out.events));
                });
            }
        });
        let results = results.lock().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, results[1].0, "round {round}: results agree");
        let all_events: Vec<&RecyclerEvent> = results.iter().flat_map(|(_, e)| e.iter()).collect();
        let materialized = all_events
            .iter()
            .filter(|e| matches!(e, RecyclerEvent::Materialized { admitted: true, .. }))
            .count();
        let reused = all_events
            .iter()
            .filter(|e| matches!(e, RecyclerEvent::Reused { .. }))
            .count();
        assert_eq!(
            materialized, 1,
            "round {round}: exactly one of the two executions materializes"
        );
        assert_eq!(reused, 1, "round {round}: the other execution reuses");
        let stats = &engine.recycler().unwrap().stats;
        assert_eq!(stats.materializations.load(Ordering::Relaxed), 1);
        assert_eq!(stats.reuses.load(Ordering::Relaxed), 1);
    }
}

/// A table function that blocks inside `execute` until released — makes
/// the producer's in-flight window deterministic instead of racy.
struct Gated {
    entered: mpsc::Sender<()>,
    release: Mutex<Option<mpsc::Receiver<()>>>,
}

impl TableFunction for Gated {
    fn schema(&self, _args: &[Value]) -> Schema {
        Schema::from_pairs([("x", DataType::Int)])
    }
    fn execute(&self, _args: &[Value], work: &mut u64) -> Vec<Batch> {
        let _ = self.entered.send(());
        if let Some(rx) = self.release.lock().unwrap().take() {
            let _ = rx.recv(); // block until the test releases us
        }
        *work += 1_000_000; // expensive: the recycler wants this cached
        vec![Batch::new(vec![Column::from_ints((0..64).collect())])]
    }
}

#[test]
fn second_query_stalls_on_in_flight_producer_then_reuses() {
    let (entered_tx, entered_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let mut reg = FnRegistry::new();
    reg.register(
        "gated",
        Arc::new(Gated {
            entered: entered_tx,
            release: Mutex::new(Some(release_rx)),
        }),
    );
    let mut c = RecyclerConfig::deterministic(256 << 20);
    c.spec_min_progress = 0.0;
    let engine = Engine::builder(catalog(2_000))
        .functions(Arc::new(reg))
        .recycler(c)
        .parallelism(4)
        .build();
    let plan = fn_scan_exprs(
        "gated",
        vec![Expr::lit(1)],
        Schema::from_pairs([("x", DataType::Int)]),
    );

    // Producer: starts executing and blocks inside the table function with
    // its store target in flight.
    let producer = {
        let engine = Arc::clone(&engine);
        let plan = plan.clone();
        std::thread::spawn(move || engine.session().query(&plan).unwrap().into_outcome())
    };
    entered_rx.recv().expect("producer entered the function");

    // Consumer: hits the same cold fingerprint while the producer is in
    // flight — must stall, not compute.
    let consumer = {
        let engine = Arc::clone(&engine);
        let plan = plan.clone();
        std::thread::spawn(move || engine.session().query(&plan).unwrap().into_outcome())
    };
    // Wait until the consumer is provably parked on the stall condvar.
    let stats = &engine.recycler().unwrap().stats;
    while stats.stalls.load(Ordering::Relaxed) == 0 {
        std::thread::yield_now();
    }
    release_tx.send(()).expect("release the producer");

    let produced = producer.join().expect("producer thread");
    let consumed = consumer.join().expect("consumer thread");
    assert!(produced.materialized(), "producer published the result");
    assert!(!produced.reused());
    assert!(
        consumed.events.iter().any(|e| matches!(
            e,
            RecyclerEvent::Stalled {
                satisfied: true,
                ..
            }
        )),
        "consumer stalled on the in-flight producer and was satisfied: {:?}",
        consumed.events
    );
    assert!(consumed.reused(), "consumer reused after the stall");
    assert_eq!(produced.batch.to_rows(), consumed.batch.to_rows());
    assert_eq!(stats.materializations.load(Ordering::Relaxed), 1);
}
