//! Update-aware recycling: fine-grained cache invalidation.
//!
//! The recycler graph knows which base tables every node reads, so a DML
//! commit on one table must evict **exactly** the dependent cache entries
//! (PAPER.md §V) — entries over other tables stay hot, and the recycler
//! keeps answering them from cache while the updated table's queries
//! recompute against the new epoch.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use recycler_db::engine::{Engine, MaterializingEngine};
use recycler_db::exec::ArtifactKind;
use recycler_db::expr::{AggFunc, Expr};
use recycler_db::plan::{scan, Plan};
use recycler_db::recycler::{RecyclerConfig, RecyclerEvent};
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::tpch::{generate, templates, TpchConfig};
use recycler_db::vector::{Batch, DataType, Schema, Value};

fn det_config() -> RecyclerConfig {
    let mut c = RecyclerConfig::deterministic(256 << 20);
    c.spec_min_progress = 0.0;
    c
}

/// Repair disabled: the paper's pure evict-on-write baseline, which the
/// precise-invalidation tests below pin down. (Repair-enabled semantics
/// are covered by `tests/delta_repair.rs`.)
fn det_config_evict_only() -> RecyclerConfig {
    let mut c = det_config();
    c.repair = false;
    c
}

fn tpch_engine() -> Arc<Engine> {
    let cat = generate(&TpchConfig {
        scale: 0.005,
        seed: 42,
    });
    Engine::builder(cat).recycler(det_config()).build()
}

fn tpch_engine_evict_only() -> Arc<Engine> {
    let cat = generate(&TpchConfig {
        scale: 0.005,
        seed: 42,
    });
    Engine::builder(cat)
        .recycler(det_config_evict_only())
        .build()
}

/// A schema-valid lineitem row.
fn lineitem_row(orderkey: i64) -> Vec<Value> {
    vec![
        Value::Int(orderkey),
        Value::Int(1),
        Value::Int(1),
        Value::Int(1),
        Value::Float(5.0),
        Value::Float(500.0),
        Value::Float(0.05),
        Value::Float(0.02),
        Value::str("N"),
        Value::str("O"),
        Value::Date(9000),
        Value::Date(9010),
        Value::Date(9020),
        Value::str("NONE"),
        Value::str("TRUCK"),
    ]
}

fn sorted_rows(b: &Batch) -> Vec<Vec<Value>> {
    let mut rows = b.to_rows();
    rows.sort();
    rows
}

/// Count cached (materialized) graph nodes that depend on `table`.
fn cached_over(engine: &Arc<Engine>, table: &str) -> usize {
    engine.recycler().unwrap().with_graph(|g| {
        g.materialized_nodes()
            .iter()
            .filter(|&&id| g.node(id).tables.iter().any(|t| t == table))
            .count()
    })
}

/// Count cached graph nodes that depend on `table` but NOT on `exclude` —
/// the entries an update to `exclude` must leave alone.
fn cached_over_only(engine: &Arc<Engine>, table: &str, exclude: &str) -> usize {
    engine.recycler().unwrap().with_graph(|g| {
        g.materialized_nodes()
            .iter()
            .filter(|&&id| {
                let tables = &g.node(id).tables;
                tables.iter().any(|t| t == table) && !tables.iter().any(|t| t == exclude)
            })
            .count()
    })
}

#[test]
fn updating_lineitem_evicts_exactly_the_dependent_entries() {
    let engine = tpch_engine_evict_only();
    let session = engine.session();
    let mut rng = SmallRng::seed_from_u64(7);

    // Populate the cache: Q1/Q6/Q14 (all read lineitem; Q14 also part),
    // plus a part-only and an orders-only aggregate. Two executions each:
    // the first materializes, the second must reuse.
    let q1 = (
        session.prepare(&templates::q1_template()).unwrap(),
        templates::q1_params(&mut rng),
    );
    let q6 = (
        session.prepare(&templates::q6_template()).unwrap(),
        templates::q6_params(&mut rng),
    );
    let q14 = (
        session.prepare(&templates::q14_template()).unwrap(),
        templates::q14_params(&mut rng),
    );
    let part_only = scan("part", &["p_size"]).aggregate(
        vec![],
        vec![(AggFunc::Sum(Expr::name("p_size")), "total_size")],
    );
    let orders_only = scan("orders", &["o_totalprice"]).aggregate(
        vec![],
        vec![(AggFunc::Sum(Expr::name("o_totalprice")), "total_price")],
    );
    for (prepared, params) in [&q1, &q6, &q14] {
        let first = prepared.execute(params).unwrap().into_outcome();
        assert!(!first.reused());
        let second = prepared.execute(params).unwrap().into_outcome();
        assert!(second.reused(), "steady state before the update");
    }
    for q in [&part_only, &orders_only] {
        session.query(q).unwrap().into_outcome();
        assert!(session.query(q).unwrap().into_outcome().reused());
    }

    let recycler = engine.recycler().unwrap();
    let li_before = cached_over(&engine, "lineitem");
    // Q14's nodes read part *and* lineitem, so they die with the update;
    // the survivors an update must not touch are the part-only and
    // orders-only entries.
    let part_pure_before = cached_over_only(&engine, "part", "lineitem");
    let orders_pure_before = cached_over_only(&engine, "orders", "lineitem");
    assert!(li_before >= 3, "Q1/Q6/Q14 roots cached (got {li_before})");
    assert!(part_pure_before >= 1 && orders_pure_before >= 1);
    let len_before = recycler.cache_len();

    // Update only lineitem.
    let out = session
        .append("lineitem", &[lineitem_row(1), lineitem_row(2)])
        .unwrap();
    assert_eq!(out.table, "lineitem");
    assert_eq!(out.rows_affected, 2);
    assert_eq!(out.epoch, 1);
    assert_eq!(
        (out.repaired, out.deltas_applied),
        (0, 0),
        "repair disabled: the write must route through pure eviction"
    );

    // Precisely the lineitem-dependent entries were evicted. Beyond the
    // materialized results, the walk also kills dependent *operator-state*
    // artifacts (hash builds, aggregation tables) — those ride the same
    // events, tagged by kind.
    let result_events = out
        .invalidated
        .iter()
        .filter(|e| {
            matches!(
                e,
                RecyclerEvent::Invalidated {
                    kind: ArtifactKind::Result,
                    ..
                }
            )
        })
        .count();
    assert_eq!(
        result_events, li_before,
        "one Invalidated event per dependent result entry"
    );
    assert!(
        out.invalidated.len() > li_before,
        "dependent operator-state artifacts die with their table too"
    );
    for e in &out.invalidated {
        match e {
            RecyclerEvent::Invalidated { table, bytes, .. } => {
                assert_eq!(table, "lineitem");
                assert!(*bytes > 0);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert_eq!(cached_over(&engine, "lineitem"), 0, "no stale entry stays");
    assert_eq!(recycler.cache_len(), len_before - out.invalidated.len());
    let invalidations = recycler
        .stats
        .invalidations
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(invalidations as usize, out.invalidated.len());

    // ...and nothing else: part-only/orders-only entries survive and still
    // hit. The part-only entry surviving while Q14 (part ⋈ lineitem) died
    // is the fine-grained part.
    assert_eq!(
        cached_over_only(&engine, "part", "lineitem"),
        part_pure_before
    );
    assert_eq!(
        cached_over_only(&engine, "orders", "lineitem"),
        orders_pure_before
    );
    assert!(session.query(&part_only).unwrap().into_outcome().reused());
    assert!(session.query(&orders_only).unwrap().into_outcome().reused());

    // Lineitem queries recompute against the new epoch, correctly: compare
    // Q6 against a materializing run over the current snapshot.
    let (q6_prep, q6_params) = &q6;
    let recomputed = q6_prep.execute(q6_params).unwrap();
    assert_eq!(recomputed.snapshot().epoch_of("lineitem"), Some(1));
    let recomputed = recomputed.into_outcome();
    assert!(!recomputed.reused(), "stale reuse after the update");
    let concrete = templates::q6_template()
        .substitute_params(q6_params)
        .unwrap();
    let baseline = MaterializingEngine::naive(Arc::new(engine.catalog().snapshot().to_catalog()))
        .run(&concrete)
        .unwrap();
    assert_eq!(sorted_rows(&recomputed.batch), sorted_rows(&baseline.batch));

    // And the recycler is healthy at the new epoch: the next repeat hits.
    assert!(q6_prep.execute(q6_params).unwrap().into_outcome().reused());
}

#[test]
fn cached_hash_builds_serve_probe_variants_and_die_with_their_table() {
    let engine = tpch_engine();
    let session = engine.session();
    let mut rng = SmallRng::seed_from_u64(99);
    let stats = &engine.recycler().unwrap().stats;
    let oracle = |concrete: &Plan, batch: &Batch, label: &str| {
        let baseline =
            MaterializingEngine::naive(Arc::new(engine.catalog().snapshot().to_catalog()))
                .run(concrete)
                .unwrap();
        assert_eq!(
            sorted_rows(batch),
            sorted_rows(&baseline.batch),
            "{label}: diverges from the materializing oracle"
        );
    };

    // Q14 joins a parameter-dependent lineitem probe against a fixed part
    // build. Distinct date ranges miss the *result* cache every time, but
    // after the first run the part build side is a cached operator-state
    // artifact every later variant probes warm.
    let prepared = session.prepare(&templates::q14_template()).unwrap();
    let mut param_sets = Vec::new();
    while param_sets.len() < 4 {
        let p = templates::q14_params(&mut rng);
        if !param_sets.contains(&p) {
            param_sets.push(p);
        }
    }
    for (i, params) in param_sets.iter().enumerate() {
        let out = prepared.execute(params).unwrap().into_outcome();
        assert!(!out.reused(), "distinct params must miss the result cache");
        let concrete = templates::q14_template().substitute_params(params).unwrap();
        oracle(&concrete, &out.batch, &format!("Q14 variant {i}"));
    }
    let warm_builds = stats
        .hash_build_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        warm_builds >= 3,
        "variants after the first must probe the cached part build \
         (got {warm_builds} warm hits)"
    );

    // An update to *lineitem* (probe side only) leaves the part build
    // alive: the next variant still probes it warm.
    session.append("lineitem", &[lineitem_row(50)]).unwrap();
    let extra = templates::q14_params(&mut rng);
    let out = prepared.execute(&extra).unwrap().into_outcome();
    let concrete = templates::q14_template().substitute_params(&extra).unwrap();
    oracle(&concrete, &out.batch, "Q14 after lineitem append");
    assert!(
        stats
            .hash_build_hits
            .load(std::sync::atomic::Ordering::Relaxed)
            > warm_builds,
        "a probe-side update must not evict the build-side artifact"
    );

    // An update to *part* kills the cached build: the invalidation events
    // include a hash-build artifact, and the next run must rebuild — it
    // may never probe a build from the old part epoch.
    let warm_before = stats
        .hash_build_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    let out = session
        .append(
            "part",
            &[vec![
                Value::Int(1_000_000),
                Value::str("hazy zinc"),
                Value::str("Manufacturer#1"),
                Value::str("Brand#11"),
                Value::str("PROMO BURNISHED ZINC"),
                Value::Int(7),
                Value::str("SM BOX"),
                Value::Float(950.0),
            ]],
        )
        .unwrap();
    assert!(
        out.invalidated.iter().any(|e| matches!(
            e,
            RecyclerEvent::Invalidated {
                kind: ArtifactKind::HashBuild,
                ..
            }
        )),
        "the part build artifact must die with its table: {:?}",
        out.invalidated
    );
    let after = prepared.execute(&param_sets[0]).unwrap().into_outcome();
    let concrete = templates::q14_template()
        .substitute_params(&param_sets[0])
        .unwrap();
    oracle(&concrete, &after.batch, "Q14 after part append");
    assert_eq!(
        stats
            .hash_build_hits
            .load(std::sync::atomic::Ordering::Relaxed),
        warm_before,
        "no warm build may cross the part epoch bump"
    );
}

fn small_engine(rows: i64) -> Arc<Engine> {
    let mut cat = Catalog::new();
    let schema = Schema::from_pairs([("k", DataType::Int), ("v", DataType::Float)]);
    let mut b = TableBuilder::new("t", schema, rows as usize);
    for i in 0..rows {
        b.push_row(vec![Value::Int(i % 50), Value::Float(i as f64)]);
    }
    cat.register(b.finish()).unwrap();
    Engine::builder(Arc::new(cat))
        .recycler(det_config())
        .build()
}

fn sum_under(limit: i64) -> Plan {
    scan("t", &["k", "v"])
        .select(Expr::name("k").lt(Expr::lit(limit)))
        .aggregate(vec![], vec![(AggFunc::Sum(Expr::name("v")), "sv")])
}

#[test]
fn append_and_delete_flow_through_query_results() {
    let engine = small_engine(1_000);
    let session = engine.session();
    let q = sum_under(1); // sum of v where k == 0: 0+50+100+...+950
    let first = session.query(&q).unwrap().into_outcome();
    let base: f64 = (0..1000).filter(|i| i % 50 == 0).map(|i| i as f64).sum();
    assert_eq!(first.batch.column(0).as_floats(), &[base]);
    assert!(session.query(&q).unwrap().into_outcome().reused());

    // Append two matching rows. The cached SUM aggregate is append-
    // repairable: the delta folds into the finished value in place, and
    // the next query *reuses* the repaired entry — at the new epoch, with
    // the new rows included, bit-exactly.
    let out = session
        .append(
            "t",
            &[
                vec![Value::Int(0), Value::Float(10_000.0)],
                vec![Value::Int(0), Value::Float(20_000.0)],
            ],
        )
        .unwrap();
    assert!(
        out.invalidated
            .iter()
            .any(|e| matches!(e, RecyclerEvent::Repaired { .. })),
        "cached aggregate repaired in place: {:?}",
        out.invalidated
    );
    assert!(out.repaired >= 1);
    assert_eq!(out.deltas_applied, 1);
    let after = session.query(&q).unwrap().into_outcome();
    assert!(after.reused(), "repaired entry serves the new epoch");
    assert_eq!(after.batch.column(0).as_floats(), &[base + 30_000.0]);

    // Delete them again by predicate. A float SUM cannot soundly retract
    // (no per-group count to gate on), so the delete falls back to
    // eviction and the next query recomputes.
    let out = session
        .delete("t", &Expr::name("v").ge(Expr::lit(10_000.0)))
        .unwrap();
    assert_eq!(out.rows_affected, 2);
    assert_eq!(out.epoch, 2);
    assert!(out.repair_fallbacks >= 1 || out.repaired == 0);
    let back = session.query(&q).unwrap().into_outcome();
    assert!(!back.reused(), "sum delete-repair must fall back to evict");
    assert_eq!(back.batch.column(0).as_floats(), &[base]);

    let stats = session.stats();
    assert_eq!(stats.writes, 2);
    assert_eq!(stats.rows_appended, 2);
    assert_eq!(stats.rows_deleted, 2);
    assert!(stats.repaired_hits >= 1);
    assert_eq!(stats.deltas_applied, 2, "both writes carried a delta");
}

#[test]
fn prepared_fingerprint_incorporates_table_epoch() {
    let engine = small_engine(100);
    let session = engine.session();
    let template = scan("t", &["k", "v"]).select(Expr::name("k").lt(Expr::param("limit")));
    let before = session.prepare(&template).unwrap();
    let again = session.prepare(&template).unwrap();
    assert_eq!(
        before.fingerprint(),
        again.fingerprint(),
        "same template, same epochs"
    );
    assert_eq!(before.fingerprint(), before.fingerprint_now());
    session
        .append("t", &[vec![Value::Int(1), Value::Float(1.0)]])
        .unwrap();
    assert_ne!(
        before.fingerprint(),
        before.fingerprint_now(),
        "epoch bump changes the version-aware fingerprint"
    );
    let fresh = session.prepare(&template).unwrap();
    assert_ne!(before.fingerprint(), fresh.fingerprint());
    assert_eq!(fresh.fingerprint(), before.fingerprint_now());
}

#[test]
fn dml_works_with_recycling_off() {
    let mut cat = Catalog::new();
    let schema = Schema::from_pairs([("x", DataType::Int)]);
    let mut b = TableBuilder::new("t", schema, 2);
    b.push_row(vec![Value::Int(1)]);
    b.push_row(vec![Value::Int(2)]);
    cat.register(b.finish()).unwrap();
    let engine = Engine::builder(Arc::new(cat)).no_recycler().build();
    let session = engine.session();
    let out = session.append("t", &[vec![Value::Int(3)]]).unwrap();
    assert!(out.invalidated.is_empty(), "no recycler, no invalidations");
    let got = session.query(&scan("t", &["x"])).unwrap().collect_batch();
    assert_eq!(got.column(0).as_ints(), &[1, 2, 3]);
    session
        .delete("t", &Expr::name("x").eq(Expr::lit(2)))
        .unwrap();
    let got = session.query(&scan("t", &["x"])).unwrap().collect_batch();
    assert_eq!(got.column(0).as_ints(), &[1, 3]);
    // Unknown tables are rejected.
    assert!(session.append("nope", &[vec![Value::Int(1)]]).is_err());
    assert!(session.delete("nope", &Expr::lit(true)).is_err());
    // Non-boolean and parameterized predicates error instead of panicking.
    let err = session.delete("t", &Expr::name("x")).unwrap_err();
    assert!(err.to_string().contains("boolean"), "{err}");
    let err = session
        .delete("t", &Expr::name("x").gt(Expr::param("p")))
        .unwrap_err();
    assert!(err.to_string().contains("parameter"), "{err}");
    // No failed statement committed an epoch.
    assert_eq!(engine.catalog().epoch_of("t"), Some(2));
}

#[test]
fn noop_dml_commits_no_epoch_and_keeps_the_cache_hot() {
    let engine = small_engine(500);
    let session = engine.session();
    let q = sum_under(10);
    session.query(&q).unwrap().into_outcome();
    assert!(session.query(&q).unwrap().into_outcome().reused());
    let len = engine.recycler().unwrap().cache_len();

    // A delete matching nothing and an empty append change no data: no
    // epoch, no invalidation, no cache churn.
    let out = session
        .delete("t", &Expr::name("k").gt(Expr::lit(1_000_000)))
        .unwrap();
    assert_eq!(out.rows_affected, 0);
    assert_eq!(out.epoch, 0, "no-op delete commits no epoch");
    assert!(out.invalidated.is_empty());
    let out = session.append("t", &[]).unwrap();
    assert_eq!((out.rows_affected, out.epoch), (0, 0));
    assert!(out.invalidated.is_empty());
    assert_eq!(engine.recycler().unwrap().cache_len(), len);
    assert!(session.query(&q).unwrap().into_outcome().reused());
    // The no-op fast path never reaches the repair walk either.
    let stats = session.stats();
    assert_eq!(stats.deltas_applied, 0, "no-op DML applies no delta");
    assert_eq!(stats.repaired_hits + stats.repair_fallbacks, 0);
}

#[test]
fn invalidate_spares_entries_already_at_the_new_epoch() {
    let engine = small_engine(1_000);
    let session = engine.session();
    let q = sum_under(5);
    session
        .append("t", &[vec![Value::Int(0), Value::Float(1.0)]])
        .unwrap(); // epoch 1
    session.query(&q).unwrap().into_outcome();
    assert!(session.query(&q).unwrap().into_outcome().reused());
    let recycler = engine.recycler().unwrap();
    let len = recycler.cache_len();
    assert!(len > 0);
    // Re-announcing an epoch the cache is already at (the publish-ahead /
    // invalidate-catches-up ordering) must not evict the fresh entries.
    let events = recycler.invalidate("t", 1);
    assert!(
        events.is_empty(),
        "no fresh entry may be evicted: {events:?}"
    );
    assert_eq!(recycler.cache_len(), len);
    assert!(session.query(&q).unwrap().into_outcome().reused());
    // A genuinely newer epoch still evicts.
    let events = recycler.invalidate("t", 2);
    assert_eq!(events.len(), len);
}

#[test]
fn in_flight_stream_keeps_its_snapshot() {
    let engine = small_engine(5_000);
    let session = engine.session();
    // Plain scan spanning multiple batches.
    let mut handle = session.query(&scan("t", &["k", "v"])).unwrap();
    let first = handle.next().expect("first batch");
    assert_eq!(handle.snapshot().epoch_of("t"), Some(0));
    // A write lands mid-stream.
    session
        .append("t", &[vec![Value::Int(0), Value::Float(-1.0)]])
        .unwrap();
    let mut total = first.rows();
    for b in handle {
        total += b.rows();
    }
    assert_eq!(total, 5_000, "the pinned snapshot never sees the append");
    // A fresh query does.
    let total_after: usize = session
        .query(&scan("t", &["k", "v"]))
        .unwrap()
        .map(|b| b.rows())
        .sum();
    assert_eq!(total_after, 5_001);
}

#[test]
fn publish_racing_an_update_is_rejected_not_cached() {
    let engine = small_engine(5_000);
    let session = engine.session();
    let q = scan("t", &["k", "v"]).select(Expr::name("k").ge(Expr::lit(0)));
    // Start a run whose root store publishes only when the stream drains.
    let mut handle = session.query(&q).unwrap();
    let _first = handle.next().expect("first batch");
    // The update commits while the materialization is in flight.
    session
        .append("t", &[vec![Value::Int(999), Value::Float(0.0)]])
        .unwrap();
    let rest: Vec<Batch> = handle.collect();
    assert!(!rest.is_empty());
    // The produced result is from epoch 0 and must not have been admitted:
    // a repeat executes fresh against epoch 1 and sees the new row.
    let repeat = session.query(&q).unwrap().into_outcome();
    assert!(
        !repeat.reused(),
        "stale publish must not serve the new epoch"
    );
    assert_eq!(repeat.batch.rows(), 5_001);
    let stale = engine
        .recycler()
        .unwrap()
        .stats
        .stale_rejections
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(stale >= 1, "epoch gate rejected the in-flight publish");
}
