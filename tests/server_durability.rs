//! Durability over the wire: a pgwire server backed by a data directory,
//! including the read-only degradation contract under injected WAL
//! failures — writes fail with SQLSTATE 25006 while reads keep serving
//! exactly the acknowledged data.

#[path = "support/pg_client.rs"]
mod pg_client;

use std::path::PathBuf;
use std::sync::Arc;

use pg_client::PgClient;
use recycler_db::engine::{DurabilityConfig, ScriptedFault};
use recycler_db::server::ServerBuilder;
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::{DataType, Schema, Value};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdb-srv-dur-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn catalog(rows: i64) -> Arc<Catalog> {
    let mut cat = Catalog::new();
    let schema = Schema::from_pairs([("k", DataType::Int), ("v", DataType::Float)]);
    let mut t = TableBuilder::new("t", schema, rows as usize);
    for i in 0..rows {
        t.push_row(vec![Value::Int(i), Value::Float(i as f64)]);
    }
    cat.register(t.finish()).unwrap();
    Arc::new(cat)
}

fn no_auto() -> DurabilityConfig {
    DurabilityConfig {
        auto_checkpoint: false,
        ..DurabilityConfig::default()
    }
}

#[test]
fn writes_survive_a_server_restart() {
    let dir = temp_dir("restart");
    {
        let server = ServerBuilder::new(catalog(10))
            .data_dir(&dir)
            .durability(no_auto())
            .serve()
            .unwrap();
        let mut client = PgClient::connect(server.local_addr()).unwrap();
        let cycle = client
            .query("INSERT INTO t VALUES (100, 1.0), (101, 2.0)")
            .unwrap();
        assert_eq!(cycle.command_tags(), vec!["INSERT 0 2".to_string()]);
        let cycle = client.query("DELETE FROM t WHERE k = 0").unwrap();
        assert_eq!(cycle.command_tags(), vec!["DELETE 1".to_string()]);
        client.terminate();
    }
    // Same seed catalog; the log replays the two commits on top.
    let server = ServerBuilder::new(catalog(10))
        .data_dir(&dir)
        .durability(no_auto())
        .serve()
        .unwrap();
    let mut client = PgClient::connect(server.local_addr()).unwrap();
    let cycle = client
        .query("SELECT count(*) FROM t WHERE k >= 100")
        .unwrap();
    assert_eq!(cycle.rows(), vec![vec![Some("2".to_string())]]);
    let cycle = client.query("SELECT count(*) FROM t WHERE k = 0").unwrap();
    assert_eq!(cycle.rows(), vec![vec![Some("0".to_string())]]);
    let stats = server.stats();
    assert!(stats.wal_bytes > 0, "live WAL behind the server");
    assert!(!stats.read_only);
    client.terminate();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_failure_degrades_to_read_only_while_reads_keep_serving() {
    let dir = temp_dir("read-only");
    let server = ServerBuilder::new(catalog(50))
        .data_dir(&dir)
        .durability(no_auto())
        .io_fault(Arc::new(ScriptedFault::disk_full_at(2)))
        .serve()
        .unwrap();
    let mut client = PgClient::connect(server.local_addr()).unwrap();

    // Two commits fit before the injected disk-full.
    let a = client.query("INSERT INTO t VALUES (200, 1.0)").unwrap();
    assert_eq!(a.command_tags(), vec!["INSERT 0 1".to_string()]);
    let b = client.query("INSERT INTO t VALUES (201, 1.0)").unwrap();
    assert_eq!(b.command_tags(), vec!["INSERT 0 1".to_string()]);

    // The third write hits the fault: structured SQLSTATE, not a hangup.
    let c = client.query("INSERT INTO t VALUES (202, 1.0)").unwrap();
    let err = c.first_error();
    assert_eq!(err.sqlstate(), "25006", "read_only_sql_transaction");
    assert!(
        err.error_message().contains("read-only"),
        "{}",
        err.error_message()
    );

    // The same connection keeps serving reads — and sees exactly the two
    // acknowledged inserts, not the failed third (no stale, no phantom).
    let cycle = client
        .query("SELECT count(*) FROM t WHERE k >= 200")
        .unwrap();
    assert_eq!(cycle.rows(), vec![vec![Some("2".to_string())]]);

    // A *fresh* connection works too, and later writes still say 25006.
    let mut second = PgClient::connect(server.local_addr()).unwrap();
    let cycle = second.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(cycle.rows(), vec![vec![Some("52".to_string())]]);
    let cycle = second.query("DELETE FROM t WHERE k = 1").unwrap();
    assert_eq!(cycle.first_error().sqlstate(), "25006");

    // rdb_stats() reports the degradation.
    let stats = client.query("SELECT * FROM rdb_stats()").unwrap();
    let read_only = stats
        .rows()
        .into_iter()
        .find(|r| r[0].as_deref() == Some("read_only"))
        .expect("read_only metric");
    assert_eq!(read_only[1].as_deref(), Some("1"));
    assert!(server.stats().read_only);

    client.terminate();
    second.terminate();
    drop(server);

    // Reboot without the fault: both acknowledged inserts survived.
    let server = ServerBuilder::new(catalog(50))
        .data_dir(&dir)
        .durability(no_auto())
        .serve()
        .unwrap();
    let mut client = PgClient::connect(server.local_addr()).unwrap();
    let cycle = client
        .query("SELECT count(*) FROM t WHERE k >= 200")
        .unwrap();
    assert_eq!(cycle.rows(), vec![vec![Some("2".to_string())]]);
    client.terminate();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rdb_stats_exposes_durability_metrics() {
    let dir = temp_dir("stats");
    let server = ServerBuilder::new(catalog(10))
        .data_dir(&dir)
        .durability(no_auto())
        .serve()
        .unwrap();
    let mut client = PgClient::connect(server.local_addr()).unwrap();
    client.query("INSERT INTO t VALUES (900, 9.0)").unwrap();
    let cycle = client.query("SELECT * FROM rdb_stats()").unwrap();
    let metric = |name: &str| -> f64 {
        cycle
            .rows()
            .into_iter()
            .find(|r| r[0].as_deref() == Some(name))
            .unwrap_or_else(|| panic!("metric {name} missing"))[1]
            .as_deref()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(metric("wal_bytes") > 0.0);
    assert_eq!(metric("last_checkpoint_epoch"), 0.0, "no checkpoint yet");
    assert_eq!(metric("recovery_warm_hits"), 0.0, "cold start");
    assert_eq!(metric("read_only"), 0.0);
    server.engine().checkpoint().unwrap();
    let cycle = client.query("SELECT * FROM rdb_stats()").unwrap();
    let ckpt = cycle
        .rows()
        .into_iter()
        .find(|r| r[0].as_deref() == Some("last_checkpoint_epoch"))
        .unwrap()[1]
        .as_deref()
        .unwrap()
        .parse::<f64>()
        .unwrap();
    assert_eq!(ckpt, 1.0, "checkpoint covers the insert's epoch");
    client.terminate();
    let _ = std::fs::remove_dir_all(&dir);
}
