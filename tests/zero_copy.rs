//! Zero-copy semantics of the columnar data path.
//!
//! Two families of guarantees:
//!
//! 1. **Storage identity** (`Arc::ptr_eq` via `Column::shares_storage`):
//!    batch clones, slices, table scans, the store tee, and cache-hit
//!    replay must hand out *shared* column storage — no payload copies on
//!    the hot path.
//! 2. **Selection-vector equivalence**: executing with selection vectors
//!    (filters narrow batches instead of gathering) must produce exactly
//!    the same results as materializing execution — checked with
//!    property-style random predicates over NULL-bearing data and with the
//!    paper's workloads (TPC-H Q1/Q6/Q14, the SkyServer cone template)
//!    cross-checked against the operator-at-a-time MonetDB-style engine.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use recycler_db::engine::{Engine, MaterializingEngine};
use recycler_db::exec::{
    build, run_to_batch, ExecContext, MaterializedResult, ResultStore, SpeculationEstimate,
    StoreVerdict,
};
use recycler_db::expr::{eval_predicate, eval_selection, Expr, Selection};
use recycler_db::plan::{scan, Plan, StoreMode};
use recycler_db::recycler::RecyclerConfig;
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::{Batch, Column, DataType, Schema, Value};

fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// A small int/float/str table registered in a fresh catalog.
fn small_catalog(rows: usize) -> Arc<Catalog> {
    let schema = Schema::from_pairs([
        ("k", DataType::Int),
        ("v", DataType::Float),
        ("tag", DataType::Str),
    ]);
    let mut b = TableBuilder::new("t", schema, rows);
    for i in 0..rows as i64 {
        b.push_row(vec![
            Value::Int(i),
            Value::Float(i as f64 * 0.25),
            Value::str(if i % 2 == 0 { "even" } else { "odd" }),
        ]);
    }
    let mut cat = Catalog::new();
    cat.register(b.finish()).expect("register table");
    Arc::new(cat)
}

// ---- storage identity -----------------------------------------------------

#[test]
fn batch_clone_and_slice_share_storage() {
    let b = Batch::new(vec![
        Column::from_ints((0..100).collect()),
        Column::from_strs((0..100).map(|i| format!("s{i}"))),
    ]);
    let cl = b.clone();
    for i in 0..b.width() {
        assert!(
            b.column(i).shares_storage(cl.column(i)),
            "Batch::clone must not copy column {i}"
        );
    }
    let s = b.slice(10, 50);
    for i in 0..b.width() {
        assert!(
            b.column(i).shares_storage(s.column(i)),
            "Batch::slice must not copy column {i}"
        );
    }
    assert_eq!(s.row(0), b.row(10));
}

#[test]
fn scan_batches_share_table_storage() {
    let cat = small_catalog(3000);
    let table = cat.get("t").expect("table registered").clone();
    let ctx = ExecContext::new(cat);
    let plan = scan("t", &["k", "v", "tag"]).bind(&ctx.catalog).unwrap();
    let mut tree = build(&plan, &ctx).unwrap();
    let mut batches = Vec::new();
    while let Some(b) = tree.root.next_batch() {
        batches.push(b);
    }
    assert!(batches.len() > 1, "multiple scan batches expected");
    for b in &batches {
        for (i, col) in b.columns().iter().enumerate() {
            assert!(
                col.shares_storage(table.column(i)),
                "scan batches must be zero-copy slices of the table"
            );
        }
    }
}

/// Minimal `ResultStore` capturing published results.
#[derive(Default)]
struct TestStore {
    published: Mutex<HashMap<u64, Arc<MaterializedResult>>>,
}

impl ResultStore for TestStore {
    fn fetch(&self, tag: u64) -> Option<Arc<MaterializedResult>> {
        self.published.lock().unwrap().get(&tag).cloned()
    }
    fn publish(&self, tag: u64, result: MaterializedResult) {
        self.published.lock().unwrap().insert(tag, Arc::new(result));
    }
    fn abandon(&self, _tag: u64) {}
    fn speculate(&self, _tag: u64, _est: &SpeculationEstimate) -> StoreVerdict {
        StoreVerdict::Commit
    }
}

#[test]
fn store_tee_shares_storage_end_to_end() {
    // One scan batch flows through a materializing store: the published
    // result must still be the table's own storage — the tee buffered a
    // shared clone and the single-batch concat stayed zero-copy.
    let cat = small_catalog(800);
    let table = cat.get("t").expect("table registered").clone();
    let store = Arc::new(TestStore::default());
    let ctx = ExecContext::new(cat).with_store(store.clone() as Arc<dyn ResultStore>);
    let plan = scan("t", &["k", "v", "tag"])
        .store(7, StoreMode::Materialize)
        .bind(&ctx.catalog)
        .unwrap();
    let mut tree = build(&plan, &ctx).unwrap();
    let out = run_to_batch(tree.root.as_mut());
    assert_eq!(out.rows(), 800, "tuple flow uninterrupted");
    let published = store.fetch(7).expect("result published");
    for (i, col) in published.batch.columns().iter().enumerate() {
        assert!(
            col.shares_storage(table.column(i)),
            "store tee must not copy column {i}"
        );
        assert!(
            col.shares_storage(out.column(i)),
            "pass-through output must share with the published result"
        );
    }
    // Replay re-chunks zero-copy as well.
    for b in published.batches() {
        assert!(b.column(0).shares_storage(table.column(0)));
    }
}

#[test]
fn filter_emits_selection_without_gathering() {
    let cat = small_catalog(1000);
    let table = cat.get("t").expect("table registered").clone();
    let ctx = ExecContext::new(cat);
    let plan = scan("t", &["k", "v"])
        .select(Expr::name("k").lt(Expr::lit(300)))
        .bind(&ctx.catalog)
        .unwrap();
    let mut tree = build(&plan, &ctx).unwrap();
    let b = tree.root.next_batch().expect("one batch");
    assert_eq!(b.rows(), 300, "logical rows narrowed");
    assert!(b.sel().is_some(), "partial filter emits a selection vector");
    assert!(
        b.column(0).shares_storage(table.column(0)),
        "filter must not gather"
    );
    // Very sparse survivors are compacted on the spot instead (downstream
    // evaluation over mostly-dead physical rows would cost more).
    let plan = scan("t", &["k", "v"])
        .select(Expr::name("k").lt(Expr::lit(10)))
        .bind(&ctx.catalog)
        .unwrap();
    let mut tree = build(&plan, &ctx).unwrap();
    let b = tree.root.next_batch().expect("one batch");
    assert_eq!(b.rows(), 10);
    assert!(b.sel().is_none(), "sparse filter compacts");
    assert!(!b.column(0).shares_storage(table.column(0)));
    // An all-true filter passes batches through without even a selection.
    let plan = scan("t", &["k", "v"])
        .select(Expr::name("k").ge(Expr::lit(0)))
        .bind(&ctx.catalog)
        .unwrap();
    let mut tree = build(&plan, &ctx).unwrap();
    let b = tree.root.next_batch().expect("one batch");
    assert!(b.sel().is_none(), "all-true filter adds no selection");
    assert!(b.column(0).shares_storage(table.column(0)));
}

#[test]
fn cache_replay_hands_out_shared_batches() {
    let mut config = RecyclerConfig::deterministic(64 << 20);
    config.spec_min_progress = 0.0;
    let cat = small_catalog(1000);
    let table = cat.get("t").expect("table registered").clone();
    let engine = Engine::builder(cat).recycler(config).build();
    let session = engine.session();
    let plan = scan("t", &["k", "v", "tag"]).select(Expr::name("k").ge(Expr::lit(0)));
    let prepared = session.prepare(&plan).unwrap();
    let none = recycler_db::expr::Params::none();

    let first = prepared.execute(&none).unwrap().into_outcome();
    assert!(!first.reused());
    let second = prepared.execute(&none).unwrap().into_outcome();
    let third = prepared.execute(&none).unwrap().into_outcome();
    assert!(second.reused() && third.reused(), "steady state replays");
    assert_eq!(second.batch.to_rows(), first.batch.to_rows());
    for i in 0..second.batch.width() {
        assert!(
            second.batch.column(i).shares_storage(third.batch.column(i)),
            "two replays must share the cached allocation (column {i})"
        );
        // The whole chain — scan slice → store tee → publish → replay —
        // never copied: replays still hand out the base table's storage.
        assert!(
            second.batch.column(i).shares_storage(table.column(i)),
            "replay must be zero-copy all the way to the table (column {i})"
        );
    }
}

// ---- selection-vector equivalence -----------------------------------------

#[test]
fn eval_selection_matches_predicate_mask() {
    // Random NULL-bearing data, random comparison predicates, with and
    // without a pre-existing selection: eval_selection must agree with the
    // physical mask from eval_predicate restricted to selected rows.
    let mut r = rng(7);
    for case in 0..300 {
        let rows = r.gen_range(1..200);
        let mut b = recycler_db::vector::ColumnBuilder::new(DataType::Int, rows);
        for _ in 0..rows {
            if r.gen_bool(0.2) {
                b.push_null();
            } else {
                b.push(Value::Int(r.gen_range(-50..50)));
            }
        }
        let batch = Batch::new(vec![b.finish()]);
        let cut = r.gen_range(-60..60);
        let pred = Expr::col(0).gt(Expr::lit(cut));
        let mask = eval_predicate(&pred, &batch);

        // Optionally narrow the batch first.
        let (batch, selected): (Batch, Vec<u32>) = if r.gen_bool(0.5) {
            let sel: Vec<u32> = (0..rows as u32).filter(|_| r.gen_bool(0.6)).collect();
            (batch.with_selection(Arc::new(sel.clone())), sel)
        } else {
            (batch, (0..rows as u32).collect())
        };
        let expect: Vec<u32> = selected
            .iter()
            .copied()
            .filter(|&p| mask[p as usize])
            .collect();
        let got = eval_selection(&pred, &batch);
        match got {
            Selection::All => assert_eq!(expect.len(), batch.rows(), "case {case}"),
            Selection::Empty => assert!(expect.is_empty(), "case {case}"),
            Selection::Rows(rows) => assert_eq!(rows, expect, "case {case}"),
        }
    }
}

#[test]
fn selected_execution_matches_ground_truth_with_nulls() {
    // Random nullable tables through the full engine vs a row-at-a-time
    // ground truth computed from the raw values.
    let mut r = rng(11);
    for case in 0..25 {
        let rows = r.gen_range(1..400);
        let schema = Schema::from_pairs([("a", DataType::Int), ("b", DataType::Float)]);
        let mut tb = TableBuilder::new("t", schema, rows);
        let mut raw: Vec<(Option<i64>, Option<f64>)> = Vec::with_capacity(rows);
        for _ in 0..rows {
            let a = (!r.gen_bool(0.25)).then(|| r.gen_range(-20i64..20));
            let b = (!r.gen_bool(0.25)).then(|| r.gen_range(-5.0f64..5.0));
            tb.push_row(vec![
                a.map_or(Value::Null, Value::Int),
                b.map_or(Value::Null, Value::Float),
            ]);
            raw.push((a, b));
        }
        let mut cat = Catalog::new();
        cat.register(tb.finish()).expect("register table");
        let engine = Engine::builder(Arc::new(cat)).no_recycler().build();
        let cut = r.gen_range(-20i64..20);
        // NULL a collapses to false at the filter boundary.
        let plan = scan("t", &["a", "b"]).select(Expr::name("a").gt(Expr::lit(cut)));
        let got = engine
            .session()
            .query(&plan)
            .unwrap()
            .collect_batch()
            .to_rows();
        let expect: Vec<Vec<Value>> = raw
            .iter()
            .filter(|(a, _)| a.is_some_and(|a| a > cut))
            .map(|(a, b)| vec![Value::Int(a.unwrap()), b.map_or(Value::Null, Value::Float)])
            .collect();
        assert_eq!(got, expect, "case {case} (cut {cut}, rows {rows})");
    }
}

/// Run one plan on the pipelined engine (computed, then replayed from
/// cache) and on the MonetDB-style materializing engine; all three row
/// sets must agree.
fn check_three_ways(cat: &Arc<Catalog>, plan: &Plan, label: &str) {
    check_three_ways_with(cat, plan, label, None)
}

fn check_three_ways_with(
    cat: &Arc<Catalog>,
    plan: &Plan,
    label: &str,
    functions: Option<Arc<recycler_db::exec::FnRegistry>>,
) {
    let mut config = RecyclerConfig::deterministic(256 << 20);
    config.spec_min_progress = 0.0;
    let mut builder = Engine::builder(cat.clone()).recycler(config);
    if let Some(f) = &functions {
        builder = builder.functions(f.clone());
    }
    let engine = builder.build();
    let session = engine.session();
    let computed = session.query(plan).unwrap().into_outcome();
    let replayed = session.query(plan).unwrap().into_outcome();

    let mut materializing = MaterializingEngine::naive(cat.clone());
    if let Some(f) = functions {
        materializing = materializing.with_functions(f);
    }
    let mat = materializing.run(plan).unwrap();

    // Sort rows for order-insensitive comparison (some plans end in an
    // aggregate whose emission order is hash-dependent).
    let norm = |b: &Batch| {
        let mut rows = b.to_rows();
        rows.sort();
        rows
    };
    assert_eq!(
        norm(&computed.batch),
        norm(&mat.batch),
        "{label}: selection-vector execution diverges from materializing"
    );
    assert_eq!(
        norm(&computed.batch),
        norm(&replayed.batch),
        "{label}: cache replay diverges from computed result"
    );
}

#[test]
fn tpch_q1_q6_q14_match_materializing_execution() {
    use recycler_db::tpch::{build_query, generate, TpchConfig};
    let cat = generate(&TpchConfig {
        scale: 0.01,
        seed: 3,
    });
    for &q in &[1usize, 6, 14] {
        for seed in 0..3u64 {
            let plan = build_query(q, &mut rng(100 + seed), 0.01, false);
            check_three_ways(&cat, &plan, &format!("Q{q} seed {seed}"));
        }
    }
}

#[test]
fn skyserver_template_matches_materializing_execution() {
    use recycler_db::skyserver::{functions, generate, nearby_query, SkyConfig};
    let cat = generate(&SkyConfig {
        objects: 5_000,
        seed: 9,
    });
    let fns = functions(&cat);
    // Coordinates sit on the synthetic catalog's cluster centers so the
    // cones return non-empty result sets.
    for (i, (ra, dec, radius)) in [(150.0, -5.0, 2.0), (180.0, -1.0, 1.0), (150.0, -5.0, 4.0)]
        .into_iter()
        .enumerate()
    {
        let plan = nearby_query(
            ra,
            dec,
            radius,
            &["p_objid", "p_ra", "p_dec", "p_psfmag_r"],
            50,
        );
        check_three_ways_with(&cat, &plan, &format!("cone {i}"), Some(fns.clone()));
    }
}
