//! Concurrent read/write stress over the update-aware recycler.
//!
//! N writer threads commit appends/deletes against TPC-H tables while M
//! reader threads execute the Q1/Q6/Q14 templates through the recycling
//! engine. Every query result is checked against a fresh
//! operator-at-a-time (materializing) run over **the exact catalog
//! snapshot the query read** (`QueryHandle::snapshot`): any stale cache
//! reuse, torn scan, or missed invalidation shows up as a row mismatch.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use recycler_db::engine::{Engine, MaterializingEngine};
use recycler_db::expr::Expr;
use recycler_db::plan::Plan;
use recycler_db::recycler::RecyclerConfig;
use recycler_db::tpch::{generate, templates, TpchConfig};
use recycler_db::vector::{Batch, Value};

const WRITERS: usize = 4;
const READERS: usize = 8;
const QUERIES_PER_READER: usize = 5;
const WRITES_PER_WRITER: usize = 8;

fn engine() -> Arc<Engine> {
    let cat = generate(&TpchConfig {
        scale: 0.003,
        seed: 13,
    });
    let mut config = RecyclerConfig::deterministic(256 << 20);
    config.spec_min_progress = 0.0;
    Engine::builder(cat).recycler(config).build()
}

/// A schema-valid lineitem row keyed for later deletion.
fn lineitem_row(rng: &mut SmallRng, orderkey: i64) -> Vec<Value> {
    vec![
        Value::Int(orderkey),
        Value::Int(rng.gen_range(1..50)),
        Value::Int(1),
        Value::Int(1),
        Value::Float(rng.gen_range(1..50) as f64),
        Value::Float(rng.gen_range(900.0..5000.0)),
        Value::Float(rng.gen_range(0..10) as f64 / 100.0),
        Value::Float(0.04),
        Value::str("N"),
        Value::str("O"),
        Value::Date(rng.gen_range(8700..10000)),
        Value::Date(9500),
        Value::Date(9510),
        Value::str("NONE"),
        Value::str("MAIL"),
    ]
}

fn sorted_rows(b: &Batch) -> Vec<Vec<Value>> {
    let mut rows = b.to_rows();
    rows.sort();
    rows
}

/// One reader query: execute through the recycler, then replay the same
/// concrete plan on a materializing engine over the snapshot the handle
/// pinned. Returns whether the execution reused a cached result.
fn check_one(engine: &Arc<Engine>, concrete: &Plan, label: &str) -> bool {
    let session = engine.session();
    let handle = session.query(concrete).unwrap_or_else(|e| {
        panic!("{label}: execute failed: {e}");
    });
    let snapshot = handle.snapshot().clone();
    let out = handle.into_outcome();
    let baseline = MaterializingEngine::naive(Arc::new(snapshot.to_catalog()))
        .run(concrete)
        .unwrap_or_else(|e| panic!("{label}: baseline failed: {e}"));
    assert_eq!(
        sorted_rows(&out.batch),
        sorted_rows(&baseline.batch),
        "{label}: result diverges from the materializing run at the \
         snapshot this query read (epochs {:?})",
        snapshot.epochs(),
    );
    out.reused()
}

/// Parallel-pipeline variant: the same writer/reader collision, but every
/// reader query runs at DOP=4 — its morsels are claimed by several worker
/// threads off one pinned `CatalogSnapshot`. Snapshot isolation must hold
/// *across workers*: when a writer commits an epoch mid-query, no morsel
/// of that query may observe the new version (a torn scan would surface as
/// a row mismatch against the materializing run at the handle's snapshot).
/// Writers here are bounded (they pace through the reader phase instead of
/// churning until it ends) so the test terminates briskly on any core
/// count.
#[test]
fn parallel_readers_hold_snapshot_isolation_under_writes() {
    // Asserts an exact DOP=4 regardless of host width: opt out of the
    // engine's available-core clamp.
    std::env::set_var("RDB_ALLOW_OVERSUBSCRIBE", "1");
    const PAR_WRITERS: usize = 4;
    const PAR_READERS: usize = 8;
    const PAR_QUERIES: usize = 4;
    const PAR_WRITES: usize = 12;
    let cat = generate(&TpchConfig {
        scale: 0.003,
        seed: 29,
    });
    let mut config = RecyclerConfig::deterministic(256 << 20);
    config.spec_min_progress = 0.0;
    let engine = Engine::builder(cat).recycler(config).parallelism(4).build();
    let reuses = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for w in 0..PAR_WRITERS {
            let engine = Arc::clone(&engine);
            scope.spawn(move |_| {
                let mut rng = SmallRng::seed_from_u64(1_700 + w as u64);
                let session = engine.session();
                for i in 0..PAR_WRITES {
                    let orderkey = 2_000_000 + (w * 10_000 + i) as i64;
                    match i % 3 {
                        0 | 1 => {
                            let rows: Vec<Vec<Value>> = (0..rng.gen_range(1..4))
                                .map(|_| lineitem_row(&mut rng, orderkey))
                                .collect();
                            session.append("lineitem", &rows).expect("append lineitem");
                        }
                        _ => {
                            session
                                .delete(
                                    "lineitem",
                                    &Expr::name("l_orderkey")
                                        .ge(Expr::lit(2_000_000i64))
                                        .and(Expr::name("l_quantity").lt(Expr::lit(10.0))),
                                )
                                .expect("delete lineitem");
                        }
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            });
        }
        for r in 0..PAR_READERS {
            let engine = Arc::clone(&engine);
            let reuses = &reuses;
            scope.spawn(move |_| {
                let mut rng = SmallRng::seed_from_u64(61 + r as u64);
                for q in 0..PAR_QUERIES {
                    let (template, params, label) = match (r + q) % 3 {
                        0 => (
                            templates::q1_template(),
                            templates::q1_params(&mut rng),
                            "Q1",
                        ),
                        1 => (
                            templates::q6_template(),
                            templates::q6_params(&mut rng),
                            "Q6",
                        ),
                        _ => (
                            templates::q14_template(),
                            templates::q14_params(&mut rng),
                            "Q14",
                        ),
                    };
                    let concrete = template.substitute_params(&params).unwrap();
                    let session = engine.session();
                    let handle = session.query(&concrete).unwrap();
                    assert_eq!(handle.dop(), 4, "reader queries must run parallel");
                    // Drop (abort) this probe before check_one re-executes
                    // the same plan, or the re-execution stalls on the
                    // probe's own undrained in-flight store.
                    drop(handle);
                    if check_one(
                        &engine,
                        &concrete,
                        &format!("par reader {r} query {q} {label}"),
                    ) {
                        reuses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    })
    .expect("no thread may panic");
    assert!(
        engine.catalog().epoch_of("lineitem").unwrap() > 0,
        "writers committed epochs during the reader phase"
    );
}

/// Operator-state artifacts under write churn. Writers hammer the probe
/// side (lineitem) of Q14 and periodically bump the *build* side (part)
/// while readers at DOP=4 execute distinct Q14 variants — which miss the
/// result cache but share the cached part hash build within each part
/// epoch. Every reader result is replayed on a materializing engine at the
/// snapshot it pinned: a build probed across a part epoch bump would
/// surface as a row mismatch. Zero mismatches = zero stale build reads.
#[test]
fn cached_hash_builds_stay_epoch_exact_under_writes() {
    const SB_WRITERS: usize = 2;
    const SB_READERS: usize = 6;
    const SB_QUERIES: usize = 4;
    const SB_WRITES: usize = 10;
    let cat = generate(&TpchConfig {
        scale: 0.003,
        seed: 47,
    });
    let mut config = RecyclerConfig::deterministic(256 << 20);
    config.spec_min_progress = 0.0;
    let engine = Engine::builder(cat).recycler(config).parallelism(4).build();
    let part_row = |i: i64| -> Vec<Value> {
        vec![
            Value::Int(3_000_000 + i),
            Value::str("stress zinc"),
            Value::str("Manufacturer#2"),
            Value::str("Brand#22"),
            Value::str("PROMO ANODIZED TIN"),
            Value::Int(9),
            Value::str("LG CASE"),
            Value::Float(812.0),
        ]
    };
    crossbeam::thread::scope(|scope| {
        for w in 0..SB_WRITERS {
            let engine = Arc::clone(&engine);
            scope.spawn(move |_| {
                let mut rng = SmallRng::seed_from_u64(4_000 + w as u64);
                let session = engine.session();
                for i in 0..SB_WRITES {
                    if i % 4 == 3 {
                        // Build-side bump: every cached part hash build
                        // must die here and never serve a later reader.
                        session
                            .append("part", &[part_row((w * 100 + i) as i64)])
                            .expect("append part");
                    } else {
                        let orderkey = 4_000_000 + (w * 10_000 + i) as i64;
                        let rows: Vec<Vec<Value>> = (0..rng.gen_range(1..4))
                            .map(|_| lineitem_row(&mut rng, orderkey))
                            .collect();
                        session.append("lineitem", &rows).expect("append lineitem");
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            });
        }
        for r in 0..SB_READERS {
            let engine = Arc::clone(&engine);
            scope.spawn(move |_| {
                let mut rng = SmallRng::seed_from_u64(83 + r as u64);
                for q in 0..SB_QUERIES {
                    let concrete = templates::q14_template()
                        .substitute_params(&templates::q14_params(&mut rng))
                        .unwrap();
                    check_one(&engine, &concrete, &format!("build reader {r} query {q}"));
                }
            });
        }
    })
    .expect("no thread may panic");
    assert!(
        engine.catalog().epoch_of("part").unwrap() > 0,
        "build-side epochs committed during the reader phase"
    );

    // Deterministic tail: with the writers quiet, two fresh Q14 variants
    // share one part build — the second must hit it warm, and both must
    // stay oracle-exact.
    let stats = &engine.recycler().unwrap().stats;
    let mut rng = SmallRng::seed_from_u64(555);
    let warm_before = stats.hash_build_hits.load(Ordering::Relaxed);
    for q in 0..2 {
        let concrete = templates::q14_template()
            .substitute_params(&templates::q14_params(&mut rng))
            .unwrap();
        check_one(&engine, &concrete, &format!("post-stress Q14 {q}"));
    }
    assert!(
        stats.hash_build_hits.load(Ordering::Relaxed) > warm_before,
        "the settled cache must serve the part build warm"
    );
}

#[test]
fn concurrent_writers_and_readers_never_see_stale_rows() {
    let engine = engine();
    let reuses = AtomicUsize::new(0);
    let readers_done = AtomicUsize::new(0);
    let lineitem_writes = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        // Writers: interleaved appends and deletes on lineitem, paced so
        // the write traffic spans the whole reader phase.
        for w in 0..WRITERS {
            let engine = Arc::clone(&engine);
            let readers_done = &readers_done;
            let lineitem_writes = &lineitem_writes;
            scope.spawn(move |_| {
                let mut rng = SmallRng::seed_from_u64(900 + w as u64);
                let session = engine.session();
                let mut i = 0usize;
                // At least WRITES_PER_WRITER ops, then keep churning until
                // every reader has finished.
                while i < WRITES_PER_WRITER || readers_done.load(Ordering::Relaxed) < READERS {
                    // Writer-owned orderkey space so deletes are targeted.
                    let orderkey = 1_000_000 + (w * 10_000 + i) as i64;
                    let out = match i % 3 {
                        0 | 1 => {
                            let rows: Vec<Vec<Value>> = (0..rng.gen_range(1..4))
                                .map(|_| lineitem_row(&mut rng, orderkey))
                                .collect();
                            session.append("lineitem", &rows).expect("append lineitem")
                        }
                        _ => session
                            .delete(
                                "lineitem",
                                &Expr::name("l_orderkey")
                                    .ge(Expr::lit(1_000_000i64))
                                    .and(Expr::name("l_quantity").lt(Expr::lit(10.0))),
                            )
                            .expect("delete lineitem"),
                    };
                    // No-op deletes commit no epoch; count only effective
                    // writes so the epoch assertion below is exact.
                    if out.rows_affected > 0 {
                        lineitem_writes.fetch_add(1, Ordering::Relaxed);
                    }
                    i += 1;
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            });
        }
        // Readers: parameterized TPC-H templates, each checked against the
        // materializing engine at the snapshot it read.
        for r in 0..READERS {
            let engine = Arc::clone(&engine);
            let reuses = &reuses;
            let readers_done = &readers_done;
            scope.spawn(move |_| {
                let mut rng = SmallRng::seed_from_u64(31 + r as u64);
                for q in 0..QUERIES_PER_READER {
                    let (template, params, label) = match (r + q) % 3 {
                        0 => (
                            templates::q1_template(),
                            templates::q1_params(&mut rng),
                            "Q1",
                        ),
                        1 => (
                            templates::q6_template(),
                            templates::q6_params(&mut rng),
                            "Q6",
                        ),
                        _ => (
                            templates::q14_template(),
                            templates::q14_params(&mut rng),
                            "Q14",
                        ),
                    };
                    let concrete = template.substitute_params(&params).unwrap();
                    if check_one(&engine, &concrete, &format!("reader {r} query {q} {label}")) {
                        reuses.fetch_add(1, Ordering::Relaxed);
                    }
                }
                readers_done.fetch_add(1, Ordering::Relaxed);
            });
        }
    })
    .expect("no thread may panic");

    // Every effective write committed exactly one epoch, and the appends
    // alone (2 of every 3 ops per writer, never no-ops) guarantee plenty.
    let li_epoch = engine.catalog().epoch_of("lineitem").unwrap();
    assert_eq!(li_epoch as usize, lineitem_writes.load(Ordering::Relaxed));
    assert!(li_epoch as usize >= WRITERS * WRITES_PER_WRITER / 2);

    // The final state is still exact: one more check, single-threaded, and
    // a deterministic cache → update → invalidate round-trip to show the
    // machinery is alive after the churn.
    let mut rng = SmallRng::seed_from_u64(777);
    let q6 = templates::q6_template()
        .substitute_params(&templates::q6_params(&mut rng))
        .unwrap();
    check_one(&engine, &q6, "post-stress Q6 (compute)");
    assert!(check_one(&engine, &q6, "post-stress Q6 (replay)"));
    let stats = &engine.recycler().unwrap().stats;
    let invalidations_before = stats.invalidations.load(Ordering::Relaxed);
    let repaired_before = stats.repaired.load(Ordering::Relaxed);
    engine
        .session()
        .append("lineitem", &[lineitem_row(&mut rng, 2_000_000)])
        .unwrap();
    assert!(
        stats.invalidations.load(Ordering::Relaxed) > invalidations_before
            || stats.repaired.load(Ordering::Relaxed) > repaired_before,
        "the post-stress cached Q6 must be repaired or invalidated by the \
         append — never served stale"
    );
    check_one(&engine, &q6, "post-stress Q6 (recompute at new epoch)");
    let _ = reuses.load(Ordering::Relaxed); // informational; hit-rate under
                                            // churn is asserted in the bench
}
