//! Seeded property test: random interleavings of appends, deletes, and
//! queries (NULL-bearing data, subsumable predicate families) compare the
//! recycling engine against the operator-at-a-time materializing engine at
//! every step — in the style of `tests/zero_copy.rs`, extended with DML.
//!
//! Queries repeat from a small pool so the recycler alternates between
//! computing, exact reuse, and subsumption reuse across epoch bumps; every
//! answer must equal a fresh materializing run over the snapshot the query
//! read.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use recycler_db::engine::{Engine, MaterializingEngine};
use recycler_db::expr::{AggFunc, Expr};
use recycler_db::plan::{scan, Plan};
use recycler_db::recycler::RecyclerConfig;
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::{Batch, DataType, Schema, Value};

fn nullable_row(rng: &mut SmallRng) -> Vec<Value> {
    vec![
        if rng.gen_bool(0.15) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(-20..40))
        },
        if rng.gen_bool(0.15) {
            Value::Null
        } else {
            Value::Float(rng.gen_range(-100.0..100.0))
        },
    ]
}

fn engine_with(seed: u64, rows: usize, repair: bool) -> Arc<Engine> {
    let schema = Schema::from_pairs([("k", DataType::Int), ("v", DataType::Float)]);
    let mut b = TableBuilder::new("t", schema, rows);
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..rows {
        b.push_row(nullable_row(&mut rng));
    }
    let mut cat = Catalog::new();
    cat.register(b.finish()).unwrap();
    let mut config = RecyclerConfig::deterministic(64 << 20);
    config.spec_min_progress = 0.0;
    config.repair = repair;
    Engine::builder(Arc::new(cat)).recycler(config).build()
}

fn engine(seed: u64, rows: usize) -> Arc<Engine> {
    engine_with(seed, rows, true)
}

/// A small pool of query shapes over a shared `k >= cut` family, so wider
/// cuts subsume narrower ones (σ reuse) and repeats hit exactly.
fn query(shape: usize, cut: i64) -> Plan {
    let base = scan("t", &["k", "v"]).select(Expr::name("k").ge(Expr::lit(cut)));
    match shape {
        0 => base,
        1 => base.aggregate(
            vec![(Expr::name("k"), "k")],
            vec![
                (AggFunc::Sum(Expr::name("v")), "sv"),
                (AggFunc::CountStar, "n"),
            ],
        ),
        _ => base.aggregate(
            vec![],
            vec![
                (AggFunc::Sum(Expr::name("v")), "sv"),
                (AggFunc::Min(Expr::name("v")), "mn"),
            ],
        ),
    }
}

fn sorted_rows(b: &Batch) -> Vec<Vec<Value>> {
    let mut rows = b.to_rows();
    rows.sort();
    rows
}

#[test]
fn random_interleavings_match_the_materializing_engine() {
    for seed in 0..4u64 {
        let engine = engine(1000 + seed, 800);
        let session = engine.session();
        let mut rng = SmallRng::seed_from_u64(seed);
        // Small domains create repeats (reuse) and subsumption pairs.
        let cuts: Vec<i64> = (0..4).map(|_| rng.gen_range(-25..25)).collect();
        let mut queries = 0u64;
        for step in 0..120 {
            match rng.gen_range(0..10) {
                // 20%: append a small NULL-bearing batch.
                0 | 1 => {
                    let rows: Vec<Vec<Value>> = (0..rng.gen_range(1..8))
                        .map(|_| nullable_row(&mut rng))
                        .collect();
                    session.append("t", &rows).unwrap();
                }
                // 10%: delete by a random predicate (NULL → kept).
                2 => {
                    let pred = if rng.gen_bool(0.5) {
                        Expr::name("k").eq(Expr::lit(rng.gen_range(-20i64..40)))
                    } else {
                        Expr::name("v").gt(Expr::lit(rng.gen_range(60.0..100.0)))
                    };
                    session.delete("t", &pred).unwrap();
                }
                // 70%: query, checked against the snapshot it read.
                _ => {
                    let shape = rng.gen_range(0..3);
                    let cut = cuts[rng.gen_range(0..cuts.len())];
                    let plan = query(shape, cut);
                    let handle = session.query(&plan).unwrap();
                    let snapshot = handle.snapshot().clone();
                    let out = handle.into_outcome();
                    let baseline = MaterializingEngine::naive(Arc::new(snapshot.to_catalog()))
                        .run(&plan)
                        .unwrap();
                    assert_eq!(
                        sorted_rows(&out.batch),
                        sorted_rows(&baseline.batch),
                        "seed {seed} step {step}: shape {shape} cut {cut} diverged \
                         (epochs {:?})",
                        snapshot.epochs()
                    );
                    queries += 1;
                }
            }
        }
        // The interleaving exercised the full machinery, not a degenerate
        // corner: reuse happened, updates invalidated, results stayed exact.
        let stats = &engine.recycler().unwrap().stats;
        let load = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
        assert!(queries > 50, "seed {seed}: want a query-heavy mix");
        assert!(
            load(&stats.reuses) + load(&stats.subsumption_reuses) > 0,
            "seed {seed}: some repeats must reuse"
        );
        assert!(
            load(&stats.invalidations) > 0,
            "seed {seed}: updates must invalidate cached entries"
        );
    }
}

#[test]
fn subsumption_reuse_respects_epochs() {
    // Deterministic core of the property: cache a wide selection, reuse it
    // through subsumption for a narrower one, update, and verify the stale
    // subsumer is neither reused nor resurrected. Repair is pinned off —
    // with it on, the wide entry would be patched to the new epoch and
    // reusing it would be *correct* (covered in tests/delta_repair.rs);
    // here we pin the baseline stale-entry gate.
    let engine = engine_with(5, 400, false);
    let session = engine.session();
    let wide = query(0, -25);
    let narrow = query(0, 10);
    session.query(&wide).unwrap().into_outcome();
    assert!(session.query(&wide).unwrap().into_outcome().reused());
    let narrowed = session.query(&narrow).unwrap().into_outcome();
    // (Whether subsumption or exact matching served it, the answer must be
    // right; with the wide result cached, *some* reuse is expected.)
    assert!(narrowed.reused(), "narrow σ should reuse the wide result");

    session
        .append("t", &[vec![Value::Int(30), Value::Float(7.5)]])
        .unwrap();
    let after = session.query(&narrow).unwrap().into_outcome();
    assert!(
        !after.reused(),
        "the stale wide result must not answer the new epoch"
    );
    let baseline = MaterializingEngine::naive(Arc::new(engine.catalog().snapshot().to_catalog()))
        .run(&narrow)
        .unwrap();
    assert_eq!(sorted_rows(&after.batch), sorted_rows(&baseline.batch));
}
