//! Durability end to end: crash recovery, fault injection, checkpointing,
//! lineage-warmed recovery, and WAL/epoch ordering under concurrency.
//!
//! The centerpiece is a kill-at-random-offset harness: a deterministic
//! workload runs with `FsyncPolicy::Always`, recording the durable WAL
//! length at every acknowledgement; then the log is truncated at 50+
//! seeded offsets (some with garbage appended, as a torn write would
//! leave) and rebooted. Every recovered state must equal some prefix of
//! the committed epoch sequence, include every write acknowledged at or
//! below the kill offset, and never panic.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use recycler_db::engine::{DurabilityConfig, Engine, FsyncPolicy, ScriptedFault, WriteKind};
use recycler_db::expr::{AggFunc, Expr};
use recycler_db::plan::{scan, PlanErrorKind};
use recycler_db::recycler::RecyclerConfig;
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::{DataType, Schema, Value};
use recycler_db::wal::segment::{list_segments, scan_segment};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdb-dur-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The seed catalog every boot starts from: schemas are code, data is
/// recovered from the log.
fn seed_catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new();
    let schema = Schema::from_pairs([("k", DataType::Int), ("s", DataType::Str)]);
    cat.register(TableBuilder::new("t", schema, 0).finish())
        .unwrap();
    let schema2 = Schema::from_pairs([("x", DataType::Int)]);
    cat.register(TableBuilder::new("u", schema2, 0).finish())
        .unwrap();
    Arc::new(cat)
}

fn no_auto() -> DurabilityConfig {
    DurabilityConfig {
        auto_checkpoint: false,
        ..DurabilityConfig::default()
    }
}

fn row(i: i64) -> Vec<Value> {
    vec![Value::Int(i), Value::str(format!("r{i}"))]
}

/// The deterministic workload: 60 commits on `t` (appends with a delete
/// every fifth op), epoch `e` is op `e - 1`.
#[derive(Clone, Copy)]
enum Op {
    App(i64),
    Del(i64),
}

fn ops() -> Vec<Op> {
    (0..60)
        .map(|i| {
            if i % 5 == 4 {
                Op::Del(i - 4)
            } else {
                Op::App(i)
            }
        })
        .collect()
}

/// Apply one op to the in-memory model (mirrors what the engine does).
fn apply_model(model: &mut Vec<Vec<Value>>, op: Op) {
    match op {
        Op::App(i) => model.push(row(i)),
        Op::Del(k) => model.retain(|r| r[0] != Value::Int(k)),
    }
}

fn run_op(engine: &Arc<Engine>, op: Op) {
    match op {
        Op::App(i) => {
            engine.append("t", &[row(i)]).unwrap();
        }
        Op::Del(k) => {
            let out = engine
                .delete("t", &Expr::name("k").eq(Expr::lit(k)))
                .unwrap();
            assert_eq!(out.rows_affected, 1, "workload deletes always match");
        }
    }
}

fn table_rows(catalog: &Catalog, name: &str) -> Vec<Vec<Value>> {
    catalog.get(name).unwrap().to_rows()
}

/// Seeded LCG (no external RNG needed, fully reproducible).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 17
    }
}

#[test]
fn kill_at_any_offset_recovers_a_consistent_prefix() {
    let src = temp_dir("kill-src");

    // Run the workload durably, recording the WAL length at every ack.
    // With FsyncPolicy::Always an acknowledged commit is on disk, so a
    // crash that preserves >= that length must recover it.
    let mut snapshots: Vec<Vec<Vec<Value>>> = vec![Vec::new()]; // snapshots[e] = state at epoch e
    let mut acked: Vec<u64> = Vec::new();
    {
        let engine = Engine::builder(seed_catalog())
            .data_dir(&src)
            .durability(no_auto())
            .try_build()
            .unwrap();
        let mut model = Vec::new();
        for op in ops() {
            run_op(&engine, op);
            apply_model(&mut model, op);
            snapshots.push(model.clone());
            acked.push(engine.durability_stats().wal_bytes);
        }
        assert_eq!(engine.catalog().epoch_of("t"), Some(60));
    }
    let seg = src.join("wal-000001.seg");
    let full = std::fs::metadata(&seg).unwrap().len();
    assert_eq!(full, *acked.last().unwrap(), "single segment, no rotation");

    // 50+ seeded kill offsets: spread over the file plus exact ack
    // boundaries and the (torn-header) region below 16 bytes.
    let mut kills: Vec<u64> = vec![0, 1, 15, 16, 17, acked[0], acked[0] + 1, full - 1, full];
    let mut rng = Lcg(0xD1CE_F00D);
    while kills.len() < 56 {
        kills.push(rng.next() % (full + 1));
    }

    for (i, &kill) in kills.iter().enumerate() {
        let dir = temp_dir(&format!("kill-{i}"));
        std::fs::copy(&seg, dir.join("wal-000001.seg")).unwrap();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join("wal-000001.seg"))
            .unwrap();
        f.set_len(kill).unwrap();
        drop(f);
        if i % 2 == 1 {
            // Torn writes leave garbage, not clean truncation.
            let garbage: Vec<u8> = (0..25).map(|_| rng.next() as u8).collect();
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join("wal-000001.seg"))
                .unwrap();
            f.write_all(&garbage).unwrap();
        }

        // Reboot. Must never panic or error; must land on a prefix.
        let engine = Engine::builder(seed_catalog())
            .data_dir(&dir)
            .durability(no_auto())
            .try_build()
            .unwrap_or_else(|e| panic!("kill point {i} at {kill}: recovery failed: {e}"));
        let e = engine.catalog().epoch_of("t").unwrap();
        assert!(e <= 60, "kill {i}: epoch {e} beyond committed history");
        assert_eq!(
            table_rows(engine.catalog(), "t"),
            snapshots[e as usize],
            "kill {i} at {kill}: state is not the epoch-{e} prefix"
        );
        // Zero lost acknowledged writes: everything acked at or below the
        // surviving length is recovered.
        let must_have = acked.iter().filter(|&&o| o <= kill).count() as u64;
        assert!(
            e >= must_have,
            "kill {i} at {kill}: recovered epoch {e} < acknowledged {must_have}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&src);
}

#[test]
fn checkpoint_plus_wal_tail_restores_exact_state() {
    let dir = temp_dir("ckpt");
    {
        let engine = Engine::builder(seed_catalog())
            .data_dir(&dir)
            .durability(no_auto())
            .try_build()
            .unwrap();
        for i in 0..10 {
            engine.append("t", &[row(i)]).unwrap();
        }
        assert!(engine.checkpoint().unwrap());
        let stats = engine.durability_stats();
        assert_eq!(stats.last_checkpoint_epoch, 10);
        // Everything before the checkpoint is pruned from the log.
        for i in 10..15 {
            engine.append("t", &[row(i)]).unwrap();
        }
        engine.append("u", &[vec![Value::Int(7)]]).unwrap();
    }
    let engine = Engine::builder(seed_catalog())
        .data_dir(&dir)
        .durability(no_auto())
        .try_build()
        .unwrap();
    assert_eq!(engine.catalog().epoch_of("t"), Some(15));
    assert_eq!(engine.catalog().epoch_of("u"), Some(1));
    let expect: Vec<Vec<Value>> = (0..15).map(row).collect();
    assert_eq!(table_rows(engine.catalog(), "t"), expect);
    assert_eq!(table_rows(engine.catalog(), "u"), vec![vec![Value::Int(7)]]);
    let stats = engine.durability_stats();
    assert_eq!(stats.recovery_replayed, 6, "the 6 post-checkpoint commits");
    assert_eq!(stats.last_checkpoint_epoch, 10);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_recovery_is_idempotent() {
    let dir = temp_dir("idem");
    {
        let engine = Engine::builder(seed_catalog())
            .data_dir(&dir)
            .durability(no_auto())
            .try_build()
            .unwrap();
        for i in 0..5 {
            engine.append("t", &[row(i)]).unwrap();
        }
    }
    for _ in 0..3 {
        let engine = Engine::builder(seed_catalog())
            .data_dir(&dir)
            .durability(no_auto())
            .try_build()
            .unwrap();
        assert_eq!(engine.catalog().epoch_of("t"), Some(5));
        assert_eq!(table_rows(engine.catalog(), "t").len(), 5);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// One fault scenario: run appends until the injected fault fires, then
/// verify read-only degradation and that reboot recovers a consistent
/// prefix containing every acknowledged write.
fn fault_scenario(name: &str, fault: ScriptedFault) {
    let dir = temp_dir(name);
    let mut acked_epochs = 0u64;
    {
        let engine = Engine::builder(seed_catalog())
            .data_dir(&dir)
            .durability(no_auto())
            .io_fault(Arc::new(fault))
            .try_build()
            .unwrap();
        let mut failed = false;
        for i in 0..10 {
            match engine.append("t", &[row(i)]) {
                Ok(out) => {
                    assert!(!failed, "writes must not succeed after poisoning");
                    acked_epochs = out.epoch;
                }
                Err(e) => {
                    assert!(
                        matches!(e.kind, PlanErrorKind::ReadOnly),
                        "{name}: wrong error kind: {e}"
                    );
                    failed = true;
                }
            }
        }
        assert!(failed, "{name}: the injected fault never fired");
        assert!(engine.is_read_only());
        assert!(engine.durability_stats().read_only);

        // Reads keep serving, at exactly the last committed epoch — no
        // stale data, no phantom rows from the failed commit.
        let q = scan("t", &["k"]).aggregate(vec![], vec![(AggFunc::CountStar, "n")]);
        let out = engine.session().query(&q).unwrap().into_outcome();
        assert_eq!(
            out.batch.column(0).as_ints(),
            &[acked_epochs as i64],
            "{name}: visible rows must match acknowledged appends"
        );

        // Writes stay rejected with the structured read-only error.
        let err = engine.append("t", &[row(99)]).unwrap_err();
        assert!(matches!(err.kind, PlanErrorKind::ReadOnly), "{name}: {err}");
        let err = engine
            .delete("t", &Expr::name("k").eq(Expr::lit(0)))
            .unwrap_err();
        assert!(matches!(err.kind, PlanErrorKind::ReadOnly), "{name}: {err}");
    }

    // Reboot without the fault: a consistent prefix, nothing acked lost.
    let engine = Engine::builder(seed_catalog())
        .data_dir(&dir)
        .durability(no_auto())
        .try_build()
        .unwrap();
    let e = engine.catalog().epoch_of("t").unwrap();
    // A logged-but-unacknowledged commit (e.g. the write landed, the
    // fsync failed) may legitimately reappear: acked <= recovered.
    assert!(
        e >= acked_epochs && e <= acked_epochs + 1,
        "{name}: recovered epoch {e}, acked {acked_epochs}"
    );
    let expect: Vec<Vec<Value>> = (0..e as i64).map(row).collect();
    assert_eq!(table_rows(engine.catalog(), "t"), expect, "{name}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_write_poisons_and_recovers() {
    fault_scenario("torn", ScriptedFault::torn_at(4, 7));
}

#[test]
fn short_write_of_one_byte_poisons_and_recovers() {
    fault_scenario("short", ScriptedFault::torn_at(2, 1));
}

#[test]
fn disk_full_poisons_and_recovers() {
    fault_scenario("disk-full", ScriptedFault::disk_full_at(5));
}

#[test]
fn fsync_failure_poisons_and_recovers() {
    fault_scenario("fsync-fail", ScriptedFault::fsync_fail_at(6));
}

#[test]
fn recovery_warms_the_recycler_from_persisted_lineage() {
    let dir = temp_dir("warm");
    let mut cfg = RecyclerConfig::deterministic(1 << 20);
    cfg.spec_min_progress = 0.0;
    let q = scan("t", &["k", "s"])
        .select(Expr::name("k").lt(Expr::lit(40)))
        .aggregate(vec![], vec![(AggFunc::Sum(Expr::name("k")), "sum_k")]);
    let expected;
    {
        let engine = Engine::builder(seed_catalog())
            .data_dir(&dir)
            .durability(no_auto())
            .recycler(cfg.clone())
            .try_build()
            .unwrap();
        let rows: Vec<Vec<Value>> = (0..50).map(row).collect();
        engine.append("t", &rows).unwrap();
        let first = engine.session().query(&q).unwrap().into_outcome();
        assert!(!first.reused());
        let second = engine.session().query(&q).unwrap().into_outcome();
        assert!(second.reused(), "steady state: the query is cached");
        expected = second.batch.to_rows();
        assert!(engine.checkpoint().unwrap(), "lineage persisted");
    }

    let engine = Engine::builder(seed_catalog())
        .data_dir(&dir)
        .durability(no_auto())
        .recycler(cfg)
        .try_build()
        .unwrap();
    let stats = engine.durability_stats();
    assert!(
        stats.recovery_warm_hits >= 1,
        "lineage should warm at least the cached aggregate (got {})",
        stats.recovery_warm_hits
    );
    // The very first post-restart execution hits the warmed cache — the
    // whole point of persisting lineage.
    let out = engine.session().query(&q).unwrap().into_outcome();
    assert!(out.reused(), "first post-restart execution must be warm");
    assert_eq!(out.batch.to_rows(), expected);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replace_table_invalidates_cached_results() {
    // Satellite: wholesale replacement must run the same invalidation
    // walk as append/delete — a cached result over the old contents can
    // never be served afterwards.
    let dir = temp_dir("replace");
    let mut cfg = RecyclerConfig::deterministic(1 << 20);
    cfg.spec_min_progress = 0.0;
    let engine = Engine::builder(seed_catalog())
        .data_dir(&dir)
        .durability(no_auto())
        .recycler(cfg)
        .try_build()
        .unwrap();
    let rows: Vec<Vec<Value>> = (0..20).map(row).collect();
    engine.append("t", &rows).unwrap();
    let q = scan("t", &["k", "s"]).aggregate(vec![], vec![(AggFunc::CountStar, "n")]);
    engine.session().query(&q).unwrap().into_outcome();
    let cached = engine.session().query(&q).unwrap().into_outcome();
    assert!(cached.reused());
    assert_eq!(cached.batch.column(0).as_ints(), &[20]);

    // Replace t wholesale with 3 rows.
    let schema = Schema::from_pairs([("k", DataType::Int), ("s", DataType::Str)]);
    let mut b = TableBuilder::new("t", schema, 3);
    for i in 0..3 {
        b.push_row(row(i));
    }
    let out = engine.replace_table(b.finish()).unwrap();
    assert_eq!(out.kind, WriteKind::Replace);
    assert_eq!(out.rows_affected, 3);
    assert!(
        !out.invalidated.is_empty(),
        "replacement must evict dependent cache entries"
    );

    let fresh = engine.session().query(&q).unwrap().into_outcome();
    assert_eq!(
        fresh.batch.column(0).as_ints(),
        &[3],
        "stale cached count served after replace"
    );

    // And the replacement itself is durable.
    drop(engine);
    let engine = Engine::builder(seed_catalog())
        .data_dir(&dir)
        .durability(no_auto())
        .try_build()
        .unwrap();
    assert_eq!(table_rows(engine.catalog(), "t").len(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Decode every WAL record (all segments, in order) as `(table, epoch)`.
fn logged_epochs(dir: &Path) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for (_, path) in list_segments(dir).unwrap() {
        let scan = scan_segment(&path).unwrap();
        assert!(scan.defect.is_none(), "clean shutdown leaves no garbage");
        for rec in scan.records {
            out.push((rec.table, rec.epoch));
        }
    }
    out
}

#[test]
fn concurrent_writers_racing_a_checkpoint_keep_wal_order_equal_to_epoch_order() {
    // Satellite: the epoch CAS commit loop under contention, with a
    // checkpoint (and its segment rotation + pruning) racing the
    // writers. The WAL must contain exactly the committed epochs of
    // each table, strictly ordered, with no gaps past the checkpoint.
    let dir = temp_dir("race");
    let final_t;
    let final_u;
    {
        let engine = Engine::builder(seed_catalog())
            .data_dir(&dir)
            .durability(DurabilityConfig {
                fsync: FsyncPolicy::EveryN(8),
                auto_checkpoint: false,
                ..DurabilityConfig::default()
            })
            .try_build()
            .unwrap();
        crossbeam::thread::scope(|s| {
            for w in 0..4 {
                let engine = &engine;
                s.spawn(move |_| {
                    for i in 0..40 {
                        let v = (w * 100 + i) as i64;
                        if w % 2 == 0 {
                            engine.append("t", &[row(v)]).unwrap();
                        } else {
                            engine.append("u", &[vec![Value::Int(v)]]).unwrap();
                        }
                    }
                });
            }
            let engine = &engine;
            s.spawn(move |_| {
                for _ in 0..5 {
                    engine.checkpoint().unwrap();
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            });
        })
        .unwrap();
        final_t = engine.catalog().epoch_of("t").unwrap();
        final_u = engine.catalog().epoch_of("u").unwrap();
        assert_eq!(final_t, 80, "2 writers x 40 appends");
        assert_eq!(final_u, 80);
    }

    // WAL order == epoch order, per table, strictly increasing.
    let mut last_t = 0u64;
    let mut last_u = 0u64;
    let mut seen_t = HashSet::new();
    let mut seen_u = HashSet::new();
    for (table, epoch) in logged_epochs(&dir) {
        match table.as_str() {
            "t" => {
                assert!(epoch > last_t, "t: epoch {epoch} after {last_t}");
                last_t = epoch;
                seen_t.insert(epoch);
            }
            "u" => {
                assert!(epoch > last_u, "u: epoch {epoch} after {last_u}");
                last_u = epoch;
                seen_u.insert(epoch);
            }
            other => panic!("unexpected table {other}"),
        }
    }
    // Surviving segments + checkpoint must cover history up to the final
    // epochs: prove it by rebooting and comparing exact contents.
    let engine = Engine::builder(seed_catalog())
        .data_dir(&dir)
        .durability(no_auto())
        .try_build()
        .unwrap();
    assert_eq!(engine.catalog().epoch_of("t"), Some(final_t));
    assert_eq!(engine.catalog().epoch_of("u"), Some(final_u));
    let mut t_vals: Vec<i64> = table_rows(engine.catalog(), "t")
        .iter()
        .map(|r| match r[0] {
            Value::Int(v) => v,
            _ => unreachable!(),
        })
        .collect();
    t_vals.sort();
    let mut expect_t: Vec<i64> = (0..4)
        .filter(|w| w % 2 == 0)
        .flat_map(|w| (0..40).map(move |i| (w * 100 + i) as i64))
        .collect();
    expect_t.sort();
    assert_eq!(t_vals, expect_t, "every committed append recovered once");
    assert_eq!(table_rows(engine.catalog(), "u").len(), 80);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn background_checkpointer_truncates_the_log() {
    let dir = temp_dir("auto-ckpt");
    {
        let engine = Engine::builder(seed_catalog())
            .data_dir(&dir)
            .durability(DurabilityConfig {
                fsync: FsyncPolicy::Off,
                checkpoint_threshold_bytes: 4 << 10, // tiny: trigger fast
                checkpoint_poll: std::time::Duration::from_millis(10),
                ..DurabilityConfig::default()
            })
            .try_build()
            .unwrap();
        for i in 0..200 {
            engine.append("t", &[row(i)]).unwrap();
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while engine.durability_stats().last_checkpoint_epoch == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "background checkpointer never fired"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
    assert!(
        dir.join("checkpoint.bin").exists(),
        "checkpoint file written by the background thread"
    );
    let engine = Engine::builder(seed_catalog())
        .data_dir(&dir)
        .durability(no_auto())
        .try_build()
        .unwrap();
    assert_eq!(engine.catalog().epoch_of("t"), Some(200));
    assert_eq!(table_rows(engine.catalog(), "t").len(), 200);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn in_memory_engine_is_unchanged() {
    // No data_dir: no WAL, no read-only mode, zeroed durability stats.
    let engine = Engine::builder(seed_catalog()).build();
    engine.append("t", &[row(1)]).unwrap();
    assert!(!engine.is_read_only());
    let stats = engine.durability_stats();
    assert_eq!(stats.wal_bytes, 0);
    assert!(!stats.read_only);
    assert!(!engine.checkpoint().unwrap(), "no-op without a data dir");
}
