//! Fusion-equivalence property suite.
//!
//! Pipeline fusion (see `rdb_exec::fuse`) claims to change *iteration
//! shape only*: a fused chain must produce exactly the rows, in exactly
//! the order, that the unfused operator stack produces — at every DOP —
//! because batch boundaries at breakers, tees, and gathers are
//! untouched. That invariant is what lets fused engines share cache
//! entries with unfused ones. This suite holds fusion to it:
//!
//! * TPC-H Q1/Q6/Q14 and the SkyServer cone template must produce rows
//!   **identical in order** fused vs unfused at DOP ∈ {1, 2, 4, 8};
//! * seeded random plans (filters with all-true / all-false / sparse
//!   selections, every join kind, aggregates, top-N, sort, NULL-bearing
//!   data) get the same check;
//! * a fused and an unfused recycling engine must assign the same plan
//!   the same fingerprint and publish byte-identical cache entries, so a
//!   cache populated by one is directly replayable by the other.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use recycler_db::engine::Engine;
use recycler_db::exec::FnRegistry;
use recycler_db::expr::{AggFunc, Expr};
use recycler_db::plan::{scan, JoinKind, Plan, SortKeyExpr};
use recycler_db::recycler::RecyclerConfig;
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::{DataType, Schema, Value};

/// The suite asserts exact DOPs up to 8 regardless of host width, so it
/// opts out of the engine's available-core clamp (`effective_dop`):
/// fusion equivalence must hold even oversubscribed.
fn allow_oversubscribe() {
    std::env::set_var("RDB_ALLOW_OVERSUBSCRIBE", "1");
}

const DOPS: [usize; 4] = [1, 2, 4, 8];

/// Execute `plan` on a fresh no-recycler engine at `dop`, fused or not.
fn run(
    cat: &Arc<Catalog>,
    functions: Option<&Arc<FnRegistry>>,
    plan: &Plan,
    dop: usize,
    fusion: bool,
) -> Vec<Vec<Value>> {
    let mut builder = Engine::builder(cat.clone())
        .no_recycler()
        .parallelism(dop)
        .fusion(fusion);
    if let Some(f) = functions {
        builder = builder.functions(f.clone());
    }
    let engine = builder.build();
    let session = engine.session();
    let out = session.query(plan).unwrap().into_outcome();
    assert_eq!(out.dop, dop);
    out.batch.to_rows()
}

/// The equivalence check for one plan: serial unfused execution is the
/// oracle; fused and unfused runs at every DOP must reproduce its rows
/// *in order*.
fn check_plan(cat: &Arc<Catalog>, functions: Option<&Arc<FnRegistry>>, plan: &Plan, label: &str) {
    let oracle = run(cat, functions, plan, 1, false);
    for dop in DOPS {
        for fusion in [true, false] {
            if dop == 1 && !fusion {
                continue; // that run *is* the oracle
            }
            let got = run(cat, functions, plan, dop, fusion);
            assert_eq!(
                oracle, got,
                "{label}: DOP={dop} fusion={fusion} rows (or their order) \
                 diverge from serial unfused"
            );
        }
    }
}

// ---- paper workloads -------------------------------------------------------

#[test]
fn tpch_q1_q6_q14_fused_matches_unfused_at_every_dop() {
    allow_oversubscribe();
    use recycler_db::tpch::{build_query, generate, TpchConfig};
    let cat = generate(&TpchConfig {
        scale: 0.02,
        seed: 3,
    });
    for &q in &[1usize, 6, 14] {
        for seed in 0..2u64 {
            let mut rng = SmallRng::seed_from_u64(900 + seed);
            let plan = build_query(q, &mut rng, 0.02, false);
            check_plan(&cat, None, &plan, &format!("Q{q} seed {seed}"));
        }
    }
}

#[test]
fn skyserver_cones_fused_matches_unfused_at_every_dop() {
    allow_oversubscribe();
    use recycler_db::skyserver::{functions, generate, nearby_query, SkyConfig};
    let cat = generate(&SkyConfig {
        objects: 8_000,
        seed: 9,
    });
    let fns = functions(&cat);
    for (i, (ra, dec, radius)) in [(150.0, -5.0, 2.0), (180.0, -1.0, 1.5), (150.0, -5.0, 4.0)]
        .into_iter()
        .enumerate()
    {
        let plan = nearby_query(
            ra,
            dec,
            radius,
            &["p_objid", "p_ra", "p_dec", "p_psfmag_r"],
            50,
        );
        check_plan(&cat, Some(&fns), &plan, &format!("cone {i}"));
    }
}

// ---- random plans over NULL-bearing data -----------------------------------

/// A random table: int key (clustered), nullable int, nullable float,
/// low-cardinality string — plus a small dimension table (with a NULL
/// key row) for joins.
fn random_catalog(rng: &mut SmallRng, rows: usize) -> Arc<Catalog> {
    let schema = Schema::from_pairs([
        ("k", DataType::Int),
        ("a", DataType::Int),
        ("b", DataType::Float),
        ("tag", DataType::Str),
    ]);
    let mut tb = TableBuilder::new("t", schema, rows);
    for i in 0..rows {
        tb.push_row(vec![
            Value::Int(i as i64 % 97),
            if rng.gen_bool(0.15) {
                Value::Null
            } else {
                Value::Int(rng.gen_range(-50..50))
            },
            if rng.gen_bool(0.15) {
                Value::Null
            } else {
                Value::Float(rng.gen_range(-8.0..8.0))
            },
            Value::str(["red", "green", "blue", "cyan"][rng.gen_range(0..4)]),
        ]);
    }
    let dim_schema = Schema::from_pairs([("dk", DataType::Int), ("w", DataType::Float)]);
    let mut db = TableBuilder::new("dim", dim_schema, 40);
    for i in 0..40i64 {
        db.push_row(vec![
            if i == 13 {
                Value::Null
            } else {
                Value::Int(i * 3 % 97)
            },
            Value::Float(i as f64 * 0.5),
        ]);
    }
    let mut cat = Catalog::new();
    cat.register(tb.finish()).unwrap();
    cat.register(db.finish()).unwrap();
    Arc::new(cat)
}

/// A random scan-rooted pipeline — the shapes fusion collapses: stacked
/// filters (covering all-true, all-false, sparse-compacted selections),
/// an optional probe of every join kind, then a projection or breaker.
fn random_plan(rng: &mut SmallRng) -> Plan {
    let mut plan = scan("t", &["k", "a", "b", "tag"]);
    for _ in 0..rng.gen_range(0..=3) {
        let pred = match rng.gen_range(0..6) {
            0 => Expr::name("a").gt(Expr::lit(rng.gen_range(-60i64..60))),
            1 => Expr::name("b").le(Expr::lit(rng.gen_range(-9.0f64..9.0))),
            2 => Expr::name("tag").eq(Expr::lit("green")),
            3 => Expr::name("k").lt(Expr::lit(rng.gen_range(0i64..97))),
            4 => Expr::name("a").ge(Expr::lit(100i64)), // all-false
            _ => Expr::name("k").ge(Expr::lit(0i64)),   // all-true
        };
        plan = plan.select(pred);
    }
    if rng.gen_bool(0.5) {
        let dim = scan("dim", &["dk", "w"]);
        let kind = match rng.gen_range(0..4) {
            0 => JoinKind::Inner,
            1 => JoinKind::LeftOuter,
            2 => JoinKind::Semi,
            _ => JoinKind::Anti,
        };
        plan = plan.join(dim, kind, vec![Expr::name("k")], vec![Expr::name("dk")]);
    }
    match rng.gen_range(0..5) {
        0 => plan.aggregate(
            vec![(Expr::name("tag"), "tag")],
            vec![
                (AggFunc::Sum(Expr::name("a")), "sa"),
                (AggFunc::CountStar, "n"),
                (AggFunc::Min(Expr::name("b")), "mn"),
            ],
        ),
        1 => plan.top_n(
            vec![
                SortKeyExpr::desc(Expr::name("a")),
                SortKeyExpr::asc(Expr::name("k")),
            ],
            rng.gen_range(1..40),
        ),
        2 => plan.sort(vec![
            SortKeyExpr::asc(Expr::name("tag")),
            SortKeyExpr::desc(Expr::name("b")),
        ]),
        _ => plan.project(vec![
            (Expr::name("k").add(Expr::name("a")), "ka"),
            (Expr::name("b"), "b"),
        ]),
    }
}

#[test]
fn random_plans_fused_matches_unfused_at_every_dop() {
    allow_oversubscribe();
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(7_000 + seed);
        let rows = rng.gen_range(1..9_000);
        let cat = random_catalog(&mut rng, rows);
        let plan = random_plan(&mut rng);
        check_plan(
            &cat,
            None,
            &plan,
            &format!("random plan seed {seed} ({rows} rows)"),
        );
    }
}

// ---- recycling: fused and unfused engines are cache-compatible -------------

#[test]
fn fused_and_unfused_recyclers_agree_on_fingerprints_and_cache_bytes() {
    allow_oversubscribe();
    let schema = Schema::from_pairs([
        ("k", DataType::Int),
        ("v", DataType::Int),
        ("f", DataType::Float),
    ]);
    let rows = 40_000i64;
    let mut tb = TableBuilder::new("t", schema, rows as usize);
    for i in 0..rows {
        tb.push_row(vec![
            Value::Int(i % 200),
            Value::Int(i * 3),
            Value::Float(i as f64 * 0.125),
        ]);
    }
    let mut cat = Catalog::new();
    cat.register(tb.finish()).unwrap();
    let cat = Arc::new(cat);

    let engine_with = |fusion: bool| {
        let mut c = RecyclerConfig::deterministic(256 << 20);
        c.spec_min_progress = 0.0;
        Engine::builder(cat.clone())
            .recycler(c)
            .parallelism(4)
            .fusion(fusion)
            .build()
    };

    for (label, plan) in [
        (
            "scan-filter",
            scan("t", &["k", "v", "f"]).select(Expr::name("k").ge(Expr::lit(195))),
        ),
        (
            "filter-agg",
            scan("t", &["k", "v"])
                .select(Expr::name("v").gt(Expr::lit(100)))
                .aggregate(
                    vec![(Expr::name("k"), "k")],
                    vec![
                        (AggFunc::Sum(Expr::name("v")), "sv"),
                        (AggFunc::CountStar, "n"),
                    ],
                ),
        ),
    ] {
        let fused = engine_with(true);
        let unfused = engine_with(false);
        let sf = fused.session();
        let su = unfused.session();

        // Fusion must not leak into the plan fingerprint: the cache is
        // keyed on plan structure + table epochs, and a fused engine must
        // be able to replay entries an unfused engine published.
        assert_eq!(
            sf.prepare(&plan).unwrap().fingerprint(),
            su.prepare(&plan).unwrap().fingerprint(),
            "{label}: fused and unfused fingerprints diverge"
        );

        let computed_f = sf.query(&plan).unwrap().into_outcome();
        let computed_u = su.query(&plan).unwrap().into_outcome();
        assert_eq!(
            computed_f.batch.to_rows(),
            computed_u.batch.to_rows(),
            "{label}: fused compute diverges from unfused"
        );

        let replay_f = sf.query(&plan).unwrap().into_outcome();
        let replay_u = su.query(&plan).unwrap().into_outcome();
        assert!(
            replay_f.reused() && replay_u.reused(),
            "{label}: second runs must replay from cache"
        );
        // The replayed batch is served zero-copy out of the cache entry,
        // so column equality here *is* cache-entry byte identity.
        assert_eq!(
            replay_f.batch.width(),
            replay_u.batch.width(),
            "{label}: cached entry widths diverge"
        );
        for i in 0..replay_f.batch.width() {
            let cf = replay_f.batch.column(i);
            let cu = replay_u.batch.column(i);
            assert_eq!(
                cf.data_type(),
                cu.data_type(),
                "{label}: cached column {i} type diverges"
            );
            assert_eq!(cf, cu, "{label}: cached column {i} bytes diverge");
        }
    }
}
