//! Parser/binder fuzz smoke: seeded random token streams and byte soup
//! through `parse` (and `compile`, when parsing succeeds), asserting no
//! panic — every malformed input must come back as a structured
//! `SqlError`. CI runs this in release mode.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use recycler_db::sql::{compile, parse};
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::{DataType, Schema, Value};

const VOCAB: [&str; 58] = [
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "UNION", "ALL", "JOIN",
    "INNER", "LEFT", "OUTER", "SEMI", "ANTI", "ON", "AS", "AND", "OR", "NOT", "IN", "LIKE",
    "BETWEEN", "IS", "NULL", "CASE", "WHEN", "THEN", "ELSE", "END", "DATE", "INSERT", "INTO",
    "VALUES", "DELETE", "count", "sum", "avg", "t", "u", "a", "b", "c", "d", "(", ")", ",", ".",
    "*", "=", "<>", "<", "<=", "+", "-", "'x'", "1",
];

fn catalog() -> Arc<Catalog> {
    let mut cat = Catalog::new();
    let schema = Schema::from_pairs([
        ("a", DataType::Int),
        ("b", DataType::Float),
        ("c", DataType::Str),
        ("d", DataType::Date),
    ]);
    let mut t = TableBuilder::new("t", schema, 1);
    t.push_row(vec![
        Value::Int(1),
        Value::Float(1.0),
        Value::str("x"),
        Value::Date(1),
    ]);
    cat.register(t.finish()).unwrap();
    let schema = Schema::from_pairs([("id", DataType::Int)]);
    let mut u = TableBuilder::new("u", schema, 1);
    u.push_row(vec![Value::Int(1)]);
    cat.register(u.finish()).unwrap();
    Arc::new(cat)
}

#[test]
fn random_token_streams_never_panic() {
    let cat = catalog();
    let mut rng = SmallRng::seed_from_u64(0xF0221);
    let mut parsed_ok = 0usize;
    for _ in 0..5_000 {
        let len = rng.gen_range(1..24);
        let mut sql = String::new();
        // Half the streams start from a valid stem so an interesting
        // fraction reaches deep parser states (and some parse fully).
        if rng.gen_bool(0.5) {
            sql.push_str("SELECT a FROM t ");
        }
        for _ in 0..len {
            sql.push_str(VOCAB[rng.gen_range(0..VOCAB.len())]);
            sql.push(' ');
        }
        // Either outcome is fine; a panic is the only failure.
        if let Ok(stmt) = parse(&sql) {
            parsed_ok += 1;
            let _ = stmt.to_sql();
            let _ = compile(&sql, cat.as_ref());
        }
    }
    // Sanity: the vocabulary does produce some valid statements, so the
    // binder path is actually exercised.
    assert!(parsed_ok > 0, "vocabulary never parsed; fuzz is toothless");
}

#[test]
fn pathological_nesting_is_an_error_not_a_crash() {
    // Stack overflow is not a catchable panic — unbounded recursion on
    // attacker-shaped input would kill the whole process. The parser
    // rejects past its nesting budget instead.
    let deep_parens = format!(
        "SELECT {}1{} FROM t",
        "(".repeat(200_000),
        ")".repeat(200_000)
    );
    let err = parse(&deep_parens).expect_err("deep parens must be rejected");
    assert!(err.message.contains("nesting"), "{err}");
    let deep_not = format!("SELECT a FROM t WHERE {} a > 1", "NOT ".repeat(200_000));
    assert!(parse(&deep_not).is_err());
    let deep_case = format!(
        "SELECT {} 1 {} FROM t",
        "CASE WHEN 1 = 1 THEN ".repeat(100_000),
        "ELSE 0 END ".repeat(100_000)
    );
    assert!(parse(&deep_case).is_err());
    let deep_neg = format!("SELECT {}a FROM t", "- ".repeat(200_000));
    assert!(parse(&deep_neg).is_err());
    // Wide-but-flat conjunctions are fine: AND/OR chains parse into
    // n-ary nodes, so ten thousand conjuncts cost one nesting level (and
    // lower into the engine's flat `Expr::And`).
    let wide_and = format!("SELECT a FROM t WHERE {}a > 0", "a > 0 AND ".repeat(10_000));
    parse(&wide_and).expect("wide flat conjunction parses");
    // Moderate nesting is accepted.
    let ok = format!("SELECT {}1{} FROM t", "(".repeat(40), ")".repeat(40));
    parse(&ok).expect("moderate nesting parses");
}

#[test]
fn byte_soup_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0x50_0B);
    for _ in 0..2_000 {
        let len = rng.gen_range(0..40);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0x20..0x7f)).collect();
        let sql = String::from_utf8(bytes).unwrap();
        let _ = parse(&sql);
    }
}

#[test]
fn truncations_of_valid_queries_never_panic() {
    let cat = catalog();
    let base = "SELECT c, count(*) AS n, sum(b) AS s FROM t INNER JOIN u ON a = id \
                WHERE a BETWEEN 1 AND 9 AND c LIKE 'x%' AND d >= DATE '1970-01-02' \
                GROUP BY c HAVING sum(b) > 0.5 ORDER BY n DESC LIMIT 3";
    for cut in 0..=base.len() {
        if !base.is_char_boundary(cut) {
            continue;
        }
        let prefix = &base[..cut];
        if let Ok(stmt) = parse(prefix) {
            let _ = stmt.to_sql();
            let _ = compile(prefix, cat.as_ref());
        }
    }
}
