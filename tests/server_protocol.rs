//! End-to-end wire-protocol tests: a real [`rdb_server::Server`] on an
//! ephemeral port, talked to by the in-repo pgwire client
//! (`tests/support/pg_client.rs`) over real sockets.

#[path = "support/pg_client.rs"]
mod pg_client;

use std::sync::Arc;
use std::time::Duration;

use pg_client::PgClient;
use recycler_db::recycler::RecyclerConfig;
use recycler_db::server::{Server, ServerBuilder};
use recycler_db::storage::{Catalog, TableBuilder};
use recycler_db::vector::{DataType, Schema, Value};

fn catalog(rows: i64) -> Arc<Catalog> {
    let mut cat = Catalog::new();
    let schema = Schema::from_pairs([
        ("k", DataType::Int),
        ("v", DataType::Float),
        ("s", DataType::Str),
    ]);
    let mut t = TableBuilder::new("t", schema, rows as usize);
    for i in 0..rows {
        t.push_row(vec![
            Value::Int(i % 100),
            Value::Float(i as f64 * 0.5),
            Value::str(["red", "green", "blue"][(i % 3) as usize]),
        ]);
    }
    cat.register(t.finish()).unwrap();
    Arc::new(cat)
}

fn recycling_server(rows: i64) -> Server {
    let mut config = RecyclerConfig::deterministic(64 << 20);
    config.spec_min_progress = 0.0;
    ServerBuilder::new(catalog(rows))
        .recycler(config)
        .serve()
        .expect("bind server")
}

#[test]
fn startup_then_simple_query_roundtrip() {
    let server = recycling_server(1000);
    let mut client = PgClient::connect(server.local_addr()).unwrap();
    assert!(client.pid > 0, "BackendKeyData delivered");

    let cycle = client.query("SELECT k, v FROM t WHERE k < 3").unwrap();
    let desc = cycle.row_description().expect("RowDescription");
    assert_eq!(desc.column_names(), vec!["k", "v"]);
    let rows = cycle.rows();
    assert_eq!(rows.len(), 30, "3 keys x 10 dups in 1000 rows");
    assert!(rows
        .iter()
        .all(|r| r[0].as_deref().unwrap().parse::<i64>().unwrap() < 3));
    assert_eq!(cycle.command_tags(), vec![format!("SELECT {}", rows.len())]);
    client.terminate();
}

#[test]
fn empty_result_still_sends_row_description() {
    let server = recycling_server(100);
    let mut client = PgClient::connect(server.local_addr()).unwrap();
    let cycle = client.query("SELECT k, s FROM t WHERE k < -1").unwrap();
    let desc = cycle
        .row_description()
        .expect("zero-row results must still describe their columns");
    assert_eq!(desc.column_names(), vec!["k", "s"]);
    assert!(cycle.rows().is_empty());
    assert_eq!(cycle.command_tags(), vec!["SELECT 0".to_string()]);
}

#[test]
fn write_outcomes_map_to_postgres_tags() {
    let server = recycling_server(100);
    let mut client = PgClient::connect(server.local_addr()).unwrap();
    let cycle = client
        .query("INSERT INTO t VALUES (500, 1.5, 'red'), (501, 2.5, 'blue')")
        .unwrap();
    assert_eq!(cycle.command_tags(), vec!["INSERT 0 2".to_string()]);

    let cycle = client.query("DELETE FROM t WHERE k = 500").unwrap();
    assert_eq!(cycle.command_tags(), vec!["DELETE 1".to_string()]);

    // Multiple statements in one Query message, each tagged.
    let cycle = client
        .query("INSERT INTO t VALUES (600, 0.0, 'red'); DELETE FROM t WHERE k = 600; SELECT k FROM t WHERE k = 600")
        .unwrap();
    assert_eq!(
        cycle.command_tags(),
        vec![
            "INSERT 0 1".to_string(),
            "DELETE 1".to_string(),
            "SELECT 0".to_string()
        ]
    );
}

#[test]
fn errors_carry_sqlstate_and_span_position() {
    let server = recycling_server(100);
    let mut client = PgClient::connect(server.local_addr()).unwrap();

    let cycle = client.query("SELECT nope FROM t").unwrap();
    let err = cycle.first_error();
    assert_eq!(err.sqlstate(), "42703", "unknown column");
    let fields = err.error_fields();
    let position = fields
        .iter()
        .find(|(c, _)| *c == b'P')
        .map(|(_, v)| v.clone())
        .expect("position field");
    assert_eq!(position, "8", "1-based char offset of 'nope'");
    let detail = fields
        .iter()
        .find(|(c, _)| *c == b'D')
        .map(|(_, v)| v.clone())
        .expect("detail field");
    assert!(detail.contains('^'), "caret rendering in detail: {detail}");

    let cycle = client.query("SELECT k FROM missing").unwrap();
    assert_eq!(cycle.first_error().sqlstate(), "42P01", "unknown table");

    let cycle = client.query("SELEC k FROM t").unwrap();
    assert_eq!(cycle.first_error().sqlstate(), "42601", "syntax error");

    // An error aborts the rest of the query string...
    let cycle = client
        .query("SELECT nope FROM t; INSERT INTO t VALUES (900, 0.0, 'red')")
        .unwrap();
    assert_eq!(cycle.errors().len(), 1);
    assert!(cycle.command_tags().is_empty(), "second statement skipped");
    // ...but the connection survives and the skipped insert never ran.
    let cycle = client.query("SELECT k FROM t WHERE k = 900").unwrap();
    assert_eq!(cycle.command_tags(), vec!["SELECT 0".to_string()]);
}

#[test]
fn extended_protocol_binds_positional_params() {
    let server = recycling_server(1000);
    let mut client = PgClient::connect(server.local_addr()).unwrap();

    let cycle = client
        .extended("SELECT k, v FROM t WHERE k < $1", &[Some("2")])
        .unwrap();
    assert!(
        cycle.row_description().is_some(),
        "Describe(portal) announces the row shape"
    );
    assert_eq!(cycle.rows().len(), 20);
    assert_eq!(cycle.command_tags(), vec!["SELECT 20".to_string()]);

    // Same template, different binding — fresh result.
    let cycle = client
        .extended("SELECT k, v FROM t WHERE k < $1", &[Some("5")])
        .unwrap();
    assert_eq!(cycle.rows().len(), 50);

    // DML through the extended path, with a NULL parameter elsewhere.
    let cycle = client
        .extended(
            "INSERT INTO t VALUES ($1, $2, $3)",
            &[Some("700"), Some("7.5"), None],
        )
        .unwrap();
    assert_eq!(cycle.command_tags(), vec!["INSERT 0 1".to_string()]);
    let cycle = client
        .extended("DELETE FROM t WHERE k = $1", &[Some("700")])
        .unwrap();
    assert_eq!(cycle.command_tags(), vec!["DELETE 1".to_string()]);

    // Parameter-count mismatch: error, then the connection recovers.
    let cycle = client
        .extended("SELECT k FROM t WHERE k < $1", &[])
        .unwrap();
    assert_eq!(cycle.first_error().sqlstate(), "08P01");
    let cycle = client
        .extended("SELECT k FROM t WHERE k < $1", &[Some("1")])
        .unwrap();
    assert_eq!(cycle.rows().len(), 10);
    client.terminate();
}

#[test]
fn named_statements_rebind_and_reexecute() {
    let server = recycling_server(1000);
    let mut client = PgClient::connect(server.local_addr()).unwrap();
    client
        .send_parse("tpl", "SELECT k FROM t WHERE k < $1", &[20])
        .unwrap();
    client.send_describe(b'S', "tpl").unwrap();
    client.send_sync().unwrap();
    let cycle = client.read_cycle().unwrap();
    assert!(
        cycle.messages.iter().any(|m| m.tag == b'1'),
        "ParseComplete"
    );
    assert!(
        cycle.messages.iter().any(|m| m.tag == b't'),
        "ParameterDescription"
    );

    for (limit, want) in [("1", 10), ("3", 30)] {
        client.send_bind("", "tpl", &[Some(limit)]).unwrap();
        client.send_execute("", 0).unwrap();
        client.send_sync().unwrap();
        let cycle = client.read_cycle().unwrap();
        assert!(cycle.messages.iter().any(|m| m.tag == b'2'), "BindComplete");
        assert_eq!(cycle.rows().len(), want, "limit {limit}");
    }
    client.terminate();
}

#[test]
fn many_clients_share_recycler_results_across_connections() {
    let server = recycling_server(20_000);
    let addr = server.local_addr();
    let clients = 64;
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = PgClient::connect(addr).unwrap();
                // Every client runs the same parameterized template with
                // the same binding: one computes, the rest reuse.
                let cycle = client
                    .extended("SELECT k, v FROM t WHERE k < $1", &[Some("40")])
                    .unwrap();
                assert!(cycle.errors().is_empty(), "{:?}", cycle.errors());
                let n = cycle.rows().len();
                client.terminate();
                n
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 8000, "identical results for everyone");
    }
    let stats = server.stats();
    assert_eq!(stats.connections_total, clients as u64);
    assert!(
        stats.recycler_hits >= 1,
        "cross-connection executions must land on shared cache entries: {stats:?}"
    );
}

#[test]
fn rdb_stats_is_queryable_and_never_stale() {
    let server = recycling_server(1000);
    let mut client = PgClient::connect(server.local_addr()).unwrap();
    let metric = |cycle: &pg_client::Cycle, name: &str| -> f64 {
        cycle
            .rows()
            .iter()
            .find(|r| r[0].as_deref() == Some(name))
            .unwrap_or_else(|| panic!("metric {name} missing"))[1]
            .as_deref()
            .unwrap()
            .parse()
            .unwrap()
    };
    let first = client.query("SELECT * FROM rdb_stats()").unwrap();
    assert_eq!(
        first.row_description().unwrap().column_names(),
        vec!["metric", "value"]
    );
    assert_eq!(metric(&first, "connections"), 1.0);
    let statements_then = metric(&first, "statements");

    client.query("SELECT k FROM t WHERE k < 5").unwrap();
    let second = client.query("SELECT * FROM rdb_stats()").unwrap();
    // A cached stats result would freeze the counters; volatility keeps
    // them live.
    assert!(
        metric(&second, "statements") >= statements_then + 2.0,
        "stats must not be served from the recycler cache"
    );

    // The repair counters round-trip over the wire. With no writes yet
    // they all sit at zero; a DML against a warm cache routes a delta
    // through the repair walk and the next read must see it.
    assert_eq!(metric(&second, "repaired_hits"), 0.0);
    assert_eq!(metric(&second, "repair_fallbacks"), 0.0);
    assert_eq!(metric(&second, "deltas_applied"), 0.0);
    assert_eq!(metric(&second, "subscriptions_active"), 0.0);
    client
        .query("INSERT INTO t VALUES (2000, 1.5, 'red')")
        .unwrap();
    let third = client.query("SELECT * FROM rdb_stats()").unwrap();
    assert!(
        metric(&third, "deltas_applied") >= 1.0,
        "an insert against a warm cache must route a delta through repair"
    );
    assert!(
        metric(&third, "repaired_hits") + metric(&third, "repair_fallbacks") >= 1.0,
        "the cached selection must be repaired or fall back to eviction"
    );
}

#[test]
fn cancel_request_interrupts_a_streaming_query() {
    // Small per-key duplication, joined on k: 200k result rows streamed
    // in ~200 batches, plenty of boundaries to observe the cancel flag.
    let server = recycling_server(20_000);
    let mut client = PgClient::connect(server.local_addr()).unwrap();
    client
        .send(
            b'Q',
            b"SELECT a.v FROM t AS a JOIN t AS b ON a.k = b.k WHERE a.k < 5\0",
        )
        .unwrap();
    // Wait for the stream to start (RowDescription + first rows), then
    // fire the out-of-band cancel and drain what remains.
    let desc = client.read_message().unwrap();
    assert_eq!(desc.tag, b'T');
    client.cancel().unwrap();
    let canceled_at = std::time::Instant::now();
    let mut cancel_latency = None;
    let mut data_rows = 0u64;
    loop {
        let m = client.read_message().unwrap();
        match m.tag {
            b'Z' => break,
            b'D' => data_rows += 1,
            b'E' => {
                assert_eq!(m.sqlstate(), "57014");
                cancel_latency = Some(canceled_at.elapsed());
            }
            _ => {}
        }
    }
    let latency = cancel_latency.expect("query must be canceled mid-stream");
    // The flag is observed by the executor itself at every batch/morsel
    // boundary (not just between protocol-level batches), so the latency
    // bound is one boundary plus CI noise — far below a full result scan.
    assert!(
        latency < Duration::from_millis(750),
        "cancel took {latency:?}"
    );
    assert!(
        data_rows < 1_000_000,
        "the full join result must not have been streamed"
    );
    // The connection survives a cancel and keeps working.
    let cycle = client.query("SELECT k FROM t WHERE k < 1").unwrap();
    assert!(cycle.errors().is_empty());
    assert_eq!(cycle.rows().len(), 200);
    assert!(server.stats().cancels >= 1);
}

#[test]
fn cancel_reaches_morsels_inside_parallel_pipelines() {
    // DOP 4: the join runs as a partitioned pipeline whose workers pull
    // morsels from a shared dispenser. The cancel flag must cross the
    // session into those workers — each stops at its next morsel — and
    // the truncated stream must surface as 57014, never as a successful
    // (but short) SELECT.
    let mut config = RecyclerConfig::deterministic(64 << 20);
    config.spec_min_progress = 0.0;
    let server = ServerBuilder::new(catalog(20_000))
        .recycler(config)
        .parallelism(4)
        .serve()
        .expect("bind server");
    let mut client = PgClient::connect(server.local_addr()).unwrap();
    client
        .send(
            b'Q',
            b"SELECT a.v FROM t AS a JOIN t AS b ON a.k = b.k WHERE a.k < 5\0",
        )
        .unwrap();
    let desc = client.read_message().unwrap();
    assert_eq!(desc.tag, b'T');
    client.cancel().unwrap();
    let canceled_at = std::time::Instant::now();
    let mut cancel_latency = None;
    let mut data_rows = 0u64;
    loop {
        let m = client.read_message().unwrap();
        match m.tag {
            b'Z' => break,
            b'D' => data_rows += 1,
            b'E' => {
                assert_eq!(m.sqlstate(), "57014");
                cancel_latency = Some(canceled_at.elapsed());
            }
            _ => {}
        }
    }
    let latency = cancel_latency.expect("parallel query must be canceled mid-stream");
    assert!(
        latency < Duration::from_millis(750),
        "parallel cancel took {latency:?}"
    );
    assert!(
        data_rows < 1_000_000,
        "the full parallel join result must not have been streamed"
    );
    // The connection survives, and a rerun of the *same* query completes
    // in full — cancellation must not have published a truncated build
    // or result into the cache.
    let rerun = client
        .query("SELECT a.v FROM t AS a JOIN t AS b ON a.k = b.k WHERE a.k < 5")
        .unwrap();
    assert!(rerun.errors().is_empty());
    assert_eq!(rerun.rows().len(), 200_000, "5 keys x 200 dups each side");
    assert!(server.stats().cancels >= 1);
}

#[test]
fn malformed_messages_kill_the_connection_not_the_server() {
    let server = recycling_server(100);
    let addr = server.local_addr();
    let attacks: Vec<Vec<u8>> = vec![
        // Unknown message tag after a healthy startup.
        b"z\x00\x00\x00\x04".to_vec(),
        // Negative length.
        b"Q\xff\xff\xff\xff".to_vec(),
        // Length beyond the frame cap.
        b"Q\x7f\xff\xff\xff".to_vec(),
        // Describe with a bogus kind.
        b"D\x00\x00\x00\x06X\x00".to_vec(),
        // Bind demanding binary-format parameters.
        {
            let mut b = vec![b'B'];
            let body = b"\x00\x00\x00\x01\x00\x01";
            b.extend_from_slice(&((body.len() + 4) as i32).to_be_bytes());
            b.extend_from_slice(body);
            b
        },
        // Garbage that is not a frame at all.
        vec![0xde, 0xad, 0xbe, 0xef, 0xff, 0x00, 0x13, 0x37],
    ];
    for (i, attack) in attacks.iter().enumerate() {
        let mut client = PgClient::connect(addr).unwrap();
        client.send_raw(attack).unwrap();
        client.set_read_timeout(Some(Duration::from_secs(5)));
        // The server answers with ErrorResponse and/or closes; it must
        // never hang this connection.
        while client.read_message().is_ok() {}
        // And the server is still healthy for the next client.
        let mut fresh =
            PgClient::connect(addr).unwrap_or_else(|e| panic!("server died after attack {i}: {e}"));
        let cycle = fresh.query("SELECT k FROM t WHERE k < 1").unwrap();
        assert!(cycle.errors().is_empty());
        fresh.terminate();
    }
    // Startup-packet garbage too.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    std::io::Write::write_all(&mut s, &[0x00, 0x00, 0x00, 0x03]).unwrap();
    drop(s);
    let mut fresh = PgClient::connect(addr).unwrap();
    assert!(fresh.query("SELECT 1 AS one").is_ok());
}

#[test]
fn graceful_shutdown_drains_in_flight_queries() {
    let mut server = recycling_server(50_000);
    let addr = server.local_addr();
    let mut client = PgClient::connect(addr).unwrap();
    client.send(b'Q', b"SELECT k, v FROM t\0").unwrap();
    // The statement is provably in flight: its RowDescription arrived.
    let desc = client.read_message().unwrap();
    assert_eq!(desc.tag, b'T');

    let reader = std::thread::spawn(move || {
        let mut rows = 0u64;
        let mut tags = Vec::new();
        while let Ok(m) = client.read_message() {
            match m.tag {
                b'D' => rows += 1,
                b'C' => tags.push(m.command_tag()),
                _ => {}
            }
        }
        (rows, tags)
    });
    server.shutdown(Duration::from_secs(30));
    let (rows, tags) = reader.join().unwrap();
    assert_eq!(rows, 50_000, "every in-flight row must be delivered");
    assert_eq!(tags, vec!["SELECT 50000".to_string()]);
    // And the server is gone: new connections are refused.
    assert!(
        PgClient::connect(addr).is_err(),
        "listener must be closed after shutdown"
    );
}

#[test]
fn ssl_and_gssenc_requests_are_refused_then_startup_proceeds() {
    let server = recycling_server(100);
    let addr = server.local_addr();
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    use std::io::{Read, Write};
    // SSLRequest
    let mut pkt = Vec::new();
    pkt.extend_from_slice(&8i32.to_be_bytes());
    pkt.extend_from_slice(&80877103i32.to_be_bytes());
    s.write_all(&pkt).unwrap();
    let mut byte = [0u8; 1];
    s.read_exact(&mut byte).unwrap();
    assert_eq!(byte[0], b'N', "SSL refused in cleartext");
    drop(s);
    // A normal client still works.
    let mut client = PgClient::connect(addr).unwrap();
    assert!(client.query("SELECT k FROM t WHERE k < 1").is_ok());
}
