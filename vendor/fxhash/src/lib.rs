//! FxHash: the fast, non-cryptographic hash used by Firefox and rustc.
//!
//! Local implementation (the build environment has no registry access)
//! exposing the API surface the workspace uses: [`FxHasher`],
//! [`FxBuildHasher`], and the [`FxHashMap`]/[`FxHashSet`] aliases.
//!
//! The algorithm folds one machine word at a time:
//! `hash = (hash.rotate_left(5) ^ word) * SEED` with a fixed odd
//! multiplier. It is several times faster than std's SipHash for the short
//! keys query engines hash in bulk (encoded group/join keys), at the cost
//! of no DoS resistance — acceptable for operator-internal tables whose
//! keys come from the data being processed, which are dropped when the
//! operator finishes.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the golden-ratio family (same constant Firefox uses,
/// truncated to 64 bits); must be odd so multiplication permutes.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Word-at-a-time multiply-rotate hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Fold in the tail length so "a" and "a\0" differ.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&b"abc".to_vec()), hash_of(&b"abd".to_vec()));
        // Tail-length folding: prefixes of a chunk must not collide.
        assert_ne!(hash_of(&b"a".to_vec()), hash_of(&b"a\0".to_vec()));
    }

    #[test]
    fn long_keys_cover_all_bytes() {
        let a: Vec<u8> = (0..64).collect();
        let mut b = a.clone();
        b[63] ^= 1;
        assert_ne!(hash_of(&a), hash_of(&b));
        let mut c = a.clone();
        c[0] ^= 1;
        assert_ne!(hash_of(&a), hash_of(&c));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<Vec<u8>, u32> = FxHashMap::default();
        m.insert(vec![1, 2, 3], 7);
        assert_eq!(m.get([1, 2, 3].as_slice()), Some(&7));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
        // Pre-sized construction (the executor path).
        let m2: FxHashMap<u64, u64> =
            FxHashMap::with_capacity_and_hasher(1024, FxBuildHasher::default());
        assert!(m2.capacity() >= 1024);
    }
}
