//! Minimal `parking_lot`-compatible shim over `std::sync`.
//!
//! The build environment has no registry access, so this crate provides the
//! exact API surface the workspace consumes: non-poisoning [`Mutex`] whose
//! `lock()` returns a guard directly, and [`Condvar`] with `wait` /
//! `wait_until` taking the guard by `&mut`.

use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// A mutual-exclusion lock that never poisons: a panic while holding the
/// lock simply releases it.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the inner std guard in an `Option` so [`Condvar`] methods can move
/// it out and back while keeping a `&mut` borrow of this wrapper.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock that never poisons: a panic while holding either
/// guard simply releases it.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// RAII shared guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Condvar {
        Condvar::default()
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2, "shared readers coexist");
        }
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        assert_eq!(l.into_inner(), 42);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
        assert!(!*g);
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
