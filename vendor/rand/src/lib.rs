//! Minimal `rand 0.8`-compatible shim.
//!
//! The build environment has no registry access; this crate provides the
//! exact surface the workspace consumes: a deterministic [`rngs::SmallRng`]
//! (xoshiro256++ seeded via splitmix64), the [`Rng`] extension trait with
//! `gen_range` / `gen_bool`, [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`]. Streams are stable across runs for a
//! given seed, which is all the workload generators rely on.

use std::ops::{Range, RangeInclusive};

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Scalar types with uniform sampling (shim equivalent of
/// `rand::distributions::uniform::SampleUniform`). Implemented per scalar;
/// the single blanket `SampleRange` impl over it is what lets type
/// inference settle `gen_range` result types used as slice indices.
pub trait SampleUniform: Sized + PartialOrd {
    /// Sample uniformly from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Types that can be sampled uniformly from a range (shim equivalent of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(lo, hi, true, rng)
    }
}

/// Core entropy source.
pub trait RngCore {
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over an entropy source.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty range");
                } else {
                    assert!(lo < hi, "empty range");
                }
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty range");
                } else {
                    assert!(lo < hi, "empty range");
                }
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Extension trait for slices (shim of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000), b.gen_range(0..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same = (0..20).all(|_| a.gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX));
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1..=7usize);
            assert!((1..=7).contains(&w));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
        // Inclusive integer ranges reach both endpoints.
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match rng.gen_range(0..=3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50 elements virtually never shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
