//! Minimal `crossbeam`-compatible shim over `std::thread::scope`.
//!
//! Provides `crossbeam::thread::scope` / `Scope::spawn` /
//! `ScopedJoinHandle::join` with the crossbeam calling convention (the spawn
//! closure receives the scope, enabling nested spawns).

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope for spawning borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; the closure receives the scope (crossbeam
        /// convention) so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result or the panic
        /// payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned; all
    /// spawned threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 60);
    }

    #[test]
    fn panics_surface_through_join() {
        let r = crate::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().is_err()
        })
        .unwrap();
        assert!(r);
    }
}
