//! Minimal `criterion`-compatible shim.
//!
//! Provides the API surface the workspace's microbenches use —
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple median-of-samples timer
//! that prints one line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, None, f);
        self
    }
}

/// Units processed per iteration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Time a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.criterion.sample_size, self.throughput, f);
        self
    }

    /// Time a closure parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.criterion.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Per-benchmark timing context handed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, collecting one sample per call.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
    };
    // One warmup invocation, then the timed samples.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("  {label}: no samples (b.iter never called)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!(" ({:.1} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!(
                " ({:.1} MiB/s)",
                n as f64 / median.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!(
        "  {label}: median {:.3} ms over {} samples{rate}",
        median.as_secs_f64() * 1e3,
        samples.len()
    );
}

/// Define a benchmark group runner (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_function("inc", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = demo
    }

    criterion_group!(simple, demo);

    #[test]
    fn groups_run() {
        benches();
        simple();
    }
}
