//! # recycler-db
//!
//! A vectorized, pipelined query engine with an **intermediate-result
//! recycler** — a full reproduction of *"Recycling in Pipelined Query
//! Evaluation"* (Nagel, Boncz, Viglas; ICDE 2013).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`vector`] — columnar batches, values, schemas;
//! * [`expr`] — vectorized expressions and range analysis;
//! * [`storage`] — in-memory tables and the catalog;
//! * [`plan`] — logical query trees with structural fingerprints;
//! * [`exec`] — the pipelined vector-at-a-time executor (incl. the `store`
//!   operator and progress meters);
//! * [`recycler`] — the paper's contribution: recycler graph, benefit
//!   metric, recycler cache, subsumption, speculation, proactive rewrites;
//! * [`engine`] — the engine façade plus the MonetDB-style
//!   operator-at-a-time baseline;
//! * [`tpch`] / [`skyserver`] — the paper's two workloads.
//!
//! ## Quickstart
//!
//! ```
//! use recycler_db::engine::{Engine, EngineConfig};
//! use recycler_db::expr::{AggFunc, Expr};
//! use recycler_db::plan::scan;
//! use recycler_db::storage::TableBuilder;
//! use recycler_db::vector::{DataType, Schema, Value};
//! use std::sync::Arc;
//!
//! // Load a table.
//! let mut catalog = recycler_db::storage::Catalog::new();
//! let mut t = TableBuilder::new(
//!     "sales",
//!     Schema::from_pairs([("item", DataType::Int), ("amount", DataType::Float)]),
//!     4,
//! );
//! for (i, a) in [(1, 10.0), (1, 20.0), (2, 5.0), (2, 2.5)] {
//!     t.push_row(vec![Value::Int(i), Value::Float(a)]);
//! }
//! catalog.register(t.finish());
//!
//! // An engine with recycling on.
//! let engine = Engine::new(Arc::new(catalog), EngineConfig::default());
//!
//! // Run the same aggregation twice: the second run reuses the cached
//! // result.
//! let q = scan("sales", &["item", "amount"]).aggregate(
//!     vec![(Expr::name("item"), "item")],
//!     vec![(AggFunc::Sum(Expr::name("amount")), "total")],
//! );
//! let first = engine.run(&q).unwrap();
//! let second = engine.run(&q).unwrap();
//! assert_eq!(first.batch.to_rows(), second.batch.to_rows());
//! assert!(second.reused());
//! ```

pub use rdb_engine as engine;
pub use rdb_exec as exec;
pub use rdb_expr as expr;
pub use rdb_plan as plan;
pub use rdb_recycler as recycler;
pub use rdb_skyserver as skyserver;
pub use rdb_storage as storage;
pub use rdb_tpch as tpch;
pub use rdb_vector as vector;
