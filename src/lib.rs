//! # recycler-db
//!
//! A vectorized, pipelined query engine with an **intermediate-result
//! recycler** — a full reproduction of *"Recycling in Pipelined Query
//! Evaluation"* (Nagel, Boncz, Viglas; ICDE 2013).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`vector`] — columnar batches, values, schemas;
//! * [`expr`] — vectorized expressions, parameter placeholders, and range
//!   analysis;
//! * [`storage`] — versioned in-memory tables (epoch-stamped
//!   append/delete with O(1) snapshot reads) and the catalog;
//! * [`plan`] — logical query trees with structural fingerprints,
//!   parameter slots, and the [`plan::normalize`] canonicalization pass
//!   every prepared statement goes through;
//! * [`sql`] — the SQL text frontend: lexer, recursive-descent parser,
//!   spanned AST, and the binder lowering to plans;
//! * [`exec`] — the pipelined vector-at-a-time executor (incl. the `store`
//!   operator, progress meters, and the public [`exec::ExecStream`] pull
//!   loop);
//! * [`recycler`] — the paper's contribution: recycler graph, benefit
//!   metric, recycler cache, subsumption, speculation, proactive rewrites;
//! * [`engine`] — the session-based engine façade plus the MonetDB-style
//!   operator-at-a-time baseline;
//! * [`tpch`] / [`skyserver`] — the paper's two workloads, with prepared
//!   templates.
//!
//! ## Quickstart
//!
//! Queries go through a session: prepare a template once (binding against
//! the catalog and fingerprinting happen here), then execute it repeatedly
//! with bound parameters, pulling results batch-at-a-time. The recycler
//! turns repeated executions into cache hits.
//!
//! ```
//! use recycler_db::engine::Engine;
//! use recycler_db::expr::{AggFunc, Expr, Params};
//! use recycler_db::plan::scan;
//! use recycler_db::storage::TableBuilder;
//! use recycler_db::vector::{DataType, Schema, Value};
//! use std::sync::Arc;
//!
//! // Load a table.
//! let mut catalog = recycler_db::storage::Catalog::new();
//! let mut t = TableBuilder::new(
//!     "sales",
//!     Schema::from_pairs([("item", DataType::Int), ("amount", DataType::Float)]),
//!     4,
//! );
//! for (i, a) in [(1, 10.0), (1, 20.0), (2, 5.0), (2, 2.5)] {
//!     t.push_row(vec![Value::Int(i), Value::Float(a)]);
//! }
//! catalog.register(t.finish()).expect("register table");
//!
//! // An engine with recycling on, and a session over it.
//! let engine = Engine::builder(Arc::new(catalog)).build();
//! let session = engine.session();
//!
//! // Prepare a parameterized aggregation template once...
//! let template = scan("sales", &["item", "amount"])
//!     .select(Expr::name("item").eq(Expr::param("item")))
//!     .aggregate(vec![], vec![(AggFunc::Sum(Expr::name("amount")), "total")]);
//! let prepared = session.prepare(&template).unwrap();
//! assert_eq!(prepared.param_names(), &["item".to_string()]);
//!
//! // ...execute it with bound parameters, streaming result batches.
//! let params = Params::new().set("item", 1i64);
//! let first: Vec<_> = prepared.execute(&params).unwrap().collect();
//! assert_eq!(first.iter().map(|b| b.rows()).sum::<usize>(), 1);
//!
//! // The second execution with identical parameters reuses the cached
//! // result instead of recomputing.
//! let second = prepared.execute(&params).unwrap();
//! assert!(second.reused());
//! let batch = second.collect_batch();
//! assert_eq!(batch.column(0).as_floats(), &[30.0]);
//!
//! // Updates commit a new table epoch. Instead of evicting the cached
//! // aggregate, the recycler *repairs* it in place from the append's
//! // delta (folding the new row into the finished sum), so the next
//! // execution still reuses — now serving the new epoch's answer.
//! let write = session
//!     .append("sales", &[vec![Value::Int(1), Value::Float(70.0)]])
//!     .unwrap();
//! assert!(write.repaired >= 1);
//! let after = prepared.execute(&params).unwrap();
//! assert!(after.reused(), "repaired entries keep serving");
//! assert_eq!(after.collect_batch().column(0).as_floats(), &[100.0]);
//! ```

pub use rdb_engine as engine;
pub use rdb_exec as exec;
pub use rdb_expr as expr;
pub use rdb_plan as plan;
pub use rdb_recycler as recycler;
pub use rdb_server as server;
pub use rdb_skyserver as skyserver;
pub use rdb_sql as sql;
pub use rdb_storage as storage;
pub use rdb_tpch as tpch;
pub use rdb_vector as vector;
pub use rdb_wal as wal;
